"""Tests for the paper's cost model (§V-B)."""

import pytest

from repro.cost import AccSaturatorCostModel, CostWeights, DEFAULT_COST_MODEL, OpClass, classify_op
from repro.egraph.egraph import ENode
from repro.egraph.language import num, op, sym


class TestClassification:
    @pytest.mark.parametrize(
        "enode,expected",
        [
            (ENode("num", (), 3.0), OpClass.CONSTANT),
            (ENode("sym", (), "x"), OpClass.VARIABLE),
            (ENode("phi", (0, 1, 2), "x@phi1"), OpClass.PHI),
            (ENode("phi-loop", (0, 1, 2), "s@loop1"), OpClass.PHI),
            (ENode("+", (0, 1)), OpClass.COMPUTE),
            (ENode("fma", (0, 1, 2)), OpClass.COMPUTE),
            (ENode("load", (0, 1), "a[{0}]"), OpClass.EXPENSIVE),
            (ENode("store", (0, 1, 2), "a[{0}]"), OpClass.EXPENSIVE),
            (ENode("/", (0, 1)), OpClass.EXPENSIVE),
            (ENode("%", (0, 1)), OpClass.EXPENSIVE),
            (ENode("call", (0,), "sqrt"), OpClass.EXPENSIVE),
            (ENode("cast", (0,), "double"), OpClass.STRUCTURAL),
        ],
    )
    def test_operator_classes(self, enode, expected):
        assert classify_op(enode) is expected


class TestPaperWeights:
    def test_paper_cost_values(self):
        model = DEFAULT_COST_MODEL
        assert model.enode_cost(ENode("num", (), 1.0)) == 0.0
        assert model.enode_cost(ENode("sym", (), "x")) == 1.0
        assert model.enode_cost(ENode("phi", (0, 1, 2), "p")) == 1.0
        assert model.enode_cost(ENode("*", (0, 1))) == 10.0
        assert model.enode_cost(ENode("load", (0, 1), "a[{0}]")) == 100.0
        assert model.enode_cost(ENode("/", (0, 1))) == 100.0
        assert model.enode_cost(ENode("call", (0,), "sqrt")) == 100.0

    def test_custom_weights(self):
        model = AccSaturatorCostModel(CostWeights(compute=3.0, expensive=7.0))
        assert model.enode_cost(ENode("+", (0, 1))) == 3.0
        assert model.enode_cost(ENode("load", (0,), "a")) == 7.0

    def test_term_cost_counts_every_occurrence(self):
        shared = op("*", sym("a"), sym("b"))
        term = op("+", shared, shared)
        model = DEFAULT_COST_MODEL
        # + (10), two * (20), four syms (4) = 34
        assert model.term_cost(term) == 34.0

    def test_term_dag_cost_counts_shared_once(self):
        shared = op("*", sym("a"), sym("b"))
        term = op("+", shared, shared)
        # + (10), one * (10), two syms (2) = 22
        assert DEFAULT_COST_MODEL.term_dag_cost(term) == 22.0

    def test_fma_cheaper_than_mul_plus_add(self):
        model = DEFAULT_COST_MODEL
        fused = model.term_cost(op("fma", sym("a"), sym("b"), sym("c")))
        split = model.term_cost(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        assert fused < split
