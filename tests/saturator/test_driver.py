"""Whole-source driver: frontend-fallback scoping."""

import pytest

import repro.saturator.driver as driver
from repro.frontend.lexer import Token, TokenKind
from repro.frontend.parser import ParseError
from repro.saturator import optimize_source

BARE_STATEMENT = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
  out[i] = a * in[i];
}
"""


class TestFrontendFallback:
    def test_bare_statement_falls_back_to_parse_statement(self):
        result = optimize_source(BARE_STATEMENT)
        assert len(result.kernels) == 1

    def test_parse_error_triggers_the_retry(self, monkeypatch):
        calls = []

        def exploding_parse(source):
            calls.append(source)
            raise ParseError(
                "expected declaration or function definition",
                Token(TokenKind.EOF, "", 1, 1),
            )

        monkeypatch.setattr(driver, "parse", exploding_parse)
        result = driver.optimize_source(BARE_STATEMENT)
        assert calls and len(result.kernels) == 1

    def test_non_frontend_errors_are_not_masked(self, monkeypatch):
        def buggy_parse(source):
            raise RuntimeError("a real bug, not a parse failure")

        monkeypatch.setattr(driver, "parse", buggy_parse)
        with pytest.raises(RuntimeError, match="a real bug"):
            driver.optimize_source(BARE_STATEMENT)
