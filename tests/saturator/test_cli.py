"""Tests for the accsat command-line interface."""

import json

import pytest

from repro.cli import build_arg_parser, main

KERNEL = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
#pragma acc loop vector
  for (int j = 0; j < m; j++) {
    c[i][j] = a[i][j] * s + b[i][j] * s;
  }
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return path


class TestCLI:
    def test_default_invocation_writes_sat_file(self, kernel_file, capsys):
        assert main([str(kernel_file)]) == 0
        output = kernel_file.with_suffix(".sat.c")
        assert output.exists()
        text = output.read_text()
        assert "#pragma acc parallel loop gang" in text
        assert "_v0" in text
        assert str(output) in capsys.readouterr().out

    def test_compiler_wrapper_style_invocation(self, kernel_file, tmp_path):
        out = tmp_path / "out.c"
        assert main(["nvc", str(kernel_file), "-o", str(out), "--quiet"]) == 0
        assert out.exists()

    def test_variant_selection(self, kernel_file, tmp_path):
        out = tmp_path / "out.c"
        assert main(["--variant", "cse", str(kernel_file), "-o", str(out)]) == 0
        assert "_v" in out.read_text()

    def test_report_json(self, kernel_file, tmp_path):
        report = tmp_path / "report.json"
        assert main([str(kernel_file), "--report", str(report), "--quiet"]) == 0
        data = json.loads(report.read_text())
        assert data["variant"] == "accsat"
        assert data["files"][0]["kernels"][0]["assignments"] >= 1

    def test_emit_report_only(self, kernel_file, capsys):
        assert main(["--emit-report-only", str(kernel_file)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["files"][0]["input"].endswith("kernel.c")

    def test_scheduler_and_anytime_flags(self, kernel_file, capsys):
        assert main([
            str(kernel_file), "--emit-report-only",
            "--scheduler", "backoff:100:2", "--anytime", "--plateau-patience", "1",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        runner = report["files"][0]["kernels"][0]["runner"]
        assert runner["scheduler"] == "backoff"
        assert any(
            it["extracted_cost"] is not None for it in runner["iterations"]
        )

    def test_bad_scheduler_rejected(self, kernel_file, capsys):
        with pytest.raises(SystemExit):
            main([str(kernel_file), "--scheduler", "nope"])
        assert "unknown scheduler spec" in capsys.readouterr().err

    def test_bad_plateau_patience_rejected(self, kernel_file):
        with pytest.raises(SystemExit):
            main([str(kernel_file), "--plateau-patience", "0"])

    def test_missing_file_fails(self, tmp_path):
        assert main([str(tmp_path / "absent.c")]) == 1

    def test_bad_variant_rejected(self, kernel_file):
        with pytest.raises(SystemExit):
            main(["--variant", "warp-speed", str(kernel_file)])

    def test_parser_has_expected_options(self):
        parser = build_arg_parser()
        text = parser.format_help()
        for option in ("--variant", "--ruleset", "--extraction", "--node-limit",
                       "--iter-limit", "--time-limit", "--report",
                       "--scheduler", "--anytime", "--plateau-patience"):
            assert option in text
