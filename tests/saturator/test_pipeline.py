"""Tests for kernel discovery, configuration and the end-to-end pipeline."""

import pytest

from repro.frontend import parse_statement
from repro.frontend.cast import clone
from repro.frontend.normalize import normalize_blocks
from repro.interp import verify_equivalence
from repro.saturator import (
    SaturatorConfig,
    Variant,
    find_parallel_kernels,
    optimize_source,
)
from repro.saturator.driver import optimize_ast

ACC_KERNEL = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
#pragma acc loop vector(128)
  for (int j = 0; j < m; j++) {
    out[i][j] = w0 * in[i][j] + w1 * (in[i][j-1] + in[i][j+1]);
  }
}
"""

OMP_KERNEL = """
#pragma omp target teams distribute
for (int i = 0; i < n; i++) {
#pragma omp parallel for simd
  for (int j = 0; j < m; j++) {
    out[i][j] = w0 * in[i][j] + w1 * (in[i][j-1] + in[i][j+1]);
  }
}
"""


class TestVariant:
    def test_flags(self):
        assert not Variant.CSE.saturate and not Variant.CSE.bulk_load
        assert Variant.CSE_SAT.saturate and not Variant.CSE_SAT.bulk_load
        assert not Variant.CSE_BULK.saturate and Variant.CSE_BULK.bulk_load
        assert Variant.ACCSAT.saturate and Variant.ACCSAT.bulk_load

    def test_from_name(self):
        assert Variant.from_name("accsat") is Variant.ACCSAT
        assert Variant.from_name("cse+bulk") is Variant.CSE_BULK
        assert Variant.from_name("CSE_SAT") is Variant.CSE_SAT
        with pytest.raises(ValueError):
            Variant.from_name("fastest")

    def test_config_with_variant_copies_other_fields(self):
        config = SaturatorConfig(ruleset="fma-only", extraction="tree")
        derived = config.with_variant(Variant.CSE)
        assert derived.variant is Variant.CSE
        assert derived.ruleset == "fma-only"
        assert derived.extraction == "tree"


class TestKernelDiscovery:
    def test_finds_openacc_kernel_and_innermost_loop(self):
        root = parse_statement(ACC_KERNEL)
        normalize_blocks(root)
        kernels = find_parallel_kernels(root)
        assert len(kernels) == 1
        kernel = kernels[0]
        # innermost parallel loop is the j loop; its body holds the stencil
        assert kernel.innermost.init.name == "j"
        assert len(kernel.directives) == 2

    def test_finds_openmp_kernel(self):
        root = parse_statement(OMP_KERNEL)
        normalize_blocks(root)
        kernels = find_parallel_kernels(root)
        assert len(kernels) == 1
        assert kernels[0].innermost.init.name == "j"

    def test_kernels_directive_descends_unannotated_nests(self):
        source = """
#pragma acc kernels loop independent
for (int i = 0; i < n; i++) {
  for (int j = 0; j < m; j++) {
    a[i][j] = 2.0 * b[i][j];
  }
}
"""
        root = parse_statement(source)
        normalize_blocks(root)
        kernels = find_parallel_kernels(root)
        assert kernels[0].innermost.init.name == "j"

    def test_sequential_code_has_no_kernels(self):
        root = parse_statement("for (int i = 0; i < n; i++) a[i] = 0.0;")
        assert find_parallel_kernels(root) == []

    def test_multiple_kernels_found_in_order(self):
        source = ACC_KERNEL + "\n" + ACC_KERNEL.replace("out", "out2")
        from repro.frontend.parser import parse

        root = parse(source)
        normalize_blocks(root)
        kernels = find_parallel_kernels(root)
        assert len(kernels) == 2
        assert kernels[0].name != kernels[1].name


class TestOptimizeSource:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_all_variants_preserve_semantics(self, variant):
        original = parse_statement(ACC_KERNEL)
        normalize_blocks(original)
        work = clone(original)
        optimize_ast(work, SaturatorConfig(variant=variant))
        assert verify_equivalence(original, work, trials=2).passed

    def test_openmp_source_supported(self):
        result = optimize_source(OMP_KERNEL, SaturatorConfig(variant=Variant.ACCSAT))
        assert len(result.kernels) == 1
        assert "_v0" in result.code
        assert "#pragma omp target teams distribute" in result.code

    def test_directives_and_loops_preserved_verbatim(self):
        result = optimize_source(ACC_KERNEL)
        assert "#pragma acc parallel loop gang" in result.code
        assert "#pragma acc loop vector(128)" in result.code
        assert result.code.count("for (") == 2

    def test_report_contains_timings_and_counts(self):
        result = optimize_source(ACC_KERNEL, SaturatorConfig(variant=Variant.ACCSAT))
        report = result.kernels[0]
        assert report.ssa_codegen_time >= 0.0
        assert report.saturation_time >= 0.0
        assert report.assignments >= 1
        assert report.egraph_nodes > 0
        assert report.runner is not None

    def test_cse_variant_skips_saturation(self):
        result = optimize_source(ACC_KERNEL, SaturatorConfig(variant=Variant.CSE))
        assert result.kernels[0].runner is None
        assert result.kernels[0].saturation_time == 0.0

    def test_ilp_extraction_end_to_end(self):
        config = SaturatorConfig(variant=Variant.ACCSAT, extraction="ilp")
        result = optimize_source(ACC_KERNEL, config)
        assert "_v0" in result.code

    def test_result_kernel_lookup(self):
        result = optimize_source(ACC_KERNEL, name_prefix="stencil")
        assert result.kernel("stencil_0").name == "stencil_0"
        with pytest.raises(KeyError):
            result.kernel("nope")
