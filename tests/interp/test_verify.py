"""Tests for the equivalence checker and random-input generation."""

import numpy as np

from repro.frontend import parse_statement
from repro.interp import (
    infer_kernel_inputs,
    make_random_environment,
    verify_equivalence,
)

KERNEL = """
for (i = 1; i < n - 1; i++) {
  out[i] = c0 * a[i] + c1 * (a[i-1] + a[i+1]);
}
"""


class TestInference:
    def test_arrays_and_ranks_inferred(self):
        inputs = infer_kernel_inputs(parse_statement(KERNEL))
        assert inputs.arrays["out"][0] == 1
        assert inputs.arrays["a"][0] == 1

    def test_scalars_inferred(self):
        inputs = infer_kernel_inputs(parse_statement(KERNEL))
        assert {"n", "c0", "c1", "i"} <= (inputs.scalars | inputs.integer_like)

    def test_literal_indices_grow_extents(self):
        stmt = parse_statement("{ x = table[7][0]; }")
        inputs = infer_kernel_inputs(stmt)
        rank, extents = inputs.arrays["table"]
        assert rank == 2
        assert extents[0] >= 8

    def test_loop_bounds_marked_integer_like(self):
        inputs = infer_kernel_inputs(parse_statement(KERNEL))
        assert "n" in inputs.integer_like


class TestRandomEnvironment:
    def test_environment_is_executable(self):
        stmt = parse_statement(KERNEL)
        env = make_random_environment(stmt, np.random.default_rng(1))
        from repro.interp import execute

        execute(stmt, env.copy())  # must not raise / go out of bounds

    def test_offset_accesses_stay_in_bounds(self):
        stmt = parse_statement(
            "for (i = 1; i <= n; i++) { b[i] = a[i+1] - a[i-1]; }"
        )
        env = make_random_environment(stmt, np.random.default_rng(2))
        from repro.interp import execute

        execute(stmt, env.copy())

    def test_deterministic_given_seed(self):
        stmt = parse_statement(KERNEL)
        env1 = make_random_environment(stmt, np.random.default_rng(7))
        env2 = make_random_environment(stmt, np.random.default_rng(7))
        assert env1.allclose(env2)


class TestVerifyEquivalence:
    def test_identical_kernels_pass(self):
        a = parse_statement(KERNEL)
        b = parse_statement(KERNEL)
        assert verify_equivalence(a, b, trials=2).passed

    def test_reassociated_kernel_passes_within_tolerance(self):
        a = parse_statement("{ r[i] = (x + y) + z; }")
        b = parse_statement("{ r[i] = x + (y + z); }")
        assert verify_equivalence(a, b, trials=3).passed

    def test_different_kernels_fail(self):
        a = parse_statement("{ r[i] = x + y; }")
        b = parse_statement("{ r[i] = x - y; }")
        result = verify_equivalence(a, b, trials=1)
        assert not result.passed
        assert result.max_difference > 0
