"""Tests for the reference interpreter."""

import numpy as np
import pytest

from repro.frontend import parse_expression, parse_statement
from repro.interp import Environment, InterpreterError, evaluate_expression, execute
from repro.interp.interpreter import Interpreter


def env_with(**kwargs):
    scalars = {k: v for k, v in kwargs.items() if not isinstance(v, np.ndarray)}
    arrays = {k: v for k, v in kwargs.items() if isinstance(v, np.ndarray)}
    return Environment(scalars=scalars, arrays=arrays)


class TestExpressions:
    def test_arithmetic(self):
        assert evaluate_expression(parse_expression("2 + 3 * 4")) == 14
        assert evaluate_expression(parse_expression("(2 + 3) * 4")) == 20

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate_expression(parse_expression("7 / 2")) == 3
        assert evaluate_expression(parse_expression("-7 / 2")) == -3

    def test_float_division(self):
        assert evaluate_expression(parse_expression("7.0 / 2")) == 3.5

    def test_modulo(self):
        assert evaluate_expression(parse_expression("7 % 3")) == 1

    def test_comparisons_yield_ints(self):
        assert evaluate_expression(parse_expression("3 > 2")) == 1
        assert evaluate_expression(parse_expression("3 < 2")) == 0

    def test_short_circuit_and_or(self):
        env = env_with(x=0)
        # 1/x would fault; && must not evaluate it when x == 0
        expr = parse_expression("x != 0 && 1 / x > 0")
        assert Interpreter(env).eval(expr) == 0

    def test_ternary(self):
        env = env_with(x=-2.0)
        assert Interpreter(env).eval(parse_expression("x > 0 ? x : -x")) == 2.0

    def test_math_calls(self):
        assert evaluate_expression(parse_expression("sqrt(16.0)")) == 4.0
        assert evaluate_expression(parse_expression("pow(2.0, 10.0)")) == 1024.0
        assert evaluate_expression(parse_expression("fma(2.0, 3.0, 1.0)")) == 7.0

    def test_cast(self):
        assert evaluate_expression(parse_expression("(int)3.9")) == 3
        assert evaluate_expression(parse_expression("(double)3")) == 3.0

    def test_unknown_function_raises(self):
        with pytest.raises(InterpreterError):
            evaluate_expression(parse_expression("frobnicate(1)"))

    def test_bitwise_and_shifts(self):
        assert evaluate_expression(parse_expression("(1 << 4) | 3")) == 19
        assert evaluate_expression(parse_expression("6 & 3")) == 2


class TestStatements:
    def test_scalar_assignment_and_types(self):
        env = env_with()
        execute(parse_statement("{ int i = 3; double x = i / 2; }"), env)
        assert env.scalars["i"] == 3
        assert env.scalars["x"] == 1.0  # integer division then float conversion

    def test_array_store_and_load(self):
        env = env_with(a=np.zeros((4, 4)), i=1, j=2)
        execute(parse_statement("{ a[i][j] = 5.0; a[i][j] += 2.0; }"), env)
        assert env.arrays["a"][1, 2] == 7.0

    def test_for_loop_sum(self):
        env = env_with(a=np.arange(6, dtype=float), n=6)
        execute(parse_statement("{ s = 0.0; for (int k = 0; k < n; k++) s += a[k]; }"), env)
        assert env.scalars["s"] == 15.0

    def test_while_and_break(self):
        env = env_with(x=10)
        execute(parse_statement("{ while (1) { x = x - 1; if (x == 3) break; } }"), env)
        assert env.scalars["x"] == 3

    def test_continue_skips(self):
        env = env_with(n=5)
        execute(parse_statement(
            "{ s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 1) continue; s += i; } }"), env)
        assert env.scalars["s"] == 6

    def test_do_while_runs_at_least_once(self):
        env = env_with(x=0)
        execute(parse_statement("{ do { x = x + 1; } while (0); }"), env)
        assert env.scalars["x"] == 1

    def test_local_array_declaration(self):
        env = env_with()
        execute(parse_statement("{ double q[5]; q[2] = 1.5; r = q[2]; }"), env)
        assert env.scalars["r"] == 1.5

    def test_iteration_budget_guards_infinite_loops(self):
        env = env_with()
        with pytest.raises(InterpreterError):
            execute(parse_statement("{ x = 0; while (1) x = x + 1; }"), env, max_iterations=100)

    def test_pragma_is_transparent(self):
        env = env_with(a=np.zeros(4), n=4)
        execute(parse_statement(
            "#pragma acc parallel loop\nfor (int i = 0; i < n; i++) a[i] = i;"), env)
        assert list(env.arrays["a"]) == [0, 1, 2, 3]

    def test_struct_member_scalars(self):
        env = Environment(scalars={"p.x": 2.0, "p.y": 3.0})
        execute(parse_statement("{ d = p.x * p.y; }"), env)
        assert env.scalars["d"] == 6.0

    def test_array_of_struct_member(self):
        env = Environment(scalars={"k": 1},
                          arrays={"kVals.Kx": np.array([1.0, 2.0, 3.0])})
        execute(parse_statement("{ v = kVals[k].Kx; }"), env)
        assert env.scalars["v"] == 2.0


class TestEnvironment:
    def test_copy_is_deep_for_arrays(self):
        env = env_with(a=np.zeros(3))
        dup = env.copy()
        env.arrays["a"][0] = 9.0
        assert dup.arrays["a"][0] == 0.0

    def test_allclose_detects_differences(self):
        a = env_with(a=np.ones(3), x=1.0)
        b = a.copy()
        assert a.allclose(b)
        b.arrays["a"][1] = 2.0
        assert not a.allclose(b)
        assert a.max_difference(b) == pytest.approx(1.0)
