"""End-to-end and property-based integration tests of the whole pipeline.

The headline invariant of ACC Saturator (paper §IV): whatever the rewrite
rules and the code generator do, the optimized kernel computes the same
values as the original one, and the loop structure + directives are
untouched.  Here this is exercised on randomly generated kernels.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph.runner import RunnerLimits
from repro.frontend import parse_statement, print_c
from repro.frontend.cast import clone
from repro.frontend.normalize import normalize_blocks
from repro.interp import verify_equivalence
from repro.saturator import SaturatorConfig, Variant
from repro.saturator.driver import optimize_ast

FAST_LIMITS = RunnerLimits(node_limit=800, iter_limit=3, time_limit=2.0)


# ---------------------------------------------------------------------------
# Random kernel generation
# ---------------------------------------------------------------------------

_ARRAYS = ["a", "b", "c"]
_SCALARS = ["alpha", "beta", "gamma"]


@st.composite
def expressions(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return f"{draw(st.sampled_from(_ARRAYS))}[i]"
        if choice == 1:
            return draw(st.sampled_from(_SCALARS))
        return f"{draw(st.floats(-3, 3, allow_nan=False)):.3f}"
    operator = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    return f"({left} {operator} {right})"


@st.composite
def kernels(draw):
    n_statements = draw(st.integers(2, 5))
    statements = []
    for index in range(n_statements):
        target = draw(st.sampled_from(["out[i]", "aux[i]", "t"]))
        statements.append(f"{target} = {draw(expressions())};")
    body = "\n    ".join(statements)
    return (
        "#pragma acc parallel loop gang\n"
        "for (int i = 0; i < n; i++) {\n"
        f"    {body}\n"
        "}\n"
    )


@settings(max_examples=25, deadline=None)
@given(kernels(), st.sampled_from(list(Variant)))
def test_random_kernels_preserve_semantics(source, variant):
    original = parse_statement(source)
    normalize_blocks(original)
    work = clone(original)
    optimize_ast(work, SaturatorConfig(variant=variant, limits=FAST_LIMITS))
    result = verify_equivalence(original, work, trials=1, rtol=1e-6, atol=1e-8)
    assert result.passed, f"{result.message}\n--- source ---\n{source}\n--- generated ---\n{print_c(work)}"


@settings(max_examples=15, deadline=None)
@given(kernels())
def test_structure_and_directives_preserved(source):
    work = parse_statement(source)
    normalize_blocks(work)
    optimize_ast(work, SaturatorConfig(variant=Variant.ACCSAT, limits=FAST_LIMITS))
    generated = print_c(work)
    assert "#pragma acc parallel loop gang" in generated
    assert generated.count("for (") == source.count("for (")


@settings(max_examples=15, deadline=None)
@given(kernels())
def test_generated_code_is_reparseable_and_idempotent(source):
    work = parse_statement(source)
    normalize_blocks(work)
    optimize_ast(work, SaturatorConfig(variant=Variant.ACCSAT, limits=FAST_LIMITS))
    generated = print_c(work)
    reparsed = parse_statement(generated)
    assert print_c(reparsed) == generated


class TestListingExample:
    """The paper's Listing 1 matrix-multiplication kernel, end to end."""

    SOURCE = """
#pragma acc kernels loop independent
for (int i = 0; i < cy; i++) {
#pragma acc loop independent gang(16) vector(256)
  for (int j = 0; j < cx; j++) {
    double tmp = 0.f;
    for (int l = 0; l < ax; l++)
      tmp += a[i][l] * b[l][j];
    r[i][j] = alpha * tmp + beta * c[i][j];
  }
}
"""

    @pytest.mark.parametrize("variant", list(Variant))
    def test_all_variants_verified_against_numpy(self, variant):
        from repro.interp import Environment, execute

        original = parse_statement(self.SOURCE)
        normalize_blocks(original)
        work = clone(original)
        optimize_ast(work, SaturatorConfig(variant=variant))

        rng = np.random.default_rng(42)
        cy, cx, ax = 5, 4, 6
        env = Environment(
            scalars={"cy": cy, "cx": cx, "ax": ax, "alpha": 1.5, "beta": -0.5},
            arrays={
                "a": rng.standard_normal((cy, ax)),
                "b": rng.standard_normal((ax, cx)),
                "c": rng.standard_normal((cy, cx)),
                "r": np.zeros((cy, cx)),
            },
        )
        expected = 1.5 * env.arrays["a"] @ env.arrays["b"] - 0.5 * env.arrays["c"]

        run_env = env.copy()
        execute(work, run_env)
        np.testing.assert_allclose(run_env.arrays["r"], expected, rtol=1e-9)

    def test_accsat_emits_fma_shaped_code(self):
        work = parse_statement(self.SOURCE)
        normalize_blocks(work)
        result = optimize_ast(work, SaturatorConfig(variant=Variant.ACCSAT))
        assert result.kernels[0].optimized.fmas >= 1
