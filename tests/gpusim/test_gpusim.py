"""Tests for the GPU / compiler performance model."""

import pytest

from repro.codegen.generator import KernelCodeStats
from repro.gpusim import (
    A100_PCIE_40GB,
    A100_SXM4_80GB,
    CLANG_OMP,
    GCC_ACC,
    GCC_OMP,
    NVHPC_ACC,
    KernelCharacterization,
    LaunchConfig,
    compile_kernel,
    compiler_model,
    simulate_kernel,
)
from repro.gpusim.metrics import geomean, speedup


def make_stats(loads=10, stores=5, flops=20, fmas=0, divs=0, calls=0):
    return KernelCodeStats(loads=loads, stores=stores, flops=flops, fmas=fmas,
                           divs=divs, calls=calls)


def characterization(loads=10, bulk=False, original=False, scale=1.0, temps=0,
                     kernels_directive=False):
    stats = make_stats(loads=loads)
    return KernelCharacterization(
        name="k",
        original=make_stats(loads=loads * 2, flops=40),
        generated=stats,
        bulk_load=bulk,
        is_original=original,
        live_temporaries=temps or loads,
        scale=scale,
        uses_kernels_directive=kernels_directive,
    )


class TestGPUConfig:
    def test_sxm_has_higher_bandwidth(self):
        assert A100_SXM4_80GB.mem_bandwidth_gbps > A100_PCIE_40GB.mem_bandwidth_gbps
        ratio = A100_SXM4_80GB.mem_bandwidth_gbps / A100_PCIE_40GB.mem_bandwidth_gbps
        assert ratio == pytest.approx(1.31, abs=0.02)

    def test_derived_quantities(self):
        assert A100_PCIE_40GB.max_warps_per_sm == 64
        assert A100_PCIE_40GB.bytes_per_cycle_per_sm > 0

    def test_scaled_bandwidth(self):
        faster = A100_PCIE_40GB.scaled_bandwidth(2.0)
        assert faster.mem_bandwidth_gbps == pytest.approx(2 * A100_PCIE_40GB.mem_bandwidth_gbps)


class TestCompilerModels:
    def test_lookup(self):
        assert compiler_model("nvhpc", "acc") is NVHPC_ACC
        assert compiler_model("GCC", "OMP") is GCC_OMP
        with pytest.raises(ValueError):
            compiler_model("icc", "acc")

    def test_nvhpc_removes_more_redundancy_than_gcc(self):
        assert NVHPC_ACC.effective_loads(100, 20) < GCC_ACC.effective_loads(100, 20)

    def test_effective_loads_bounded_by_original_and_optimized(self):
        for model in (NVHPC_ACC, GCC_ACC, GCC_OMP, CLANG_OMP):
            eff = model.effective_loads(100, 20)
            assert 20 <= eff <= 100


class TestCompileKernel:
    def test_bulk_load_increases_mlp_and_registers(self):
        lazy = compile_kernel(characterization(loads=40, bulk=False, original=False), GCC_ACC)
        bulk = compile_kernel(characterization(loads=40, bulk=True, original=False), GCC_ACC)
        assert bulk.mlp > lazy.mlp
        assert bulk.registers > lazy.registers

    def test_register_limit_causes_spills(self):
        huge = compile_kernel(
            characterization(loads=120, bulk=True, original=False, scale=4.0),
            GCC_ACC, A100_PCIE_40GB,
        )
        assert huge.registers == A100_PCIE_40GB.max_registers_per_thread
        assert huge.spills > 0

    def test_original_code_keeps_compiler_residual_redundancy(self):
        original = compile_kernel(characterization(loads=10, original=True), GCC_ACC)
        optimized = compile_kernel(characterization(loads=10, original=False), GCC_ACC)
        assert original.loads >= optimized.loads

    def test_statement_scale_multiplies_work(self):
        one = compile_kernel(characterization(loads=10, scale=1.0), NVHPC_ACC)
        four = compile_kernel(characterization(loads=10, scale=4.0), NVHPC_ACC)
        assert four.loads == pytest.approx(4 * one.loads)

    def test_kernels_directive_lowers_parallel_efficiency_for_gcc(self):
        parallel = compile_kernel(characterization(kernels_directive=False), GCC_ACC)
        kernels = compile_kernel(characterization(kernels_directive=True), GCC_ACC)
        assert kernels.parallel_efficiency < parallel.parallel_efficiency


class TestSimulateKernel:
    LAUNCH = LaunchConfig(iterations_per_launch=1e7, launches=10)

    def test_time_monotone_in_memory_traffic(self):
        small = simulate_kernel(compile_kernel(characterization(loads=5), NVHPC_ACC,
                                               A100_PCIE_40GB), A100_PCIE_40GB, self.LAUNCH)
        large = simulate_kernel(compile_kernel(characterization(loads=50), NVHPC_ACC,
                                               A100_PCIE_40GB), A100_PCIE_40GB, self.LAUNCH)
        assert large.time_s > small.time_s

    def test_sxm_never_slower_than_pcie(self):
        kernel = compile_kernel(characterization(loads=30), NVHPC_ACC, A100_PCIE_40GB)
        pcie = simulate_kernel(kernel, A100_PCIE_40GB, self.LAUNCH)
        sxm = simulate_kernel(kernel, A100_SXM4_80GB, self.LAUNCH)
        assert sxm.time_s <= pcie.time_s * 1.0001

    def test_bulk_load_speeds_up_latency_bound_kernel_on_gcc(self):
        launch = LaunchConfig(iterations_per_launch=1e7, launches=10)
        lazy = compile_kernel(
            characterization(loads=40, bulk=False, scale=3.0, kernels_directive=True),
            GCC_ACC, A100_PCIE_40GB)
        bulk = compile_kernel(
            characterization(loads=40, bulk=True, scale=3.0, kernels_directive=True),
            GCC_ACC, A100_PCIE_40GB)
        t_lazy = simulate_kernel(lazy, A100_PCIE_40GB, launch).time_s
        t_bulk = simulate_kernel(bulk, A100_PCIE_40GB, launch).time_s
        assert t_bulk < t_lazy

    def test_occupancy_within_bounds(self):
        perf = simulate_kernel(compile_kernel(characterization(), NVHPC_ACC, A100_PCIE_40GB),
                               A100_PCIE_40GB, self.LAUNCH)
        assert 0.0 < perf.occupancy <= 1.0
        assert 0.0 <= perf.memory_utilization <= 1.0
        assert perf.bound in ("compute", "bandwidth", "latency")

    def test_launch_overhead_included(self):
        kernel = compile_kernel(characterization(loads=1), NVHPC_ACC, A100_PCIE_40GB)
        tiny = LaunchConfig(iterations_per_launch=1.0, launches=1000)
        perf = simulate_kernel(kernel, A100_PCIE_40GB, tiny)
        assert perf.time_s >= 1000 * NVHPC_ACC.launch_overhead_us * 1e-6


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        assert speedup(10.0, 0.0) == float("inf")

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 1.0
