"""Tests for code generation: temp-var insertion, bulk load, stats."""

import re

import pytest

from repro.frontend import parse_statement, print_c
from repro.frontend.cast import clone
from repro.frontend.parser import parse_statement as reparse
from repro.interp import verify_equivalence
from repro.saturator import SaturatorConfig, Variant
from repro.saturator.pipeline import optimize_loop_body
from repro.frontend.normalize import normalize_blocks


MATMUL_BODY = """
{
  double tmp = 0.0;
  for (int l = 0; l < ax; l++)
    tmp += a[i][l] * b[l][j];
  r[i][j] = alpha * tmp + beta * c[i][j];
}
"""

BT_BODY = """
{
  temp1 = dt * tz1;
  temp2 = dt * tz2;
  lhsZ[0][k][i][j] = - temp2 * fjacZ[0][k-1][i][j] - temp1 * njacZ[0][k-1][i][j] - temp1 * dz1;
  lhsZ[1][k][i][j] = - temp2 * fjacZ[1][k-1][i][j] - temp1 * njacZ[1][k-1][i][j];
  lhsZ[2][k][i][j] = - temp2 * fjacZ[2][k-1][i][j] - temp1 * njacZ[2][k-1][i][j] - temp1 * dz2;
}
"""


def optimize_body(source, variant):
    body = parse_statement(source)
    _, report = optimize_loop_body(body, SaturatorConfig(variant=variant), "test")
    return body, report


class TestTempVariables:
    def test_temporaries_inserted_with_prefix(self):
        body, _ = optimize_body(BT_BODY, Variant.CSE)
        text = print_c(body)
        assert "_v0" in text
        assert "double _v" in text

    def test_statements_rewritten_to_reference_temps(self):
        body, _ = optimize_body(BT_BODY, Variant.CSE)
        text = print_c(body)
        # each original store now assigns a temp (or a trivial leaf)
        assert re.search(r"lhsZ\[0\]\[k\]\[i\]\[j\] = _v\d+;", text)

    def test_common_subexpression_computed_once(self):
        body, report = optimize_body(BT_BODY, Variant.CSE)
        text = print_c(body)
        # dt * tz1 appears exactly once in the generated code
        assert text.count("dt * tz1") == 1
        assert report.optimized.flops < report.original.flops

    def test_generated_code_reparses(self):
        body, _ = optimize_body(BT_BODY, Variant.ACCSAT)
        reparse(print_c(body))  # must not raise

    def test_custom_temp_prefix(self):
        body = parse_statement(BT_BODY)
        optimize_loop_body(body, SaturatorConfig(variant=Variant.CSE, temp_prefix="_acc"), "k")
        assert "_acc0" in print_c(body)


class TestBulkLoad:
    def test_loads_hoisted_to_top_of_group(self):
        body, _ = optimize_body(BT_BODY, Variant.ACCSAT)
        text = print_c(body)
        first_store = text.index("lhsZ[0][k][i][j] =")
        for array in ("fjacZ[0]", "fjacZ[1]", "fjacZ[2]", "njacZ[0]", "njacZ[1]", "njacZ[2]"):
            assert text.index(array) < first_store, f"{array} not hoisted above first store"

    def test_lazy_mode_does_not_hoist_all_loads(self):
        bulk, _ = optimize_body(BT_BODY, Variant.CSE_BULK)
        lazy, _ = optimize_body(BT_BODY, Variant.CSE)
        bulk_text, lazy_text = print_c(bulk), print_c(lazy)
        first_store_lazy = lazy_text.index("lhsZ[0][k][i][j] =")
        # in lazy mode at least one later-used load appears after the first store
        assert lazy_text.index("fjacZ[2]") > first_store_lazy
        # while bulk mode hoists it
        assert bulk_text.index("fjacZ[2]") < bulk_text.index("lhsZ[0][k][i][j] =")

    def test_loads_sorted_by_static_index(self):
        body, _ = optimize_body(BT_BODY, Variant.ACCSAT)
        text = print_c(body)
        positions = [text.index(f"fjacZ[{i}][k - 1]") for i in range(3)]
        assert positions == sorted(positions)

    def test_load_after_store_not_hoisted_above_it(self):
        source = """
        {
          a[i] = x * 2.0;
          y = a[i] + 1.0;
          b[i] = y * y;
        }
        """
        body, _ = optimize_body(source, Variant.ACCSAT)
        text = print_c(body)
        store_pos = text.index("a[i] =")
        # the load of the freshly stored location (spelled `= a[i];` as a
        # temporary definition) must appear after the store statement
        load_pos = text.index("= a[i];")
        assert store_pos < load_pos


class TestSemanticsPreservation:
    @pytest.mark.parametrize("variant", list(Variant))
    def test_matmul_body_equivalent(self, variant):
        original = parse_statement(MATMUL_BODY)
        normalize_blocks(original)
        work = clone(original)
        optimize_loop_body(work, SaturatorConfig(variant=variant), "k")
        result = verify_equivalence(original, work, trials=2)
        assert result.passed, result.message

    @pytest.mark.parametrize("variant", list(Variant))
    def test_bt_body_equivalent(self, variant):
        original = parse_statement(BT_BODY)
        normalize_blocks(original)
        work = clone(original)
        optimize_loop_body(work, SaturatorConfig(variant=variant), "k")
        result = verify_equivalence(original, work, trials=2)
        assert result.passed, result.message


class TestStats:
    def test_stats_report_reductions(self):
        _, report = optimize_body(BT_BODY, Variant.CSE)
        assert report.original.instructions > 0
        assert report.optimized.instructions <= report.original.instructions
        assert 0.0 <= report.instruction_reduction <= 1.0

    def test_fma_counted_with_saturation(self):
        _, report = optimize_body(MATMUL_BODY, Variant.ACCSAT)
        assert report.optimized.fmas >= 1

    def test_original_ast_counting(self):
        from repro.codegen.generator import count_ast_stats

        stmt = parse_statement("{ r[i] = a[i] * b[i] + c[i] / d[i]; }")
        stats = count_ast_stats(stmt)
        assert stats.loads == 4
        assert stats.stores == 1
        assert stats.divs == 1
        assert stats.flops == 2
