"""Unit tests for the temp-var renderer and the bulk-load scheduler."""

from repro.codegen.bulkload import ScheduleItem, schedule_group
from repro.codegen.tempvars import ClassRenderer, TempAllocator
from repro.cost import DEFAULT_COST_MODEL
from repro.egraph.egraph import EGraph
from repro.egraph.extract import extract_best
from repro.egraph.language import num, op, sym


def build(terms):
    eg = EGraph()
    roots = [eg.add_term(t) for t in terms]
    eg.rebuild()
    extraction = extract_best(eg, roots, DEFAULT_COST_MODEL, "dag-greedy")
    renderer = ClassRenderer(eg, extraction.choices, TempAllocator())
    return eg, roots, renderer


class TestTempAllocator:
    def test_names_are_stable_per_class(self):
        alloc = TempAllocator()
        assert alloc.name_for(5) == "_v0"
        assert alloc.name_for(7) == "_v1"
        assert alloc.name_for(5) == "_v0"
        assert len(alloc) == 2

    def test_first_index_offsets_numbering(self):
        alloc = TempAllocator(first_index=10)
        assert alloc.name_for(1) == "_v10"
        assert alloc.next_index == 11


class TestRenderer:
    def test_leaves_render_inline(self):
        eg, roots, renderer = build([op("+", sym("x"), num(2))])
        root = eg.find(roots[0])
        assert renderer.render_definition(root) == "(x + 2)"

    def test_load_renders_through_template(self):
        load = op("load", sym("a"), sym("i"), sym("j"), payload="a[{0}][{1}]")
        eg, roots, renderer = build([load])
        assert renderer.render(eg.find(roots[0])) == "a[i][j]"

    def test_ssa_suffixes_stripped(self):
        eg, roots, renderer = build([op("+", sym("tmp@loop1"), num(1))])
        assert renderer.render_definition(eg.find(roots[0])) == "(tmp + 1)"

    def test_available_temp_referenced_by_name(self):
        shared = op("*", sym("a"), sym("b"))
        eg, roots, renderer = build([op("+", shared, sym("c"))])
        mul_class = eg.lookup_term(shared)
        renderer.available_temps.add(mul_class)
        name = renderer.temps.name_for(mul_class)
        assert name in renderer.render_definition(eg.find(roots[0]))

    def test_is_temp_class_excludes_leaves_and_phis(self):
        phi = op("phi", sym("c"), sym("x"), sym("y"), payload="x@phi1")
        eg, roots, renderer = build([op("+", phi, sym("z"))])
        assert not renderer.is_temp_class(eg.lookup_term(phi))
        assert not renderer.is_temp_class(eg.lookup_term(sym("z")))
        assert renderer.is_temp_class(eg.find(roots[0]))


class TestScheduler:
    def test_lazy_schedule_places_temps_before_use(self):
        load_a = op("load", sym("a"), sym("i"), payload="a[{0}]")
        load_b = op("load", sym("b"), sym("i"), payload="b[{0}]")
        eg, roots, renderer = build([op("+", load_a, num(1)), op("*", load_b, num(2))])
        schedule = schedule_group(renderer, [eg.find(r) for r in roots], {}, bulk_load=False)
        kinds = [item.kind for item in schedule]
        # temps for statement 0 come before statement 0, same for statement 1
        first_stmt = kinds.index("stmt")
        assert "temp" in kinds[:first_stmt]
        assert kinds.count("stmt") == 2

    def test_bulk_schedule_hoists_all_loads_first(self):
        load_a = op("load", sym("a"), sym("i"), payload="a[{0}]")
        load_b = op("load", sym("b"), sym("i"), payload="b[{0}]")
        eg, roots, renderer = build([op("+", load_a, num(1)), op("*", load_b, num(2))])
        schedule = schedule_group(renderer, [eg.find(r) for r in roots], {}, bulk_load=True)
        load_positions = [
            index for index, item in enumerate(schedule)
            if item.kind == "temp" and renderer.node_of(item.eclass).op == "load"
        ]
        first_stmt = [i for i, item in enumerate(schedule) if item.kind == "stmt"][0]
        assert all(pos < first_stmt for pos in load_positions)

    def test_bulk_loads_sorted_by_static_index(self):
        loads = [op("load", sym("a"), num(k), payload="a[{0}]") for k in (3, 1, 2)]
        eg, roots, renderer = build([op("+", op("+", loads[0], loads[1]), loads[2])])
        schedule = schedule_group(renderer, [eg.find(roots[0])], {}, bulk_load=True)
        rendered = [
            renderer.render_definition(item.eclass)
            for item in schedule
            if item.kind == "temp" and renderer.node_of(item.eclass).op == "load"
        ]
        assert rendered == sorted(rendered)

    def test_load_depending_on_store_waits_for_it(self):
        store = op("store", sym("a"), sym("i"), sym("x"), payload="a[{0}]")
        load_after = op("load", store, sym("i"), payload="a[{0}]")
        eg = EGraph()
        r0 = eg.add_term(sym("x"))          # statement 0 defines the stored value
        store_class = eg.add_term(store)
        r1 = eg.add_term(op("+", load_after, num(1)))
        eg.rebuild()
        extraction = extract_best(eg, [r0, store_class, r1], DEFAULT_COST_MODEL)
        renderer = ClassRenderer(eg, extraction.choices, TempAllocator())
        schedule = schedule_group(
            renderer,
            [eg.find(r0), eg.find(r1)],
            {eg.find(store_class): 0},
            bulk_load=True,
        )
        load_class = eg.find(eg.lookup_term(load_after))
        load_pos = [i for i, s in enumerate(schedule) if s.kind == "temp" and s.eclass == load_class]
        stmt0_pos = [i for i, s in enumerate(schedule) if s.kind == "stmt" and s.position == 0]
        assert load_pos and stmt0_pos
        assert load_pos[0] > stmt0_pos[0]
