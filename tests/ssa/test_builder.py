"""Tests for SSA construction."""

from repro.frontend import parse_statement
from repro.frontend.normalize import normalize_blocks
from repro.ssa import build_ssa


def ssa_for(source):
    body = parse_statement(source)
    normalize_blocks(body)
    return build_ssa(body)


class TestScalars:
    def test_assignment_binds_value(self):
        ssa = ssa_for("{ x = a * b; y = x + 1.0; }")
        assignments = ssa.all_assignments()
        assert len(assignments) == 2
        # y's term references the term of x, not the symbol x
        assert str(assignments[1].term) == "(+ (* a b) 1.0)"

    def test_redefinition_uses_latest_value(self):
        ssa = ssa_for("{ x = a; x = x + 1.0; y = x; }")
        assignments = ssa.all_assignments()
        assert str(assignments[2].term) == "(+ a 1.0)"

    def test_compound_assignment_expands(self):
        ssa = ssa_for("{ s = a; s += b; }")
        assert str(ssa.all_assignments()[1].term) == "(+ a b)"

    def test_declaration_with_initializer_is_assignment(self):
        ssa = ssa_for("{ double t = a + b; x = t * 2.0; }")
        assignments = ssa.all_assignments()
        assert assignments[0].is_decl
        assert str(assignments[1].term) == "(* (+ a b) 2.0)"

    def test_increment_statement(self):
        ssa = ssa_for("{ i++; x = i; }")
        assert str(ssa.all_assignments()[1].term) == "(+ i 1)"


class TestArrays:
    def test_load_uses_template_payload(self):
        ssa = ssa_for("{ x = a[i][j]; }")
        term = ssa.all_assignments()[0].term
        assert term.op == "load"
        assert term.payload == "a[{0}][{1}]"

    def test_store_creates_new_version(self):
        ssa = ssa_for("{ a[i] = x; y = a[i]; }")
        load = ssa.all_assignments()[1].term
        assert load.op == "load"
        # the version operand of the load is the store term
        assert load.children[0].op == "store"

    def test_loads_before_store_share_old_version(self):
        ssa = ssa_for("{ x = a[i]; y = a[i]; a[i] = 0.0; z = a[i]; }")
        first, second, _, after = ssa.all_assignments()
        assert first.term == second.term  # identical loads CSE naturally
        assert after.term != first.term   # the post-store load is distinct

    def test_distinct_arrays_have_distinct_versions(self):
        ssa = ssa_for("{ a[i] = 1.0; x = b[i]; }")
        load = ssa.all_assignments()[1].term
        assert load.children[0].op == "sym"  # b untouched by store to a

    def test_store_term_recorded(self):
        ssa = ssa_for("{ r[i][j] = alpha * x; }")
        info = ssa.all_assignments()[0]
        assert info.is_store
        assert info.store_term is not None and info.store_term.op == "store"


class TestControlFlow:
    def test_if_introduces_phi(self):
        ssa = ssa_for("{ if (b == 0) { b = a; } c = b + 1.0; }")
        final = ssa.all_assignments()[-1].term
        assert any(node.op == "phi" for node in final.walk())
        assert len(ssa.phis) >= 1

    def test_if_else_phi_merges_both_branches(self):
        ssa = ssa_for("{ if (x > 0) { y = 1.0; } else { y = 2.0; } z = y; }")
        final = ssa.all_assignments()[-1].term
        phi = [n for n in final.walk() if n.op == "phi"][0]
        assert len(phi.children) == 3

    def test_loop_introduces_loop_phi(self):
        ssa = ssa_for("{ s = 0.0; for (l = 0; l < n; l++) { s += a[l]; } r = s; }")
        final = ssa.all_assignments()[-1].term
        assert any(node.op == "phi-loop" for node in final.walk())

    def test_loop_body_does_not_see_pre_loop_value(self):
        ssa = ssa_for("{ s = 123.0; for (l = 0; l < n; l++) { s = s + 1.0; } }")
        body_assign = [a for a in ssa.all_assignments() if a.var_name == "s"][1]
        # the in-loop use of s is opaque (loop-carried), not 123.0
        assert "123" not in str(body_assign.term)

    def test_groups_split_at_control_flow(self):
        ssa = ssa_for("{ x = a; if (p) { y = b; } z = c; }")
        assert len(ssa.groups) == 3

    def test_stats_counts(self):
        ssa = ssa_for("{ x = a[i] + b[i]; c[i] = x * 2.0; }")
        stats = ssa.stats()
        assert stats["assignments"] == 2
        # the second assignment's term embeds the value of x, so its two
        # loads are counted again (stats count term occurrences, the e-graph
        # later shares them)
        assert stats["loads"] == 4
        assert stats["stores"] == 1


class TestBarriers:
    def test_unknown_call_invalidates_arrays(self):
        ssa = ssa_for("{ x = a[i]; update(a); y = a[i]; }")
        first, second = ssa.all_assignments()[0], ssa.all_assignments()[-1]
        assert first.term != second.term

    def test_nested_block_assignments_are_collected(self):
        ssa = ssa_for("{ { x = a; } { y = b; } }")
        assert len(ssa.all_assignments()) == 2
