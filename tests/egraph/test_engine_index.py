"""Tests for the op-indexed incremental e-matching engine.

Covers the invariants the fast engine layers on top of the classic
e-graph (op-index coherence, O(1) node count, touch stamps), the
equivalence of compiled/op-indexed/incremental search with the naive
backtracking matcher, and the saturation profiler.
"""

import json
import random
import time

from repro.egraph import EGraph, Runner, RunnerLimits, RunnerReport, StopReason
from repro.egraph.egraph import ENode
from repro.egraph.language import num, op, sym
from repro.egraph.pattern import compile_pattern, parse_pattern
from repro.egraph.rewrite import rewrite
from repro.rules import constant_folding_analysis, default_ruleset

PATTERNS = [
    "(+ ?a (* ?b ?c))",
    "(- ?a (* ?b ?c))",
    "(+ ?a ?b)",
    "(* ?a ?b)",
    "(+ ?a ?a)",
    "(fma ?a ?b ?c)",
    "(+ (* ?a ?b) (* ?a ?c))",
    "(* x0 2)",
]


def _match_set(matches):
    return {(cid, frozenset(subst.items())) for cid, subst in matches}


def _representative_egraph():
    """A saturated-ish e-graph over a dot-product-style kernel term."""

    eg = EGraph(constant_folding_analysis())
    term = op("*", sym("x0"), num(2))
    for i in range(1, 5):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(600, 3, 5.0)).run()
    return eg


class TestOpIndexInvariants:
    def test_randomized_add_merge_rebuild_interleavings(self):
        """check_invariants (incl. op-index and node-count cache) holds
        after arbitrary add/merge/rebuild sequences."""

        rng = random.Random(20240728)
        ops = ["+", "*", "-", "f"]
        for _ in range(25):
            eg = EGraph()
            ids = [eg.add(ENode("sym", (), f"s{i}")) for i in range(4)]
            for step in range(60):
                action = rng.random()
                if action < 0.55 or len(ids) < 2:
                    k = rng.choice([0, 1, 2])
                    children = tuple(
                        eg.find(rng.choice(ids)) for _ in range(k)
                    )
                    ids.append(eg.add(ENode(rng.choice(ops), children)))
                elif action < 0.85:
                    eg.merge(rng.choice(ids), rng.choice(ids))
                else:
                    eg.rebuild()
            eg.rebuild()
            eg.check_invariants()

    def test_len_is_cached_and_correct(self):
        eg = _representative_egraph()
        assert len(eg) == sum(len(c.nodes) for c in eg.classes.values())

    def test_classes_with_op_exact_after_rebuild(self):
        eg = _representative_egraph()
        for opname in ("+", "*", "sym", "num", "fma"):
            expected = {
                c.id for c in eg.eclasses() if any(n.op == opname for n in c.nodes)
            }
            assert eg.classes_with_op(opname) == expected

    def test_copy_preserves_engine_state(self):
        eg = _representative_egraph()
        dup = eg.copy()
        dup.check_invariants()
        assert len(dup) == len(eg)
        assert dup.classes_with_op("+") == eg.classes_with_op("+")


class TestSearchEquivalence:
    def test_indexed_search_equals_naive_on_default_ruleset(self):
        """Compiled + op-indexed search == naive matcher, for every rule of
        the paper's rule set over a representative kernel e-graph."""

        eg = _representative_egraph()
        for rule in default_ruleset():
            naive = _match_set(rule.searcher.search_naive(eg))
            fast = _match_set(rule.search(eg))
            assert fast == naive, rule.name

    def test_extra_pattern_shapes(self):
        eg = _representative_egraph()
        for text in PATTERNS:
            pattern = parse_pattern(text)
            assert _match_set(pattern.search(eg)) == _match_set(
                pattern.search_naive(eg)
            ), text

    def test_match_class_agrees_with_naive(self):
        eg = _representative_egraph()
        pattern = parse_pattern("(+ ?a ?b)")
        compiled = compile_pattern(pattern)
        for eclass in list(eg.eclasses()):
            fast = {frozenset(s.items()) for s in compiled.match_class(eg, eclass.id)}
            naive = {frozenset(s.items()) for s in pattern.match_class(eg, eclass.id)}
            assert fast == naive

    def test_incremental_search_finds_exactly_the_new_matches(self):
        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))
        eg.rebuild()
        rule = rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)")
        first = rule.search(eg, since=-1)
        assert len(first) == 1
        stamp = eg.version
        # nothing touched since -> nothing to report
        assert rule.search(eg, since=stamp) == []
        # grow the graph; only the new class is scanned, and found
        eg.add_term(op("+", sym("c"), sym("d")))
        eg.rebuild()
        fresh = rule.search(eg, since=stamp)
        assert len(fresh) == 1
        assert _match_set(rule.search(eg, since=None)) == _match_set(
            first + fresh
        )

    def test_touch_propagates_to_ancestors(self):
        """A merge deep in the graph must re-expose enclosing classes to
        incremental search (new matches can appear at untouched roots)."""

        eg = EGraph()
        root = eg.add_term(op("*", op("+", sym("a"), sym("b")), sym("c")))
        eg.rebuild()
        rule = rewrite("mul-of-sum", "(* (+ ?x ?y) ?z)", "(* ?z (+ ?x ?y))")
        assert len(rule.search(eg, since=-1)) == 1
        stamp = eg.version
        # merging b with a new symbol touches a descendant of the root;
        # the root's class must be rescanned afterwards
        eg.merge(eg.add_term(sym("b")), eg.add_term(sym("e")))
        eg.rebuild()
        rescans = rule.search(eg, since=stamp)
        assert any(eg.find(cid) == eg.find(root) for cid, _ in rescans)


class TestRunnerEquivalence:
    def test_incremental_runner_matches_full_runner(self):
        """Indexed + incremental saturation produces the same e-graph and
        report trajectory as full rescans."""

        def run(incremental):
            eg = EGraph(constant_folding_analysis())
            term = op("*", sym("x0"), num(2))
            for i in range(1, 5):
                term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
            eg.add_term(term)
            report = Runner(
                eg, default_ruleset(), RunnerLimits(600, 4, 10.0),
                incremental=incremental,
            ).run()
            return eg, report

        eg_inc, rep_inc = run(True)
        eg_full, rep_full = run(False)
        assert rep_inc.stop_reason == rep_full.stop_reason
        assert len(eg_inc) == len(eg_full)
        assert eg_inc.num_classes == eg_full.num_classes
        assert [it.applied for it in rep_inc.iterations] == [
            it.applied for it in rep_full.iterations
        ]
        eg_inc.check_invariants()


class TestProfiler:
    def _report(self) -> RunnerReport:
        eg = EGraph(constant_folding_analysis())
        eg.add_term(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        return Runner(eg, default_ruleset(), RunnerLimits(500, 4, 5.0)).run()

    def test_per_rule_stats_collected(self):
        report = self._report()
        assert set(report.rule_stats) == {r.name for r in default_ruleset()}
        fma = report.rule_stats["fma1"]
        assert fma.searches >= 1
        assert fma.matches >= 1
        assert fma.applied >= 1
        assert fma.search_time >= 0.0
        total_applied = sum(rs.applied for rs in report.rule_stats.values())
        assert total_applied == report.total_applied

    def test_report_round_trips_to_json(self):
        report = self._report()
        text = report.to_json(indent=2)
        restored = RunnerReport.from_json(text)
        assert restored.stop_reason == report.stop_reason
        assert restored.as_dict() == report.as_dict()
        # and the dict is plain-JSON serialisable
        assert json.loads(text) == report.as_dict()

    def test_kernel_report_includes_runner_profile(self):
        from repro.benchsuite.npb.cg import CG
        from repro.saturator import SaturatorConfig, optimize_source

        spec = CG.kernels[0]
        result = optimize_source(
            spec.source, SaturatorConfig(limits=RunnerLimits(500, 2, 5.0))
        )
        data = result.kernels[0].as_dict()
        assert data["runner"] is not None
        assert "rule_stats" in data["runner"]
        json.dumps(data)  # fully serialisable

    def test_phase_breakdown_round_trips(self):
        """search/apply/rebuild phases aggregate the iteration rows, the
        pipeline-attached extract time survives the JSON round trip, and
        the phase split appears in ``as_dict``."""

        report = self._report()
        phases = report.phase_times
        assert set(phases) == {"search", "apply", "rebuild", "extract"}
        assert phases["search"] == sum(it.search_time for it in report.iterations)
        assert phases["apply"] == sum(it.apply_time for it in report.iterations)
        assert phases["rebuild"] == sum(it.rebuild_time for it in report.iterations)
        assert phases["extract"] == 0.0  # bare Runner: no extraction attached

        report.extract_time = 0.125
        restored = RunnerReport.from_json(report.to_json())
        assert restored.extract_time == 0.125
        assert restored.as_dict()["phase_times"] == report.phase_times

    def test_pipeline_attaches_extract_time_to_runner(self):
        from repro.benchsuite.npb.cg import CG
        from repro.saturator import SaturatorConfig, optimize_source

        spec = CG.kernels[0]
        result = optimize_source(
            spec.source, SaturatorConfig(limits=RunnerLimits(500, 2, 5.0))
        )
        kernel = result.kernels[0]
        assert kernel.runner.extract_time > 0.0
        assert kernel.as_dict()["runner"]["phase_times"]["extract"] == (
            kernel.runner.extract_time
        )


class TestTimeLimits:
    def test_time_limit_checked_between_phases(self):
        """A slow search phase stops the runner with TIME_LIMIT instead of
        running a full extra apply/rebuild round."""

        def slow_guard(egraph, eclass_id, subst):
            time.sleep(0.02)
            return True

        eg = EGraph()
        for i in range(4):
            eg.add_term(op("+", sym(f"a{i}"), sym(f"b{i}")))
        rule = rewrite("slow-comm", "(+ ?a ?b)", "(+ ?b ?a)", guard=slow_guard)
        report = Runner(eg, [rule], RunnerLimits(10_000, 50, 0.05)).run()
        assert report.stop_reason is StopReason.TIME_LIMIT
        assert report.total_time < 1.0

    def test_zero_iterations_when_budget_already_blown(self):
        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))
        limits = RunnerLimits(10_000, 5, 1e-9)
        report = Runner(eg, default_ruleset(), limits).run()
        assert report.stop_reason is StopReason.TIME_LIMIT
        assert report.num_iterations == 0
