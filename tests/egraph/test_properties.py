"""Property-based tests on the e-graph engine and the rule set.

The central invariants:

* the e-graph's hashcons/congruence invariants hold after arbitrary
  add/merge/rebuild sequences,
* every rewrite rule of the paper preserves the numeric value of the
  expression it rewrites (checked by evaluating random leaves),
* extraction returns a term that is numerically equal to the input term.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cost import DEFAULT_COST_MODEL
from repro.egraph.egraph import EGraph
from repro.egraph.extract import extract_best
from repro.egraph.language import Term, num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import constant_folding_analysis, default_ruleset

VARIABLES = ["a", "b", "c", "d"]


@st.composite
def arithmetic_terms(draw, depth=3):
    """Random arithmetic terms over +, -, * and a few leaves."""

    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return sym(draw(st.sampled_from(VARIABLES)))
        return num(draw(st.integers(-4, 4)))
    operator = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_terms(depth=depth - 1))
    right = draw(arithmetic_terms(depth=depth - 1))
    return op(operator, left, right)


def evaluate(term: Term, env):
    if term.op == "num":
        return float(term.payload)
    if term.op == "sym":
        return env[term.payload]
    children = [evaluate(c, env) for c in term.children]
    if term.op == "+":
        return children[0] + children[1]
    if term.op == "-":
        return children[0] - children[1]
    if term.op == "*":
        return children[0] * children[1]
    if term.op == "neg":
        return -children[0]
    if term.op == "fma":
        return children[0] + children[1] * children[2]
    raise AssertionError(f"unexpected operator {term.op}")


@settings(max_examples=40, deadline=None)
@given(arithmetic_terms())
def test_egraph_invariants_hold_after_saturation(term):
    eg = EGraph(constant_folding_analysis())
    eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(800, 4, 2.0)).run()
    eg.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    arithmetic_terms(),
    st.lists(st.floats(-3, 3, allow_nan=False), min_size=4, max_size=4),
)
def test_extraction_preserves_value(term, values):
    """Saturate + extract; the extracted term evaluates to the same value."""

    env = dict(zip(VARIABLES, values))
    expected = evaluate(term, env)

    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(800, 4, 2.0)).run()
    result = extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy")
    actual = evaluate(result.terms[root], env)

    assert math.isclose(expected, actual, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    arithmetic_terms(),
    st.lists(st.floats(-3, 3, allow_nan=False), min_size=4, max_size=4),
)
def test_extracted_cost_never_exceeds_input_cost(term, values):
    """Saturation can only improve (or keep) the DAG cost of the input."""

    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(term)
    baseline = extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy").dag_cost

    Runner(eg, default_ruleset(), RunnerLimits(800, 4, 2.0)).run()
    optimized = extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy").dag_cost
    assert optimized <= baseline + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(arithmetic_terms(depth=2), min_size=2, max_size=4))
def test_hashconsing_never_duplicates_canonical_nodes(terms):
    eg = EGraph()
    for term in terms:
        eg.add_term(term)
    eg.rebuild()
    seen = set()
    for _, node in eg.canonical_nodes():
        canon = node.canonicalize(eg.uf)
        assert canon not in seen
        seen.add(canon)
