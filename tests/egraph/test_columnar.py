"""PR-7 columnar core + relational e-matching guarantees.

Four contracts pinned here:

* **Engine equivalence** (hypothesis): on randomized e-graphs, the
  relational (join-based) backend returns the *exact list* — multiset and
  order — of match rows the compiled scan matcher produces, for patterns
  spanning the planner's shapes (heterogeneous ops, shared variables,
  self-joins).  Backend choice must never be observable in results.
* **Join-plan determinism**: the greedy join order depends only on
  relation sizes, interned op ids and pre-order atom indices — asserted
  by comparing plans across ``PYTHONHASHSEED`` values in subprocesses.
* **View-memo boundedness**: the ``EGraph._views`` ENode memo evicts
  spellings retired by the rebuild sweep, so it tracks the live key set
  instead of growing monotonically across rebuilds.
* **Pending-buffer semantics**: the column store's deferred append buffer
  is invisible from outside — kills and overwrites of still-pending keys
  resolve inside the buffer, and materialised row order equals hashcons
  dict order.

Payloads are kept collision-free (plain ints) throughout: distinct
payloads with identical ``(str, type name)`` sort pairs are a documented
acceptable divergence between the engines' tie-breaks.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph import columns
from repro.egraph.columns import ColumnStore
from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.pattern import compile_pattern, parse_pattern

# ---------------------------------------------------------------------------
# Engine equivalence (hypothesis)
# ---------------------------------------------------------------------------

#: Multi-atom patterns exercising the planner's shapes: heterogeneous op
#: pairs, a variable shared across atoms, nested same-op (self-join), and
#: a payload-guarded leaf atom.
_PATTERNS = [
    "(+ ?a (* ?b ?c))",
    "(* (+ ?a ?b) ?a)",
    "(+ (+ ?a ?b) ?c)",
    "(+ (* ?a ?b) (* ?b ?c))",
    "(* ?a (+ ?b ?b))",
    "(+ 1 ?x)",
]

_LEAVES = [sym("x"), sym("y"), sym("z"), num(1), num(2)]
_OPS = ["+", "*"]


@st.composite
def _graph_script(draw):
    """A build script: term specs plus merge pairs over their class ids."""

    n_terms = draw(st.integers(min_value=2, max_value=10))
    terms = []
    for _ in range(n_terms):
        depth = draw(st.integers(min_value=0, max_value=3))
        terms.append(_draw_term(draw, depth))
    n_merges = draw(st.integers(min_value=0, max_value=4))
    merges = [
        (
            draw(st.integers(min_value=0, max_value=n_terms - 1)),
            draw(st.integers(min_value=0, max_value=n_terms - 1)),
        )
        for _ in range(n_merges)
    ]
    return terms, merges


def _draw_term(draw, depth):
    if depth == 0:
        return draw(st.sampled_from(_LEAVES))
    left = _draw_term(draw, depth - 1)
    right = _draw_term(draw, draw(st.integers(min_value=0, max_value=depth - 1)))
    return op(draw(st.sampled_from(_OPS)), left, right)


def _build(script):
    terms, merges = script
    eg = EGraph()
    roots = [eg.add_term(t) for t in terms]
    for a, b in merges:
        eg.merge(roots[a], roots[b])
    eg.rebuild()
    return eg


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join backend needs numpy")
@settings(max_examples=60, deadline=None)
@given(script=_graph_script(), pattern_text=st.sampled_from(_PATTERNS))
def test_join_backend_matches_scan_exactly(script, pattern_text):
    eg = _build(script)
    cp = compile_pattern(parse_pattern(pattern_text))
    scan = cp.search_rows(eg, backend="scan")
    join = cp.search_rows(eg, backend="join")
    assert join == scan  # same rows, same order


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join backend needs numpy")
def test_join_backend_matches_scan_on_default_ruleset():
    """Every multi-atom rule of the paper ruleset, on a saturated graph."""

    from repro.egraph.runner import Runner, RunnerLimits
    from repro.rules import default_ruleset

    eg = EGraph()
    expr = op(
        "+",
        op("*", sym("a"), op("+", sym("b"), num(0))),
        op("*", op("+", sym("a"), num(0)), sym("c")),
    )
    eg.add_term(expr)
    rules = default_ruleset()
    Runner(eg, rules, RunnerLimits(node_limit=400, iter_limit=4)).run()
    for rule in rules:
        cp = rule._compiled
        if cp._atoms is None:
            continue
        assert cp.search_rows(eg, backend="join") == cp.search_rows(
            eg, backend="scan"
        ), rule.name


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join backend needs numpy")
def test_single_atom_join_matches_scan():
    # a single-atom "join" is the relation slice itself — same rows,
    # same order as the compiled scan
    eg = _build(([op("+", sym("x"), sym("y"))], []))
    cp = compile_pattern(parse_pattern("(+ ?a ?b)"))
    assert cp.search_rows(eg, backend="join") == cp.search_rows(
        eg, backend="scan"
    )


def test_forced_join_unavailable_on_bare_var_pattern():
    eg = _build(([op("+", sym("x"), sym("y"))], []))
    cp = compile_pattern(parse_pattern("?x"))  # no operator atom at all
    with pytest.raises(RuntimeError):
        cp.search_rows(eg, backend="join")


# ---------------------------------------------------------------------------
# Join-plan determinism across hash seeds
# ---------------------------------------------------------------------------

_PLAN_SCRIPT = """
from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import default_ruleset

eg = EGraph()
expr = op("+", op("*", sym("a"), sym("b")),
        op("*", op("+", sym("a"), num(1)), sym("c")))
eg.add_term(expr)
rules = default_ruleset()
Runner(eg, rules, RunnerLimits(node_limit=300, iter_limit=3)).run()
for rule in rules:
    print(rule.name, rule._compiled.join_plan(eg))
"""


def _run_with_hash_seed(seed: str) -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _PLAN_SCRIPT],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join plans need numpy")
def test_join_plans_are_hash_seed_independent():
    outputs = {_run_with_hash_seed(seed) for seed in ("0", "1", "12345")}
    assert len(outputs) == 1, f"join plans diverged across hash seeds: {outputs}"


# ---------------------------------------------------------------------------
# View-memo boundedness across rebuilds
# ---------------------------------------------------------------------------


def test_view_memo_evicts_retired_spellings():
    """Viewing every live key each round must not grow the memo unboundedly.

    Merging chains re-spells nodes every rebuild; the sweep retires the
    stale spellings and must drop their memoized views, so the memo stays
    a subset of the live hashcons key set.
    """

    eg = EGraph()
    base = eg.add_term(op("+", sym("x"), sym("y")))
    for i in range(12):
        other = eg.add_term(op("+", sym("x"), op("*", sym("y"), num(i))))
        eg.merge(base, other)
        eg.rebuild()
        for key in list(eg.hashcons):
            eg._view(key)  # populate the memo with every live spelling
    live = set(eg.hashcons)
    assert set(eg._views) <= live, "memo retains retired spellings"
    assert len(eg._views) <= len(live)


# ---------------------------------------------------------------------------
# Pending-buffer semantics of the column store
# ---------------------------------------------------------------------------


def test_pending_kill_drops_unmaterialised_row():
    store = ColumnStore()
    store.append_new((1, 0), 0)
    store.append_new((2, 0), 1)
    store.kill((1, 0))  # still pending: must vanish without a dead row
    store.flush()
    assert store.keys == [(2, 0)]
    assert list(store.row_of) == [(2, 0)]
    assert list(store.alive) == [1]


def test_pending_reinsert_requeues_at_end():
    store = ColumnStore()
    store.append_new((1, 0), 0)
    store.append_new((2, 0), 1)
    store.kill((1, 0))
    store.append_new((1, 0), 2)  # pop + re-insert => row order (2,..), (1,..)
    store.flush()
    assert store.keys == [(2, 0), (1, 0)]
    assert store.cls.tolist() == [1, 2]


def test_pending_insert_overwrites_in_place():
    store = ColumnStore()
    store.append_new((1, 0), 0)
    store.insert((1, 0), 5)  # overwrite of a pending key keeps its slot
    store.flush()
    assert store.keys == [(1, 0)]
    assert store.cls.tolist() == [5]
    assert len(store) == 1


def test_len_counts_pending_rows():
    store = ColumnStore()
    assert len(store) == 0
    store.append_new((1, 0), 0)
    assert len(store) == 1  # visible before materialisation
    store.flush()
    assert len(store) == 1


# ---------------------------------------------------------------------------
# Backend-equality of saturation outcomes (REPRO_NO_NUMPY escape hatch)
# ---------------------------------------------------------------------------

_OUTCOME_SCRIPT = """
from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import default_ruleset

eg = EGraph()
expr = op("+", op("*", sym("a"), op("+", sym("b"), num(0))),
        op("*", op("+", sym("a"), num(0)), sym("c")))
eg.add_term(expr)
report = Runner(eg, default_ruleset(), RunnerLimits(node_limit=500, iter_limit=5)).run()
print(report.stop_reason.value, len(eg), eg.num_classes)
"""


def test_numpy_and_fallback_backends_agree_on_outcomes():
    src = Path(__file__).resolve().parents[2] / "src"
    outputs = set()
    for no_numpy in ("0", "1"):
        env = dict(os.environ)
        env["REPRO_NO_NUMPY"] = no_numpy
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _OUTCOME_SCRIPT],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"backends diverged: {outputs}"
