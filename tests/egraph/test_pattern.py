"""Tests for pattern parsing and e-matching."""

from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.pattern import Pattern, PatternVar, parse_pattern


class TestParsing:
    def test_parse_variables_and_operators(self):
        pattern = parse_pattern("(+ ?a (* ?b ?c))")
        assert pattern.op == "+"
        assert isinstance(pattern.children[0], PatternVar)
        assert pattern.children[1].op == "*"
        assert pattern.variables() == ["a", "b", "c"]

    def test_parse_numbers_and_symbols(self):
        pattern = parse_pattern("(* x 2)")
        assert pattern.children[0].op == "sym"
        assert pattern.children[1].op == "num"
        assert pattern.children[1].payload == 2

    def test_parse_payload_atom(self):
        pattern = parse_pattern("(call:sqrt ?x)")
        assert pattern.op == "call"
        assert pattern.payload == "sqrt"


class TestMatching:
    def test_simple_match_binds_variables(self):
        eg = EGraph()
        root = eg.add_term(op("+", sym("x"), op("*", sym("y"), sym("z"))))
        matches = parse_pattern("(+ ?a (* ?b ?c))").search(eg)
        assert any(eclass == eg.find(root) for eclass, _ in matches)
        eclass, subst = [m for m in matches if m[0] == eg.find(root)][0]
        assert subst["a"] == eg.find(eg.add_term(sym("x")))

    def test_repeated_variable_requires_same_class(self):
        eg = EGraph()
        eg.add_term(op("+", sym("x"), sym("x")))
        eg.add_term(op("+", sym("x"), sym("y")))
        matches = parse_pattern("(+ ?a ?a)").search(eg)
        assert len(matches) == 1

    def test_no_match_for_absent_operator(self):
        eg = EGraph()
        eg.add_term(op("+", sym("x"), sym("y")))
        assert parse_pattern("(/ ?a ?b)").search(eg) == []

    def test_match_within_merged_class(self):
        eg = EGraph()
        a = eg.add_term(op("+", sym("x"), sym("y")))
        b = eg.add_term(op("*", sym("x"), sym("y")))
        eg.merge(a, b)
        eg.rebuild()
        plus = parse_pattern("(+ ?a ?b)").search(eg)
        times = parse_pattern("(* ?a ?b)").search(eg)
        assert {m[0] for m in plus} == {m[0] for m in times}

    def test_instantiate_adds_term(self):
        eg = EGraph()
        root = eg.add_term(op("+", sym("x"), op("*", sym("y"), sym("z"))))
        pattern = parse_pattern("(+ ?a (* ?b ?c))")
        _, subst = pattern.search(eg)[0]
        new_class = parse_pattern("(fma ?a ?b ?c)").instantiate(eg, subst)
        assert eg.lookup_term(op("fma", sym("x"), sym("y"), sym("z"))) == eg.find(new_class)

    def test_from_term_matches_only_exact(self):
        eg = EGraph()
        eg.add_term(op("+", sym("x"), num(1)))
        ground = Pattern.from_term(op("+", sym("x"), num(1)))
        assert len(ground.search(eg)) == 1
        other = Pattern.from_term(op("+", sym("x"), num(2)))
        assert other.search(eg) == []
