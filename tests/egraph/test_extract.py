"""Tests for cost-based extraction (tree, greedy DAG, ILP)."""

import pytest

from repro.cost import AccSaturatorCostModel, DEFAULT_COST_MODEL
from repro.egraph.egraph import EGraph
from repro.egraph.extract import (
    DagExtractor,
    ExtractionError,
    ILPExtractor,
    TreeExtractor,
    extract_best,
)
from repro.egraph.language import num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import constant_folding_analysis, default_ruleset


def saturated_graph(term):
    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(5000, 8, 5.0)).run()
    return eg, root


class TestTreeExtractor:
    def test_extracts_cheapest_equivalent(self):
        eg, root = saturated_graph(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        extractor = TreeExtractor(eg, DEFAULT_COST_MODEL)
        term = extractor.extract_term(root)
        assert term.op == "fma"  # one op (10) beats add+mul (20)

    def test_cost_of_leaf(self):
        eg = EGraph()
        root = eg.add_term(sym("x"))
        assert TreeExtractor(eg, DEFAULT_COST_MODEL).best_cost(root) == 1.0

    def test_constant_has_zero_cost(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(op("+", num(1), num(2)))
        eg.rebuild()
        assert TreeExtractor(eg, DEFAULT_COST_MODEL).best_cost(root) == 0.0

    def test_missing_class_raises(self):
        eg = EGraph()
        eg.add_term(sym("x"))
        with pytest.raises((KeyError, IndexError)):
            eg.nodes_of(999)


class TestDagExtractor:
    def test_shared_subexpression_counted_once(self):
        shared = op("*", sym("a"), sym("b"))
        eg = EGraph()
        r1 = eg.add_term(op("+", shared, sym("c")))
        r2 = eg.add_term(op("-", shared, sym("d")))
        result = DagExtractor(eg, DEFAULT_COST_MODEL).extract([r1, r2])
        # tree cost would count the multiply twice; DAG cost only once
        tree_cost = sum(
            DEFAULT_COST_MODEL.term_cost(t) for t in (result.terms[r1], result.terms[r2])
        )
        assert result.dag_cost < tree_cost

    def test_terms_keyed_by_requested_roots(self):
        eg, root = saturated_graph(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        result = DagExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        assert root in result.terms

    def test_extraction_is_deterministic(self):
        eg, root = saturated_graph(op("+", op("*", sym("a"), sym("b")), op("*", sym("c"), sym("d"))))
        r1 = DagExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        r2 = DagExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        assert r1.terms[root] == r2.terms[root]
        assert r1.dag_cost == r2.dag_cost


class TestILPExtractor:
    def test_ilp_matches_or_beats_greedy(self):
        eg, root = saturated_graph(
            op("+", op("*", sym("a"), sym("b")), op("+", sym("c"), op("*", sym("a"), sym("b"))))
        )
        greedy = DagExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        exact = ILPExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        assert exact.dag_cost <= greedy.dag_cost + 1e-9

    def test_ilp_selects_fma(self):
        eg, root = saturated_graph(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        result = ILPExtractor(eg, DEFAULT_COST_MODEL).extract([root])
        assert result.terms[root].op == "fma"

    def test_multiple_roots_share_classes(self):
        shared = op("*", sym("x"), sym("y"))
        eg = EGraph()
        r1 = eg.add_term(op("+", shared, num(1)))
        r2 = eg.add_term(op("+", shared, num(2)))
        result = ILPExtractor(eg, DEFAULT_COST_MODEL).extract([r1, r2])
        mul_classes = [
            cid for cid, node in result.choices.items() if node.op == "*"
        ]
        assert len(mul_classes) == 1


class TestFacade:
    def test_extract_best_dispatches(self):
        eg, root = saturated_graph(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        for method in ("tree", "dag-greedy", "ilp"):
            result = extract_best(eg, [root], DEFAULT_COST_MODEL, method)
            assert result.method == method
            assert root in result.terms

    def test_unknown_method_rejected(self):
        eg = EGraph()
        root = eg.add_term(sym("x"))
        with pytest.raises(ValueError):
            extract_best(eg, [root], DEFAULT_COST_MODEL, "annealing")

    def test_extracted_term_cost_matches_model(self):
        """The reported DAG cost equals re-pricing the selected choices."""

        eg, root = saturated_graph(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        result = extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy")
        repriced = sum(DEFAULT_COST_MODEL.enode_cost(n) for n in result.choices.values())
        assert result.dag_cost == pytest.approx(repriced)
