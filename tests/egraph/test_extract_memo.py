"""Memoized extraction: DP-table reuse and incremental refresh soundness.

The contract under test: extraction through a shared
:class:`ExtractionMemo` is *exact* — after any sequence of e-graph growth
(new terms, saturation steps), a memoized extraction returns the same
choices, terms and DAG cost as a cold extractor built from scratch.
"""

import random

import pytest

from repro.cost import AccSaturatorCostModel, CostWeights
from repro.egraph import (
    DagExtractor,
    EGraph,
    ExtractionMemo,
    Runner,
    RunnerLimits,
    TreeExtractor,
    extract_best,
)
from repro.egraph.language import num, op, sym
from repro.rules import default_ruleset


def _model():
    return AccSaturatorCostModel()


def _fma_chain(n):
    term = sym("x0")
    for i in range(1, n):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    return term


def _random_term(rng, depth=0):
    if depth > 3 or rng.random() < 0.3:
        return rng.choice([sym(f"v{rng.randrange(4)}"), num(rng.randrange(3))])
    operator = rng.choice(["+", "*", "-"])
    return op(operator, _random_term(rng, depth + 1), _random_term(rng, depth + 1))


def _assert_same_extraction(memoized, fresh):
    assert memoized.dag_cost == fresh.dag_cost
    assert memoized.choices == fresh.choices
    assert set(memoized.terms) == set(fresh.terms)
    for root, term in fresh.terms.items():
        assert memoized.terms[root] == term


class TestResultMemo:
    def test_unchanged_egraph_returns_the_cached_result_object(self):
        eg = EGraph()
        root = eg.add_term(_fma_chain(5))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        first = extract_best(eg, [root], model, "dag-greedy", memo=memo)
        second = extract_best(eg, [root], model, "dag-greedy", memo=memo)
        assert second is first
        assert memo.result_hits == 1

    def test_different_roots_and_methods_do_not_collide(self):
        eg = EGraph()
        r1 = eg.add_term(_fma_chain(4))
        r2 = eg.add_term(op("*", sym("p"), sym("q")))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        dag = extract_best(eg, [r1], model, "dag-greedy", memo=memo)
        tree = extract_best(eg, [r1], model, "tree", memo=memo)
        both = extract_best(eg, [r1, r2], model, "dag-greedy", memo=memo)
        assert memo.result_hits == 0
        assert dag.method == "dag-greedy" and tree.method == "tree"
        assert set(both.terms) >= {eg.find(r1), eg.find(r2)}

    def test_ilp_results_are_keyed_by_time_limit(self):
        eg = EGraph()
        root = eg.add_term(op("+", op("*", sym("a"), sym("b")), sym("c")))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        extract_best(eg, [root], model, "ilp", time_limit=30.0, memo=memo)
        extract_best(eg, [root], model, "ilp", time_limit=1.0, memo=memo)
        assert memo.result_hits == 0  # different budgets never share a slot
        again = extract_best(eg, [root], model, "ilp", time_limit=30.0, memo=memo)
        assert memo.result_hits == 1
        assert again.method == "ilp"

    def test_result_cache_invalidated_by_egraph_growth(self):
        eg = EGraph()
        root = eg.add_term(_fma_chain(4))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        first = extract_best(eg, [root], model, "dag-greedy", memo=memo)
        eg.add_term(op("+", sym("new"), sym("new2")))
        eg.rebuild()
        second = extract_best(eg, [root], model, "dag-greedy", memo=memo)
        assert second is not first
        # the root's extraction is unaffected by the unrelated term
        assert second.dag_cost == first.dag_cost


class TestIncrementalRefresh:
    def test_refresh_after_saturation_matches_cold_extraction(self):
        eg = EGraph()
        root = eg.add_term(_fma_chain(6))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        extract_best(eg, [root], model, "dag-greedy", memo=memo)
        assert memo.full_builds == 1

        Runner(eg, default_ruleset(), RunnerLimits(1500, 2, 5.0)).run()
        memoized = extract_best(eg, [root], model, "dag-greedy", memo=memo)
        fresh = DagExtractor(eg, _model()).extract([root])
        assert memo.refreshes == 1
        _assert_same_extraction(memoized, fresh)

    def test_untouched_classes_are_reused_not_recomputed(self):
        eg = EGraph()
        root = eg.add_term(_fma_chain(6))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        extract_best(eg, [root], model, "tree", memo=memo)
        recomputed_after_build = memo.recomputed_classes

        # adding one disjoint term touches only the new classes
        eg.add_term(op("*", sym("fresh_a"), sym("fresh_b")))
        eg.rebuild()
        extract_best(eg, [root], model, "tree", memo=memo)
        assert memo.refreshes == 1
        assert memo.reused_classes > 0
        newly = memo.recomputed_classes - recomputed_after_build
        assert 0 < newly <= 3  # the *, and its two leaves at most

    @pytest.mark.parametrize("method", ["tree", "dag-greedy"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_growth_keeps_memo_exact(self, method, seed):
        rng = random.Random(seed)
        eg = EGraph()
        memo = ExtractionMemo()
        model = _model()
        roots = []
        rules = default_ruleset()
        for step in range(4):
            for _ in range(2):
                roots.append(eg.add_term(_random_term(rng)))
            eg.rebuild()
            if step % 2:
                Runner(eg, rules, RunnerLimits(800, 1, 2.0)).run()
            memoized = extract_best(eg, roots, model, method, memo=memo)
            fresh = extract_best(eg, roots, _model(), method)
            _assert_same_extraction(memoized, fresh)

    def test_tree_best_costs_stay_consistent_after_refresh(self):
        eg = EGraph()
        root = eg.add_term(_fma_chain(5))
        eg.rebuild()
        memo = ExtractionMemo()
        model = _model()
        TreeExtractor(eg, model, memo).best_cost(root)
        Runner(eg, default_ruleset(), RunnerLimits(1000, 2, 5.0)).run()
        memoized_cost = TreeExtractor(eg, model, memo).best_cost(root)
        fresh_cost = TreeExtractor(eg, _model()).best_cost(root)
        assert memoized_cost == fresh_cost


class TestMemoRebinding:
    def test_memo_rebinds_on_different_egraph(self):
        memo = ExtractionMemo()
        model = _model()
        eg1 = EGraph()
        r1 = eg1.add_term(_fma_chain(4))
        eg1.rebuild()
        extract_best(eg1, [r1], model, "dag-greedy", memo=memo)

        eg2 = EGraph()
        r2 = eg2.add_term(op("+", sym("a"), sym("b")))
        eg2.rebuild()
        memoized = extract_best(eg2, [r2], model, "dag-greedy", memo=memo)
        fresh = extract_best(eg2, [r2], _model(), "dag-greedy")
        _assert_same_extraction(memoized, fresh)
        assert memo.full_builds == 2

    def test_memo_rebinds_on_different_cost_weights(self):
        eg = EGraph()
        root = eg.add_term(op("+", op("*", sym("a"), sym("b")), sym("c")))
        eg.rebuild()
        memo = ExtractionMemo()
        cheap_mul = AccSaturatorCostModel(CostWeights(compute=1.0))
        default = _model()
        first = extract_best(eg, [root], default, "tree", memo=memo)
        second = extract_best(eg, [root], cheap_mul, "tree", memo=memo)
        assert memo.full_builds == 2
        assert first.dag_cost != second.dag_cost
        fresh = extract_best(eg, [root], AccSaturatorCostModel(CostWeights(compute=1.0)), "tree")
        assert second.dag_cost == fresh.dag_cost
