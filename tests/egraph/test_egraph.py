"""Unit tests for the e-graph core (hashcons, merge, congruence closure)."""

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.language import num, op, sym


class TestAdd:
    def test_hashcons_deduplicates_identical_nodes(self):
        eg = EGraph()
        a1 = eg.add_term(op("+", sym("x"), sym("y")))
        a2 = eg.add_term(op("+", sym("x"), sym("y")))
        assert eg.find(a1) == eg.find(a2)

    def test_different_terms_get_different_classes(self):
        eg = EGraph()
        a = eg.add_term(op("+", sym("x"), sym("y")))
        b = eg.add_term(op("*", sym("x"), sym("y")))
        assert eg.find(a) != eg.find(b)

    def test_payload_distinguishes_leaves(self):
        eg = EGraph()
        assert eg.find(eg.add_leaf("sym", "x")) != eg.find(eg.add_leaf("sym", "y"))
        assert eg.find(eg.add_leaf("num", 1)) != eg.find(eg.add_leaf("num", 2))

    def test_len_counts_enodes(self):
        eg = EGraph()
        eg.add_term(op("+", sym("x"), num(1)))
        assert len(eg) == 3
        assert eg.num_classes == 3


class TestMergeAndRebuild:
    def test_merge_unifies_classes(self):
        eg = EGraph()
        a = eg.add_term(sym("a"))
        b = eg.add_term(sym("b"))
        eg.merge(a, b)
        eg.rebuild()
        assert eg.is_equal(a, b)
        eg.check_invariants()

    def test_congruence_closure_merges_parents(self):
        """f(a) and f(b) must merge once a = b (upward congruence)."""

        eg = EGraph()
        a, b = eg.add_term(sym("a")), eg.add_term(sym("b"))
        fa = eg.add(ENode("f", (a,)))
        fb = eg.add(ENode("f", (b,)))
        assert not eg.is_equal(fa, fb)
        eg.merge(a, b)
        eg.rebuild()
        assert eg.is_equal(fa, fb)
        eg.check_invariants()

    def test_nested_congruence(self):
        eg = EGraph()
        a, b = eg.add_term(sym("a")), eg.add_term(sym("b"))
        ga = eg.add(ENode("g", (eg.add(ENode("f", (a,))),)))
        gb = eg.add(ENode("g", (eg.add(ENode("f", (b,))),)))
        eg.merge(a, b)
        eg.rebuild()
        assert eg.is_equal(ga, gb)

    def test_union_terms_convenience(self):
        eg = EGraph()
        eg.union_terms(op("+", sym("a"), sym("b")), op("+", sym("b"), sym("a")))
        assert eg.equivalent_terms(
            op("+", sym("a"), sym("b")), op("+", sym("b"), sym("a"))
        )

    def test_lookup_term_does_not_grow_graph(self):
        eg = EGraph()
        eg.add_term(op("+", sym("x"), sym("y")))
        before = len(eg)
        assert eg.lookup_term(op("*", sym("x"), sym("y"))) is None
        assert len(eg) == before

    def test_copy_is_independent(self):
        eg = EGraph()
        a = eg.add_term(sym("a"))
        b = eg.add_term(sym("b"))
        dup = eg.copy()
        eg.merge(a, b)
        eg.rebuild()
        assert eg.is_equal(a, b)
        assert not dup.is_equal(a, b)
        dup.check_invariants()

    def test_version_increases_on_changes(self):
        eg = EGraph()
        v0 = eg.version
        a = eg.add_term(sym("a"))
        assert eg.version > v0
        b = eg.add_term(sym("b"))
        v1 = eg.version
        eg.merge(a, b)
        assert eg.version > v1
