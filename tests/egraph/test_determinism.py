"""Cross-process reproducibility of saturation outcomes.

Per-class match buckets used to be iterated in ``Set[ENode]`` order, which
hashes strings — so two processes (different ``PYTHONHASHSEED``) applied
matches in different orders, and a node-limit stop froze *different*
e-graphs.  The sorted buckets in ``EGraph.nodes_by_op`` make the whole
pipeline a pure function of (source, config), which the content-addressed
artifact cache relies on.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

#: A kernel rich enough to blow a tiny node limit mid-saturation.
_SCRIPT = textwrap.dedent(
    """
    import hashlib
    from repro.egraph.runner import RunnerLimits
    from repro.saturator import SaturatorConfig, Variant, optimize_source

    SOURCE = '''
    #pragma acc parallel loop gang
    for (int i = 1; i < n; i++) {
      out[i] = w0 * a[i] + w1 * a[i-1] + w2 * a[i+1]
             + w0 * b[i] + w1 * b[i-1] + w2 * b[i+1]
             + w0 * a[i] * b[i];
    }
    '''
    config = SaturatorConfig(
        variant=Variant.CSE_SAT, limits=RunnerLimits(60, 5, 5.0)
    )
    result = optimize_source(SOURCE, config)
    kernel = result.kernels[0]
    assert kernel.runner.stop_reason.value == "node_limit", (
        "the fixture must hit the node limit to exercise truncation"
    )
    digest = hashlib.sha256(result.code.encode()).hexdigest()
    print(digest, kernel.egraph_nodes, kernel.egraph_classes, kernel.extracted_cost)
    """
)

#: The same kernel under a tightly parameterised backoff scheduler: the
#: tiny match threshold forces real bans mid-run, so the digest covers
#: the scheduler's skip/drop decisions as well as the match order.
_BACKOFF_SCRIPT = textwrap.dedent(
    """
    import hashlib
    from repro.egraph.runner import RunnerLimits
    from repro.saturator import SaturatorConfig, Variant, optimize_source

    SOURCE = '''
    #pragma acc parallel loop gang
    for (int i = 1; i < n; i++) {
      out[i] = w0 * a[i] + w1 * a[i-1] + w2 * a[i+1]
             + w0 * b[i] + w1 * b[i-1] + w2 * b[i+1]
             + w0 * a[i] * b[i];
    }
    '''
    config = SaturatorConfig(
        variant=Variant.CSE_SAT, limits=RunnerLimits(400, 8, 5.0),
        scheduler="backoff:16:2",
    )
    result = optimize_source(SOURCE, config)
    kernel = result.kernels[0]
    assert kernel.runner.scheduler == "backoff"
    searches = sorted(
        (name, rs.searches, rs.matches, rs.applied)
        for name, rs in kernel.runner.rule_stats.items()
    )
    digest = hashlib.sha256(result.code.encode()).hexdigest()
    print(digest, kernel.egraph_nodes, kernel.egraph_classes,
          kernel.extracted_cost, searches)
    """
)


def _run_with_hash_seed(seed: str, script: str = _SCRIPT) -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def test_node_limited_saturation_is_hash_seed_independent():
    outputs = {_run_with_hash_seed(seed) for seed in ("0", "1", "12345")}
    assert len(outputs) == 1, f"outcomes diverged across hash seeds: {outputs}"


def test_backoff_scheduled_saturation_is_hash_seed_independent():
    """Backoff runs must be byte-identical across processes: the ban
    decisions hang off deterministically ordered match counts, so the
    generated code, the truncated e-graph, and the per-rule search/ban
    history all reproduce under any PYTHONHASHSEED."""

    outputs = {
        _run_with_hash_seed(seed, _BACKOFF_SCRIPT) for seed in ("0", "1", "12345")
    }
    assert len(outputs) == 1, f"backoff outcomes diverged across hash seeds: {outputs}"
