"""PR-9 semi-naive delta joins + batched columnar apply guarantees.

Contracts pinned here:

* **Delta equivalence** (hypothesis): on randomized e-graphs mutated in
  two stages, the semi-naive delta join (``search_rows(since=...)`` on
  the relational backend) returns the *exact list* — multiset and order —
  of match rows the compiled incremental scan produces, for every pattern
  shape the planner handles.  ``since`` must never leak into results.
* **Delta-plan determinism**: incremental join plans and their result
  rows depend only on relation sizes, interned op ids and pre-order atom
  indices — asserted across ``PYTHONHASHSEED`` values in subprocesses.
* **Compaction coherence**: ``ColumnStore.compact()`` interleaved with
  pending appends and kills keeps row order, the op buckets and the
  touch-stamp column coherent — delta reads after a compaction see
  exactly the live rows.
* **Batched apply equivalence**: the vectorised purity-prepass applier
  and the scalar row loop produce bit-identical e-graphs (hashcons,
  union-find, class structure), including under mid-batch unions that
  force proof-revalidation fallbacks.
* **Stamp pinning under the join engine**: a scheduler-dropped batch
  keeps the rule's incremental stamp pinned, and the delta join re-finds
  every dropped match on the next iteration (the PR-4 invariant, now
  served by the relational engine).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.egraph import columns
from repro.egraph.columns import ColumnStore
from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.pattern import compile_pattern, parse_pattern
from repro.egraph.runner import Runner, RunnerLimits
from repro.egraph.schedule import SimpleScheduler
from repro.rules import default_ruleset

_PATTERNS = [
    "(+ ?a (* ?b ?c))",
    "(* (+ ?a ?b) ?a)",
    "(+ (+ ?a ?b) ?c)",
    "(+ (* ?a ?b) (* ?b ?c))",
    "(* ?a (+ ?b ?b))",
    "(+ 1 ?x)",
]

_LEAVES = [sym("x"), sym("y"), sym("z"), num(1), num(2)]
_OPS = ["+", "*"]


def _draw_term(draw, depth):
    if depth == 0:
        return draw(st.sampled_from(_LEAVES))
    left = _draw_term(draw, depth - 1)
    right = _draw_term(draw, draw(st.integers(min_value=0, max_value=depth - 1)))
    return op(draw(st.sampled_from(_OPS)), left, right)


@st.composite
def _two_stage_script(draw):
    """Base terms/merges, then a delta batch of more terms/merges."""

    stages = []
    for lo, hi in ((2, 6), (1, 5)):
        n_terms = draw(st.integers(min_value=lo, max_value=hi))
        terms = [
            _draw_term(draw, draw(st.integers(min_value=0, max_value=3)))
            for _ in range(n_terms)
        ]
        n_merges = draw(st.integers(min_value=0, max_value=3))
        merges = [
            (
                draw(st.integers(min_value=0, max_value=99)),
                draw(st.integers(min_value=0, max_value=99)),
            )
            for _ in range(n_merges)
        ]
        stages.append((terms, merges))
    return stages


def _apply_stage(eg, roots, stage):
    terms, merges = stage
    for t in terms:
        roots.append(eg.add_term(t))
    for a, b in merges:
        eg.merge(roots[a % len(roots)], roots[b % len(roots)])
    eg.rebuild()


# ---------------------------------------------------------------------------
# Delta equivalence (hypothesis)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join backend needs numpy")
@settings(max_examples=60, deadline=None)
@given(
    script=_two_stage_script(),
    pattern_text=st.sampled_from(_PATTERNS),
    full=st.booleans(),
)
def test_delta_join_matches_incremental_scan_exactly(script, pattern_text, full):
    eg = EGraph()
    roots = []
    _apply_stage(eg, roots, script[0])
    stamp = eg.version
    _apply_stage(eg, roots, script[1])
    since = -1 if full else stamp
    cp = compile_pattern(parse_pattern(pattern_text))
    scan = cp.search_rows(eg, since=since, backend="scan")
    join = cp.search_rows(eg, since=since, backend="join")
    assert join == scan  # same rows, same order


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join backend needs numpy")
def test_delta_join_is_empty_after_quiescent_rebuild():
    """No class touched after the stamp => the delta slice is empty."""

    eg = EGraph()
    eg.add_term(op("+", sym("x"), op("*", sym("y"), sym("z"))))
    eg.rebuild()
    stamp = eg.version
    for text in _PATTERNS:
        cp = compile_pattern(parse_pattern(text))
        assert cp.search_rows(eg, since=stamp, backend="join") == []


# ---------------------------------------------------------------------------
# Delta-plan + delta-result determinism across hash seeds
# ---------------------------------------------------------------------------

_DELTA_SCRIPT = """
from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import default_ruleset

eg = EGraph()
expr = op("+", op("*", sym("a"), sym("b")),
        op("*", op("+", sym("a"), num(1)), sym("c")))
eg.add_term(expr)
rules = default_ruleset()
Runner(eg, rules, RunnerLimits(node_limit=300, iter_limit=3)).run()
stamp = eg.version
eg.add_term(op("+", expr, op("*", sym("d"), num(2))))
eg.rebuild()
for rule in rules:
    cp = rule._compiled
    plan = cp.join_plan(eg, since=stamp)
    rows = cp.search_rows(eg, since=stamp)
    print(rule.name, plan, list(rows))
"""


def _run_with_hash_seed(seed: str) -> str:
    src = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _DELTA_SCRIPT],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join plans need numpy")
def test_delta_join_plans_are_hash_seed_independent():
    outputs = {_run_with_hash_seed(seed) for seed in ("0", "1", "12345")}
    assert len(outputs) == 1, f"delta plans diverged across hash seeds: {outputs}"


# ---------------------------------------------------------------------------
# Compaction coherence under interleaved pending appends and kills
# ---------------------------------------------------------------------------


def test_compact_interleaved_with_pending_appends_and_kills():
    store = ColumnStore()
    for i in range(8):
        store.append_new((1, 0, i), i)
    store.flush()
    store.kill((1, 0, 0))
    store.kill((1, 0, 5))
    # interleave: queue new rows, kill one *pending* and one dead row's
    # neighbour, then compact with the buffer still warm
    store.append_new((2, 0, 100), 50)
    store.append_new((2, 0, 101), 51)
    store.kill((2, 0, 100))  # still pending: resolved inside the buffer
    dropped = store.compact()
    assert dropped == 2
    assert store.pending == {}  # compaction flushed the queue first
    live = [(1, 0, i) for i in (1, 2, 3, 4, 6, 7)] + [(2, 0, 101)]
    assert store.keys == live  # live-relative order preserved
    assert [store.row_of[k] for k in live] == list(range(len(live)))
    assert list(store.alive) == [1] * len(live)
    assert len(store.touch) == len(live)
    # touch indices moved: the column must be flagged for re-sync
    assert store.touch_stamp == -1


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="delta reads need numpy")
def test_delta_reads_stay_exact_across_compaction():
    """Force the rebuild-time compaction and re-check join == scan."""

    eg = EGraph()
    roots = [
        eg.add_term(op("+", sym(f"x{i}"), op("*", sym(f"y{i}"), sym("z"))))
        for i in range(300)
    ]
    eg.rebuild()
    base = roots[0]
    for r in roots[1:]:
        eg.merge(base, r)
    eg.rebuild()  # mass merge tombstones >50% of rows => compact() runs
    stamp = eg.version
    eg.add_term(op("+", sym("new"), op("*", sym("y0"), sym("z"))))
    eg.rebuild()
    for text in _PATTERNS:
        cp = compile_pattern(parse_pattern(text))
        assert cp.search_rows(eg, since=stamp, backend="join") == cp.search_rows(
            eg, since=stamp, backend="scan"
        ), text


# ---------------------------------------------------------------------------
# Batched apply == scalar apply (bit-identical e-graphs)
# ---------------------------------------------------------------------------


def _wide_graph():
    eg = EGraph()
    term = op("+", sym("s0"), sym("s1"))
    for i in range(40):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i % 7}")))
    eg.add_term(term)
    eg.rebuild()
    return eg


def _graph_signature(eg):
    return (
        list(eg.hashcons.items()),  # content *and* interning order
        list(eg.uf._parent),
        sorted(eg.classes),
        len(eg),
        eg.num_classes,
    )


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="batched applier needs numpy")
def test_batched_apply_matches_scalar_apply_bitwise():
    rules = default_ruleset()
    limits = RunnerLimits(node_limit=1500, iter_limit=3)
    eg_batched = _wide_graph()
    Runner(eg_batched, rules, limits).run()

    eg_scalar = _wide_graph()
    scalar_rules = default_ruleset()
    for rule in scalar_rules:
        # bypass the batched gate entirely: every batch runs the scalar
        # row loop (the reference mutation sequence)
        rule.apply_rows = rule._apply_rows_scalar
    Runner(eg_scalar, scalar_rules, limits).run()
    assert _graph_signature(eg_batched) == _graph_signature(eg_scalar)


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="batched applier needs numpy")
def test_batched_apply_revalidates_after_midbatch_unions():
    """Merge-heavy batches exercise the proof-revalidation fallback.

    Chains of commutable/associable sums produce batches where an early
    row's union re-roots ids later verdicts depended on; the batched
    applier must then reproduce the scalar mutation sequence exactly.
    """

    def chain_graph():
        eg = EGraph()
        term = sym("c0")
        for i in range(1, 36):
            term = op("+", term, sym(f"c{i % 5}"))
        eg.add_term(term)
        eg.rebuild()
        return eg

    rules = [r for r in default_ruleset() if r.name.startswith(("comm", "assoc"))]
    limits = RunnerLimits(node_limit=900, iter_limit=3)
    eg_batched = chain_graph()
    Runner(eg_batched, [r for r in rules], limits).run()

    eg_scalar = chain_graph()
    scalar_rules = [
        r for r in default_ruleset() if r.name.startswith(("comm", "assoc"))
    ]
    for rule in scalar_rules:
        rule.apply_rows = rule._apply_rows_scalar  # bypass the batched gate
    Runner(eg_scalar, scalar_rules, limits).run()
    assert _graph_signature(eg_batched) == _graph_signature(eg_scalar)


# ---------------------------------------------------------------------------
# Stamp pinning: dropped batches are re-found by the delta join
# ---------------------------------------------------------------------------


class _DropOnce(SimpleScheduler):
    """Drops the target rule's entire first-iteration batch."""

    name = "drop-once"

    def __init__(self, target: str) -> None:
        self.target = target
        self.dropped = 0
        self.refound = 0

    def admit(self, iteration, index, rule, matches):
        if rule.name == self.target:
            if iteration == 0 and matches:
                self.dropped = len(matches)
                return [], False  # incomplete: the stamp must stay pinned
            if iteration == 1:
                self.refound = len(matches)
        return matches, True


@pytest.mark.skipif(not columns.HAVE_NUMPY, reason="join engine needs numpy")
def test_dropped_batch_is_refound_by_delta_join():
    eg = EGraph()
    eg.add_term(op("+", sym("p"), op("*", sym("q"), sym("r"))))
    eg.rebuild()
    rules = default_ruleset()
    target = "comm-add"
    assert any(r.name == target for r in rules)
    sched = _DropOnce(target)
    Runner(eg, rules, RunnerLimits(node_limit=500, iter_limit=3),
           scheduler=sched).run()
    assert sched.dropped > 0, "scheduler never saw the first batch"
    # iteration 1 searches incrementally from the *pinned* stamp; the
    # delta join must surface at least every dropped match again
    assert sched.refound >= sched.dropped
    # and the matches were actually applied on the retry: the commuted
    # spelling is interned
    commuted = compile_pattern(parse_pattern("(+ (* ?a ?b) ?c)"))
    assert commuted.search_rows(eg, backend="join")
