"""Unit + property tests for the union-find."""

from hypothesis import given, strategies as st

from repro.egraph.unionfind import UnionFind


class TestBasics:
    def test_make_set_returns_sequential_ids(self):
        uf = UnionFind()
        assert [uf.make_set() for _ in range(4)] == [0, 1, 2, 3]

    def test_find_of_fresh_set_is_itself(self):
        uf = UnionFind()
        a = uf.make_set()
        assert uf.find(a) == a

    def test_union_merges(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        uf.union(a, b)
        assert uf.same(a, b)
        assert uf.find(a) == uf.find(b)

    def test_union_is_idempotent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        first = uf.union(a, b)
        second = uf.union(a, b)
        assert first == second

    def test_roots_after_unions(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(5)]
        uf.union(ids[0], ids[1])
        uf.union(ids[2], ids[3])
        assert len(uf.roots()) == 3

    def test_copy_is_independent(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        dup = uf.copy()
        uf.union(a, b)
        assert uf.same(a, b)
        assert not dup.same(a, b)


@given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
def test_property_union_find_equivalence_closure(pairs):
    """After arbitrary unions: reflexive, symmetric, transitive via roots."""

    uf = UnionFind()
    ids = [uf.make_set() for _ in range(20)]
    for a, b in pairs:
        uf.union(ids[a], ids[b])

    # every element's root is a fixpoint of find
    for element in ids:
        root = uf.find(element)
        assert uf.find(root) == root

    # symmetric: same(a, b) == same(b, a)
    for a, b in pairs:
        assert uf.same(ids[a], ids[b])
        assert uf.same(ids[b], ids[a])


@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
def test_property_roots_count_decreases_with_unions(pairs):
    uf = UnionFind()
    ids = [uf.make_set() for _ in range(15)]
    previous = len(uf.roots())
    for a, b in pairs:
        uf.union(ids[a], ids[b])
        current = len(uf.roots())
        assert current <= previous
        previous = current
