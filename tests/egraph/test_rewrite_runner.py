"""Tests for rewrite rules and the saturation runner."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.rewrite import rewrite
from repro.egraph.runner import Runner, RunnerLimits, StopReason
from repro.rules import constant_folding_analysis, default_ruleset


class TestRewrite:
    def test_fma_rule_merges_classes(self):
        eg = EGraph()
        root = eg.add_term(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        rule = rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")
        applied = rule.run(eg)
        eg.rebuild()
        assert applied == 1
        assert eg.lookup_term(op("fma", sym("a"), sym("b"), sym("c"))) == eg.find(root)

    def test_rule_with_guard_filters_matches(self):
        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))
        rule = rewrite(
            "comm-guarded", "(+ ?a ?b)", "(+ ?b ?a)",
            guard=lambda egraph, eclass, subst: False,
        )
        assert rule.run(eg) == 0

    def test_dynamic_applier(self):
        eg = EGraph()
        root = eg.add_term(op("*", sym("x"), num(2)))

        def double_to_add(egraph, eclass, subst):
            return egraph.add_term(op("+", sym("x"), sym("x")))

        rule = rewrite("double-to-add", "(* x 2)", double_to_add)
        assert rule.run(eg) == 1
        eg.rebuild()
        assert eg.lookup_term(op("+", sym("x"), sym("x"))) == eg.find(root)

    def test_search_limit_truncates_deterministically(self):
        eg = EGraph()
        for i in range(4):
            eg.add_term(op("+", sym(f"a{i}"), sym(f"b{i}")))
        eg.rebuild()
        rule = rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)")
        full = rule.search(eg)
        assert len(full) == 4
        # the capped search returns the first `limit` of the same order
        assert rule.search(eg, limit=2) == full[:2]
        assert rule.search(eg, limit=10) == full
        assert rule.search(eg, limit=0) == []

    def test_search_limit_applies_after_guard(self):
        eg = EGraph()
        for i in range(4):
            eg.add_term(op("+", sym(f"a{i}"), sym(f"b{i}")))
        eg.rebuild()
        seen = []

        def guard(egraph, eclass, subst):
            seen.append(eclass)
            return len(seen) % 2 == 0  # veto every other match

        rule = rewrite("comm-guarded", "(+ ?a ?b)", "(+ ?b ?a)", guard=guard)
        capped = rule.search(eg, limit=1)
        assert len(capped) == 1
        # the cap counts post-guard survivors, not raw matches
        assert len(seen) == 4

    def test_rule_application_is_idempotent_once_present(self):
        eg = EGraph()
        eg.add_term(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        rule = rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")
        rule.run(eg)
        eg.rebuild()
        assert rule.run(eg) == 0  # already equal, nothing new to merge


class TestRunner:
    def test_saturation_reached_on_small_input(self):
        eg = EGraph(constant_folding_analysis())
        eg.add_term(op("+", sym("a"), op("*", sym("b"), sym("c"))))
        report = Runner(eg, default_ruleset(), RunnerLimits(5000, 10, 5.0)).run()
        assert report.stop_reason is StopReason.SATURATED
        assert report.num_iterations >= 1
        eg.check_invariants()

    def test_node_limit_stops_runner(self):
        eg = EGraph()
        # a deep sum over many symbols saturates slowly under reassociation
        term = sym("x0")
        for i in range(1, 10):
            term = op("+", term, sym(f"x{i}"))
        eg.add_term(term)
        report = Runner(eg, default_ruleset(), RunnerLimits(node_limit=50, iter_limit=20,
                                                            time_limit=10.0)).run()
        assert report.stop_reason is StopReason.NODE_LIMIT

    def test_iteration_limit(self):
        eg = EGraph()
        term = sym("x0")
        for i in range(1, 8):
            term = op("+", term, sym(f"x{i}"))
        eg.add_term(term)
        report = Runner(eg, default_ruleset(), RunnerLimits(10_000_000, 2, 30.0)).run()
        assert report.num_iterations <= 2

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            RunnerLimits(node_limit=0).validate()
        with pytest.raises(ValueError):
            RunnerLimits(iter_limit=0).validate()

    def test_commutativity_discovers_cse(self):
        """The motivating example: B = D + E and C = E + D become equal."""

        eg = EGraph()
        b = eg.add_term(op("+", sym("D"), sym("E")))
        c = eg.add_term(op("+", sym("E"), sym("D")))
        assert not eg.is_equal(b, c)
        Runner(eg, default_ruleset(), RunnerLimits(iter_limit=5)).run()
        assert eg.is_equal(b, c)

    def test_report_summary_mentions_stop_reason(self):
        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))
        report = Runner(eg, default_ruleset(), RunnerLimits(iter_limit=3)).run()
        assert report.stop_reason.value in report.summary()


class TestConstantFolding:
    def test_arithmetic_is_folded(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(op("+", op("*", num(2), num(3)), num(4)))
        eg.rebuild()
        assert eg.lookup_term(num(10)) == eg.find(root)

    def test_division_by_zero_not_folded(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(op("/", num(1), num(0)))
        eg.rebuild()
        assert eg.data_of(root) is None

    def test_integer_division_truncates_toward_zero(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(op("/", num(-7), num(2)))
        eg.rebuild()
        assert eg.lookup_term(num(-3)) == eg.find(root)

    def test_folding_propagates_through_merges(self):
        eg = EGraph(constant_folding_analysis())
        x = eg.add_term(sym("x"))
        expr = eg.add_term(op("+", sym("x"), num(1)))
        eg.merge(x, eg.add_term(num(4)))
        eg.rebuild()
        assert eg.lookup_term(num(5)) == eg.find(expr)
