"""Property tests pinning the arena e-graph core to a reference model.

The flat interned representation (``(op_id, payload_id, *child_ids)`` keys,
batched rebuild, boundary ENode views) must be observationally identical to
a straightforward e-graph: randomized interleavings of add / merge /
rebuild / extract are mirrored into a naive reference implementation that
recomputes congruence closure by whole-graph fixpoint, and the two are
compared on

* the **equivalence partition** over every added class id (congruence
  closure finds exactly the same equalities),
* the **canonical node multiset** (same operators/payloads/child classes,
  up to the id renaming between the two implementations),
* **extraction**: per-root minimum tree costs match a reference DP exactly,
  and the arena's extracted term is well-formed with the cost it claims.

``check_invariants`` (hashcons coherence, op-index coverage, interning
table consistency, O(1) node count) runs after every rebuild.
"""

from hypothesis import given, settings, strategies as st

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.extract import TreeExtractor


# ---------------------------------------------------------------------------
# Reference implementation: naive congruence closure + naive tree DP
# ---------------------------------------------------------------------------


class RefEGraph:
    """A deliberately simple e-graph: no hashcons upkeep, no worklists.

    Nodes are ``(op, payload-type, payload, child...)`` tuples over *ref*
    class ids; congruence closure is restored by running "merge everything
    congruent" to a fixpoint over all node pairs.  Quadratic and slow —
    which is the point: it is obviously correct.
    """

    def __init__(self):
        self.parent = []
        self.nodes = {}  # canonical spelling -> class id (after closure)
        self.pending = []  # (spelling, class) added since the last closure

    # -- union-find ----------------------------------------------------------

    def find(self, x):
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def _union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra
        return self.find(ra)

    # -- operations mirrored from the arena ----------------------------------

    def _spell(self, op, payload, children):
        return (op, type(payload).__name__, payload) + tuple(
            self.find(c) for c in children
        )

    def add(self, op, payload, children):
        spelling = self._spell(op, payload, children)
        known = self._lookup(spelling)
        if known is not None:
            return known
        cid = len(self.parent)
        self.parent.append(cid)
        self.pending.append((spelling, cid))
        return cid

    def _lookup(self, spelling):
        for known, kid in list(self.nodes.items()) + self.pending:
            if known == spelling:
                return self.find(kid)
        return None

    def merge(self, a, b):
        self._union(a, b)

    def rebuild(self):
        """Whole-graph congruence closure by fixpoint."""

        entries = list(self.nodes.items()) + self.pending
        self.pending = []
        changed = True
        while changed:
            changed = False
            respelled = {}
            for spelling, cid in entries:
                head = spelling[:3]
                canon = head + tuple(self.find(c) for c in spelling[3:])
                other = respelled.get(canon)
                if other is None:
                    respelled[canon] = self.find(cid)
                elif self.find(other) != self.find(cid):
                    self._union(other, cid)
                    changed = True
            entries = list(respelled.items())
        self.nodes = dict(entries)

    # -- queries --------------------------------------------------------------

    def canonical_nodes(self):
        """Multiset of canonical nodes as (op, payload type, payload, kids)."""

        return sorted(
            spelling[:3] + tuple(self.find(c) for c in spelling[3:])
            for spelling in self.nodes
        )

    def tree_costs(self, cost_of_op):
        """Min tree cost per canonical class, by naive whole-graph fixpoint."""

        best = {}
        changed = True
        while changed:
            changed = False
            for spelling, cid in self.nodes.items():
                cid = self.find(cid)
                total = cost_of_op(spelling[0])
                feasible = True
                for child in spelling[3:]:
                    child_cost = best.get(self.find(child))
                    if child_cost is None:
                        feasible = False
                        break
                    total += child_cost
                if feasible and total < best.get(cid, float("inf")):
                    best[cid] = total
                    changed = True
        return best


class _OpCost:
    """Tiny cost model for the property tests (op-dependent, payload-free)."""

    COSTS = {"sym": 1.0, "f": 2.0, "+": 10.0, "*": 10.0, "-": 10.0}

    def enode_cost(self, enode: ENode) -> float:
        return self.COSTS.get(enode.op, 5.0)

    @classmethod
    def of_op(cls, op: str) -> float:
        return cls.COSTS.get(op, 5.0)


# ---------------------------------------------------------------------------
# The interleaving property
# ---------------------------------------------------------------------------

_OPS = ["+", "*", "-", "f"]

#: One step of the randomized interleaving:
#: ("add", op index, arity, child picks) / ("merge", pick, pick) /
#: ("rebuild",) / ("extract", pick)
_steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.integers(0, len(_OPS) - 1),
            st.integers(0, 2),
            st.tuples(st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
        ),
        st.tuples(st.just("merge"), st.integers(0, 10 ** 6), st.integers(0, 10 ** 6)),
        st.tuples(st.just("rebuild")),
        st.tuples(st.just("extract"), st.integers(0, 10 ** 6)),
    ),
    min_size=1,
    max_size=40,
)


def _compare_partitions(eg: EGraph, ref: RefEGraph, ids, ref_ids):
    """Both implementations must equate exactly the same pairs of adds."""

    n = len(ids)
    for i in range(n):
        for j in range(i + 1, n):
            assert eg.is_equal(ids[i], ids[j]) == (
                ref.find(ref_ids[i]) == ref.find(ref_ids[j])
            ), f"equivalence of adds #{i} and #{j} diverges"


def _compare_nodes(eg: EGraph, ref: RefEGraph, ids, ref_ids):
    """Canonical node multisets agree modulo the class-id renaming."""

    # build the (partial) id bijection from the paired add handles
    rename = {}
    for a, r in zip(ids, ref_ids):
        rename[eg.find(a)] = ref.find(r)
    arena = sorted(
        (node.op, type(node.payload).__name__, node.payload)
        + tuple(rename[eg.find(c)] for c in node.children)
        for _, node in eg.canonical_nodes()
    )
    assert arena == ref.canonical_nodes()


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_arena_matches_reference_under_interleavings(steps):
    eg = EGraph()
    ref = RefEGraph()
    cost = _OpCost()

    ids = []      # arena class id per add, in op order
    ref_ids = []  # reference class id per add, same order
    seeded = [
        (eg.add(ENode("sym", (), f"s{i}")), ref.add("sym", f"s{i}", ()))
        for i in range(3)
    ]
    for a, r in seeded:
        ids.append(a)
        ref_ids.append(r)

    dirty = False
    for step in steps:
        kind = step[0]
        if kind == "add":
            _, op_index, arity, picks = step
            chosen = [picks[k % 2] % len(ids) for k in range(arity)]
            op = _OPS[op_index]
            a = eg.add(ENode(op, tuple(eg.find(ids[c]) for c in chosen)))
            r = ref.add(op, None, tuple(ref_ids[c] for c in chosen))
            ids.append(a)
            ref_ids.append(r)
            dirty = True
        elif kind == "merge":
            _, x, y = step
            i, j = x % len(ids), y % len(ids)
            eg.merge(ids[i], ids[j])
            ref.merge(ref_ids[i], ref_ids[j])
            dirty = True
        elif kind == "rebuild":
            eg.rebuild()
            ref.rebuild()
            eg.check_invariants()
            dirty = False
        else:  # extract
            if dirty:
                # both engines only promise closure after an explicit rebuild
                continue
            _, x = step
            i = x % len(ids)
            expected = ref.tree_costs(_OpCost.of_op).get(ref.find(ref_ids[i]))
            extractor = TreeExtractor(eg, cost)
            if expected is None:
                continue
            assert extractor.best_cost(ids[i]) == expected
            term = extractor.extract_term(ids[i])
            # the extracted term is well-formed and priced consistently
            assert sum(_OpCost.of_op(t.op) for t in term.walk()) == expected

    eg.rebuild()
    ref.rebuild()
    eg.check_invariants()
    _compare_partitions(eg, ref, ids, ref_ids)
    _compare_nodes(eg, ref, ids, ref_ids)

    # final extraction comparison on every class with a finite cost
    expected_costs = ref.tree_costs(_OpCost.of_op)
    extractor = TreeExtractor(eg, cost)
    for i, (a, r) in enumerate(zip(ids, ref_ids)):
        expected = expected_costs.get(ref.find(r))
        if expected is None:
            continue
        assert extractor.best_cost(a) == expected, f"tree cost of add #{i}"
