"""Cooperative cancellation: the token and its runner integration.

The contract under test: a :class:`CancellationToken` never interrupts
anything — the runner polls it at iteration boundaries only, so a tripped
token stops the loop with the e-graph canonical and (when anytime
extraction ran) the snapshot coherent, which is what makes deadline
degradation byte-deterministic.
"""

import time

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.language import op, sym
from repro.egraph.rewrite import rewrite
from repro.egraph.runner import (
    CancellationToken,
    FileTripSignal,
    Runner,
    RunnerLimits,
    StopReason,
)


def _chain_egraph(depth: int = 6) -> EGraph:
    eg = EGraph()
    term = sym("x0")
    for i in range(1, depth):
        term = op("+", term, sym(f"x{i}"))
    eg.add_term(term)
    eg.rebuild()
    return eg


#: A rule pair that keeps the loop busy for many iterations.
RULES = [
    rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)"),
    rewrite("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
]


class TestCancellationToken:
    def test_fresh_token_is_untripped(self):
        token = CancellationToken()
        assert not token.cancelled and not token.expired
        assert token.tripped() is None

    def test_cancel_is_idempotent_and_irrevocable(self):
        token = CancellationToken()
        token.cancel()
        token.cancel()
        assert token.cancelled
        assert token.tripped() is StopReason.CANCELLED

    def test_expire_forces_deadline_without_a_clock(self):
        token = CancellationToken()
        token.expire()
        assert token.expired
        assert token.tripped() is StopReason.DEADLINE

    def test_timeout_becomes_an_absolute_monotonic_deadline(self):
        token = CancellationToken(timeout=1000.0)
        assert token.deadline is not None
        assert token.deadline > time.monotonic()
        assert token.tripped() is None

    def test_negative_timeout_is_already_expired(self):
        token = CancellationToken(timeout=-1.0)
        assert token.expired
        assert token.tripped() is StopReason.DEADLINE

    def test_explicit_deadline_and_timeout_take_the_earlier(self):
        at = time.monotonic() + 5.0
        token = CancellationToken(deadline=at, timeout=1000.0)
        assert token.deadline == at

    def test_cancel_wins_over_expired_deadline(self):
        token = CancellationToken(timeout=-1.0)
        token.cancel()
        assert token.tripped() is StopReason.CANCELLED


class TestFileTripSignal:
    """The file-backed trip transport behind cross-process cancellation."""

    def test_untripped_signal_polls_none(self, tmp_path):
        signal = FileTripSignal(tmp_path / "job.trip")
        assert signal.poll() is None

    def test_trip_round_trips_through_a_second_signal(self, tmp_path):
        path = tmp_path / "job.trip"
        FileTripSignal(path).trip("deadline")
        assert FileTripSignal(path).poll() == "deadline"

    def test_cancelled_supersedes_deadline_never_the_reverse(self, tmp_path):
        path = tmp_path / "job.trip"
        signal = FileTripSignal(path)
        signal.trip("deadline")
        signal.trip("cancelled")
        assert signal.poll() == "cancelled"
        # a later deadline trip (e.g. the clock firing after an explicit
        # cancel) must not demote the cancellation
        signal.trip("deadline")
        assert signal.poll() == "cancelled"
        assert FileTripSignal(path).poll() == "cancelled"

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FileTripSignal(tmp_path / "job.trip").trip("paused")

    def test_garbage_file_polls_none(self, tmp_path):
        path = tmp_path / "job.trip"
        path.write_text("not-a-kind")
        assert FileTripSignal(path).poll() is None

    def test_two_tokens_sharing_a_signal_share_their_trips(self, tmp_path):
        """The cross-process contract, minus the processes: the 'parent'
        token cancels, the 'child' token (a distinct object on the same
        path) observes it — and vice versa for deadlines."""

        path = tmp_path / "job.trip"
        parent = CancellationToken(signal=FileTripSignal(path))
        child = CancellationToken(signal=FileTripSignal(path))

        assert not child.cancelled and not child.expired
        parent.cancel()
        assert child.cancelled
        assert child.tripped() is StopReason.CANCELLED

        other = tmp_path / "other.trip"
        parent2 = CancellationToken(signal=FileTripSignal(other))
        child2 = CancellationToken(signal=FileTripSignal(other))
        child2.expire()
        assert parent2.expired and not parent2.cancelled
        assert parent2.tripped() is StopReason.DEADLINE

    def test_signalled_runner_stops_like_a_local_trip(self, tmp_path):
        """A runner polling a token whose only trip arrives via the file
        stops at the observing boundary, byte-identical to an iter-limit
        stop there — the degradation contract's foundation."""

        path = tmp_path / "job.trip"
        remote = FileTripSignal(path)
        token = CancellationToken(signal=FileTripSignal(path))

        def hook(row):
            if row.index == 1:
                remote.trip("deadline")

        report = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0),
            cancellation=token, on_iteration=hook,
        ).run()
        assert report.stop_reason is StopReason.DEADLINE
        assert len(report.iterations) == 2

        limited = Runner(_chain_egraph(), RULES, RunnerLimits(5000, 2, 60.0)).run()
        assert [r.egraph_nodes for r in limited.iterations] == [
            r.egraph_nodes for r in report.iterations
        ]


class TestRunnerCancellation:
    def test_untripped_token_changes_nothing(self):
        plain = Runner(_chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0)).run()
        with_token = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0),
            cancellation=CancellationToken(timeout=1000.0),
        ).run()
        assert with_token.stop_reason == plain.stop_reason
        assert len(with_token.iterations) == len(plain.iterations)
        assert [r.egraph_nodes for r in with_token.iterations] == [
            r.egraph_nodes for r in plain.iterations
        ]

    def test_pre_tripped_deadline_stops_before_any_iteration(self):
        token = CancellationToken()
        token.expire()
        report = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0),
            cancellation=token,
        ).run()
        assert report.stop_reason is StopReason.DEADLINE
        assert report.iterations == []

    def test_pre_cancelled_token_stops_before_any_iteration(self):
        token = CancellationToken()
        token.cancel()
        report = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0),
            cancellation=token,
        ).run()
        assert report.stop_reason is StopReason.CANCELLED
        assert report.iterations == []

    @pytest.mark.parametrize("trip_at", [0, 1, 2])
    def test_trip_from_the_progress_hook_stops_at_that_boundary(self, trip_at):
        """Expiring during iteration k stops with exactly k+1 iterations —
        the boundary the hook observed, matching what an iter-limit stop
        at the same boundary sees."""

        token = CancellationToken()

        def hook(row):
            if row.index == trip_at:
                token.expire()

        report = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, 8, 60.0),
            cancellation=token, on_iteration=hook,
        ).run()
        assert report.stop_reason is StopReason.DEADLINE
        assert len(report.iterations) == trip_at + 1

        limited = Runner(
            _chain_egraph(), RULES, RunnerLimits(5000, trip_at + 1, 60.0)
        ).run()
        assert [r.egraph_nodes for r in limited.iterations] == [
            r.egraph_nodes for r in report.iterations
        ]

    def test_natural_stops_outrank_the_token(self):
        # a token tripped at the same boundary where saturation completes
        # must not mask the SATURATED verdict
        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))
        eg.rebuild()
        rules = [rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")]
        token = CancellationToken()

        def hook(row):
            token.expire()

        report = Runner(
            eg, rules, RunnerLimits(5000, 8, 60.0),
            cancellation=token, on_iteration=hook,
        ).run()
        assert report.stop_reason is StopReason.SATURATED
