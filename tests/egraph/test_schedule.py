"""Rule schedulers, anytime extraction, and plateau-based early stopping."""

import time

import pytest

from repro.cost import DEFAULT_COST_MODEL
from repro.egraph import (
    AnytimeExtraction,
    BackoffScheduler,
    EGraph,
    ExtractionMemo,
    MatchBudgetScheduler,
    Runner,
    RunnerLimits,
    RunnerReport,
    SimpleScheduler,
    StopReason,
    extract_best,
    make_scheduler,
)
from repro.egraph.language import num, op, sym
from repro.egraph.rewrite import rewrite
from repro.rules import constant_folding_analysis, default_ruleset


def _sum_chain(n: int):
    term = sym("x0")
    for i in range(1, n):
        term = op("+", term, sym(f"x{i}"))
    return term


def _bench_term():
    term = sym("x0")
    for i in range(1, 7):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    return term


def _run(scheduler, limits=RunnerLimits(2000, 5, 300.0), term=None):
    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(term if term is not None else _bench_term())
    report = Runner(eg, default_ruleset(), limits, scheduler=scheduler).run()
    return eg, root, report


def _outcome(report: RunnerReport):
    return (
        report.stop_reason,
        report.egraph_nodes,
        report.egraph_classes,
        [it.applied for it in report.iterations],
        {name: (rs.matches, rs.applied, rs.searches)
         for name, rs in report.rule_stats.items()},
    )


class TestMakeScheduler:
    def test_spellings(self):
        assert isinstance(make_scheduler(None), SimpleScheduler)
        assert isinstance(make_scheduler("simple"), SimpleScheduler)
        backoff = make_scheduler("backoff:64:3")
        assert isinstance(backoff, BackoffScheduler)
        assert (backoff.match_limit, backoff.ban_length) == (64, 3)
        assert make_scheduler("backoff").match_limit == 1000
        budget = make_scheduler("match-budget:17")
        assert isinstance(budget, MatchBudgetScheduler)
        assert budget.budget == 17

    def test_existing_scheduler_passes_through(self):
        scheduler = BackoffScheduler(10, 2)
        assert make_scheduler(scheduler) is scheduler

    @pytest.mark.parametrize(
        "spec", ["", "bogus", "backoff:1:2:3", "backoff:x", "match-budget:0:1"]
    )
    def test_rejects_bad_spellings(self, spec):
        with pytest.raises(ValueError):
            make_scheduler(spec)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            BackoffScheduler(match_limit=0)
        with pytest.raises(ValueError):
            BackoffScheduler(ban_length=0)
        with pytest.raises(ValueError):
            MatchBudgetScheduler(budget=0)


class TestSimpleScheduler:
    def test_identical_to_default_runner(self):
        """The scheduler seam must not change the classic loop at all:
        same stop reason, same truncated e-graph, same per-rule stats."""

        _, _, baseline = _run(None)
        _, _, explicit = _run(SimpleScheduler())
        _, _, spelled = _run("simple")
        assert baseline.stop_reason is StopReason.NODE_LIMIT
        assert _outcome(baseline) == _outcome(explicit) == _outcome(spelled)
        assert explicit.scheduler == "simple"


class TestBackoffScheduler:
    def test_exploding_rule_gets_banned(self):
        eg, _, report = _run(BackoffScheduler(match_limit=8, ban_length=1),
                             limits=RunnerLimits(100_000, 6, 300.0))
        scheduler = BackoffScheduler(match_limit=8, ban_length=1)
        eg2 = EGraph(constant_folding_analysis())
        eg2.add_term(_bench_term())
        Runner(eg2, default_ruleset(), RunnerLimits(100_000, 6, 300.0),
               scheduler=scheduler).run()
        assert scheduler.stats_dict(), "some rule must trip the tiny threshold"
        # a banned rule searched fewer times than the iteration count
        searched = [rs.searches for rs in report.rule_stats.values()]
        assert min(searched) < report.num_iterations

    def test_no_premature_saturation_while_banned(self):
        """An applied==0 iteration with live bans must not stop the run:
        the banned rule's matches may still union something later."""

        # one exploding rule (commutativity everywhere) and nothing else:
        # iteration 0 finds many matches -> banned, batch dropped, 0 unions
        rules = [rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)")]
        eg = EGraph()
        eg.add_term(_sum_chain(6))
        runner = Runner(
            eg, rules, RunnerLimits(100_000, 10, 300.0),
            scheduler=BackoffScheduler(match_limit=2, ban_length=1),
        )
        report = runner.run()
        assert report.iterations[0].applied == 0
        assert report.stop_reason is not StopReason.ITER_LIMIT or \
            report.num_iterations == 10
        # the rule eventually fired: the commuted spellings exist
        assert report.total_applied > 0
        # and the run did NOT report saturation on the empty first iteration
        assert report.num_iterations > 1

    def test_reaches_the_same_fixpoint_as_simple(self):
        """Backoff delays work but drops none of it: on a workload the
        simple scheduler saturates, backoff saturates to the same e-graph
        (possibly over more iterations)."""

        limits = RunnerLimits(100_000, 40, 300.0)
        term = _sum_chain(4)
        eg_simple, root_s, rep_simple = _run(None, limits, term)
        eg_backoff, root_b, rep_backoff = _run(
            BackoffScheduler(match_limit=4, ban_length=1), limits, term
        )
        assert rep_simple.stop_reason is StopReason.SATURATED
        assert rep_backoff.stop_reason is StopReason.SATURATED
        assert rep_backoff.num_iterations >= rep_simple.num_iterations
        # the discovered equivalences agree (node counts may differ by
        # transient RHS spellings — application order decides which
        # spellings get hashconsed on the way to the fixpoint)
        assert eg_simple.num_classes == eg_backoff.num_classes
        cost_s = extract_best(eg_simple, [root_s], DEFAULT_COST_MODEL).dag_cost
        cost_b = extract_best(eg_backoff, [root_b], DEFAULT_COST_MODEL).dag_cost
        assert cost_s == cost_b
        eg_backoff.check_invariants()


class TestMatchBudgetScheduler:
    def test_window_rotates_through_the_match_order(self):
        scheduler = MatchBudgetScheduler(2)
        rule = rewrite("comm", "(+ ?a ?b)", "(+ ?b ?a)")
        scheduler.reset([rule])
        batch = [(i, {}) for i in range(5)]

        first, complete = scheduler.admit(0, 0, rule, batch)
        assert (first, complete) == (batch[0:2], False)
        second, _ = scheduler.admit(1, 0, rule, batch)
        assert second == batch[2:4]
        third, _ = scheduler.admit(2, 0, rule, batch)
        assert third == batch[4:5] + batch[0:1]  # wraps around

        # a batch within budget commits fully and resets the rotation
        small, complete = scheduler.admit(3, 0, rule, batch[:2])
        assert (small, complete) == (batch[:2], True)
        assert scheduler.admit(4, 0, rule, batch)[0] == batch[0:2]

    def test_truncation_does_not_lose_matches(self):
        """Capped batches pin the incremental-scan stamp, so dropped
        matches are re-found: the run saturates to the simple scheduler's
        exact fixpoint, just over more iterations."""

        limits = RunnerLimits(100_000, 150, 300.0)
        term = _sum_chain(4)
        eg_simple, root_s, rep_simple = _run(None, limits, term)
        eg_budget, root_b, rep_budget = _run(MatchBudgetScheduler(2), limits, term)
        assert rep_simple.stop_reason is StopReason.SATURATED
        # the zero-union streak eventually spans a full window rotation,
        # which certifies saturation even though every batch was truncated
        assert rep_budget.stop_reason is StopReason.SATURATED
        assert eg_simple.num_classes == eg_budget.num_classes
        cost_s = extract_best(eg_simple, [root_s], DEFAULT_COST_MODEL).dag_cost
        cost_b = extract_best(eg_budget, [root_b], DEFAULT_COST_MODEL).dag_cost
        assert cost_s == cost_b

    def test_runs_are_reproducible(self):
        outcomes = {
            _outcome(_run(MatchBudgetScheduler(5), RunnerLimits(500, 6, 300.0))[2])[:3]
            for _ in range(3)
        }
        assert len(outcomes) == 1


class TestAnytimeExtraction:
    def test_records_cost_trajectory_at_interval_boundaries(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(_bench_term())
        anytime = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=2, patience=99
        )
        report = Runner(eg, default_ruleset(), RunnerLimits(2000, 5, 300.0),
                        anytime=anytime).run()
        for it in report.iterations:
            if (it.index + 1) % 2 == 0:
                assert it.extracted_cost is not None
            else:
                assert it.extracted_cost is None
        assert report.extracted_cost is not None
        assert report.extract_time > 0.0

    def test_plateau_stops_early_with_matching_cost(self):
        """On the bench term the extracted cost stops improving before the
        budget runs out: anytime mode stops with COST_PLATEAU in fewer
        iterations, at the cost the full run would have reached."""

        limits = RunnerLimits(2000, 5, 300.0)
        eg_full, root_full, rep_full = _run(None, limits)
        full_cost = extract_best(eg_full, [root_full], DEFAULT_COST_MODEL).dag_cost

        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(_bench_term())
        anytime = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=1, patience=2
        )
        report = Runner(eg, default_ruleset(), limits, anytime=anytime).run()
        assert report.stop_reason is StopReason.COST_PLATEAU
        assert report.num_iterations < rep_full.num_iterations
        assert report.extracted_cost == full_cost

    def test_extraction_never_mutates_the_egraph(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(_bench_term())
        anytime = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=1, patience=99
        )
        report = Runner(eg, default_ruleset(), RunnerLimits(2000, 5, 300.0),
                        anytime=anytime).run()
        # outcome identical to a run without the hook
        eg2, _, rep2 = _run(None)
        assert (report.stop_reason, report.egraph_nodes, report.egraph_classes) == (
            rep2.stop_reason, rep2.egraph_nodes, rep2.egraph_classes
        )
        eg.check_invariants()

    def test_memo_is_created_and_reusable(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(_bench_term())
        anytime = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=1, patience=99
        )
        assert anytime.memo is None
        Runner(eg, default_ruleset(), RunnerLimits(2000, 3, 300.0),
               anytime=anytime).run()
        memo = anytime.memo
        assert memo is not None
        stats = memo.stats_dict()
        assert stats["full_builds"] == 1
        assert stats["refreshes"] >= 1
        # the final e-graph version matches the last in-loop evaluation, so
        # a fresh extraction through the memo is a whole-result cache hit
        before = memo.result_hits
        extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy", memo=memo)
        assert memo.result_hits == before + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Runner(
                EGraph(), [], anytime=AnytimeExtraction(
                    roots=[], cost_model=DEFAULT_COST_MODEL, interval=0
                )
            )
        with pytest.raises(ValueError):
            Runner(
                EGraph(), [], anytime=AnytimeExtraction(
                    roots=[], cost_model=DEFAULT_COST_MODEL, patience=0
                )
            )


class TestPipelineIntegration:
    def test_anytime_pipeline_final_extraction_is_a_result_hit(self):
        from repro.benchsuite.npb.cg import CG
        from repro.saturator import SaturatorConfig, optimize_source

        config = SaturatorConfig(
            limits=RunnerLimits(2000, 6, 300.0),
            anytime_extraction=True,
            plateau_patience=2,
        )
        result = optimize_source(CG.kernels[0].source, config)
        kernel = result.kernels[0]
        assert kernel.runner is not None
        assert any(it.extracted_cost is not None for it in kernel.runner.iterations)
        assert kernel.extraction_memo is not None
        # the extraction stage re-used the in-loop memo: at minimum the DP
        # table, and (when the loop stopped at an evaluation boundary) the
        # whole cached result
        assert kernel.extraction_memo["result_hits"] >= 1

    def test_scheduler_spelling_flows_through_config(self):
        from repro.benchsuite.npb.cg import CG
        from repro.saturator import SaturatorConfig, optimize_source

        config = SaturatorConfig(
            limits=RunnerLimits(500, 3, 300.0), scheduler="backoff:32:2"
        )
        result = optimize_source(CG.kernels[0].source, config)
        assert result.kernels[0].runner.scheduler == "backoff"

    def test_bad_scheduler_spelling_fails_fast(self):
        from repro.benchsuite.npb.cg import CG
        from repro.saturator import SaturatorConfig, optimize_source

        with pytest.raises(ValueError):
            optimize_source(
                CG.kernels[0].source, SaturatorConfig(scheduler="bogus")
            )


class TestSearchPhaseBlownBudget:
    def test_search_timeout_stops_before_apply(self):
        """A search phase that alone blows the budget must record a
        zero-apply iteration and stop with TIME_LIMIT — matches found but
        never committed, scan stamps untouched (runner.py's mid-iteration
        early exit, previously uncovered)."""

        eg = EGraph()
        eg.add_term(op("+", sym("a"), sym("b")))

        def slow_guard(egraph, eclass, subst):
            time.sleep(0.03)
            return True

        rules = [rewrite("slow-comm", "(+ ?a ?b)", "(+ ?b ?a)", guard=slow_guard)]
        runner = Runner(eg, rules, RunnerLimits(10_000, 10, 0.01))
        report = runner.run()

        assert report.stop_reason is StopReason.TIME_LIMIT
        assert report.num_iterations == 1
        row = report.iterations[0]
        assert row.applied == 0
        assert row.apply_time == 0.0
        assert row.rebuild_time == 0.0
        assert row.search_time > 0.0
        # the match was found, but never applied
        stats = report.rule_stats["slow-comm"]
        assert stats.matches >= 1
        assert stats.applied == 0
        # scan stamps untouched: a re-run still performs the full scan
        assert runner._last_scan == [-1]


class TestReportBackCompat:
    def test_pre_pr4_report_still_loads(self):
        """A report serialised before the scheduler/anytime fields existed
        must deserialise with defaults (scheduler=simple, no costs)."""

        old = {
            "stop_reason": "node_limit",
            "total_time": 1.5,
            "egraph_nodes": 100,
            "egraph_classes": 40,
            "iterations": [
                {
                    "index": 0,
                    "applied": 7,
                    "egraph_nodes": 100,
                    "egraph_classes": 40,
                    "search_time": 0.1,
                    "apply_time": 0.2,
                    "rebuild_time": 0.3,
                }
            ],
            "rule_stats": {},
            "phase_times": {"search": 0.1, "apply": 0.2, "rebuild": 0.3,
                            "extract": 0.4},
        }
        report = RunnerReport.from_dict(old)
        assert report.stop_reason is StopReason.NODE_LIMIT
        assert report.scheduler == "simple"
        assert report.iterations[0].extracted_cost is None
        assert report.extracted_cost is None
        assert report.extract_time == 0.4

    def test_new_fields_round_trip(self):
        eg = EGraph(constant_folding_analysis())
        root = eg.add_term(_bench_term())
        anytime = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=1, patience=2
        )
        report = Runner(eg, default_ruleset(), RunnerLimits(2000, 8, 300.0),
                        scheduler="match-budget:64", anytime=anytime).run()
        restored = RunnerReport.from_json(report.to_json())
        assert restored.stop_reason == report.stop_reason
        assert restored.scheduler == report.scheduler == "match-budget"
        assert restored.as_dict() == report.as_dict()
        assert [it.extracted_cost for it in restored.iterations] == [
            it.extracted_cost for it in report.iterations
        ]

    def test_cost_plateau_stop_reason_round_trips(self):
        assert StopReason("cost_plateau") is StopReason.COST_PLATEAU
        data = {
            "stop_reason": "cost_plateau",
            "total_time": 0.0,
            "egraph_nodes": 1,
            "egraph_classes": 1,
            "iterations": [],
        }
        assert RunnerReport.from_dict(data).stop_reason is StopReason.COST_PLATEAU

    def test_unknown_future_iteration_keys_are_dropped(self):
        row = {
            "index": 0, "applied": 1, "egraph_nodes": 2, "egraph_classes": 2,
            "search_time": 0.0, "apply_time": 0.0, "rebuild_time": 0.0,
            "extracted_cost": 3.5, "some_pr9_field": "ignored",
        }
        from repro.egraph.runner import IterationReport

        restored = IterationReport.from_dict(row)
        assert restored.extracted_cost == 3.5
        assert not hasattr(restored, "some_pr9_field")
