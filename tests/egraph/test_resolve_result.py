"""Rebasing extraction snapshots onto a mutated e-graph (resolve_result).

The anytime best-result snapshot freezes class ids at the iteration that
produced it; later merges re-canonicalize or collapse those classes.
``resolve_result`` must re-key the selection, price it as a DAG under the
current partition, and refuse (return None) when merges made the
selection cyclic or incomplete.
"""

from repro.egraph import EGraph, extract_best, resolve_result
from repro.egraph.language import op, sym


class _OpCost:
    """Cost per operator name (leaves default to 1)."""

    def __init__(self, table=None):
        self.table = table or {}

    def enode_cost(self, enode):
        return float(self.table.get(enode.op, 1.0))


def test_unchanged_egraph_round_trips():
    eg = EGraph()
    root = eg.add_term(op("+", sym("x"), sym("y")))
    eg.rebuild()
    cost = _OpCost({"+": 2.0})
    result = extract_best(eg, [root], cost)
    resolved = resolve_result(eg, result, [root], cost)
    assert resolved is not None
    assert resolved.dag_cost == result.dag_cost
    assert resolved.terms[root] == result.terms[root]
    assert set(resolved.choices) == set(result.choices)


def test_merge_of_two_selected_classes_collapses_to_the_cheaper_choice():
    eg = EGraph()
    x = eg.add_term(sym("x"))
    y = eg.add_term(sym("y"))
    root = eg.add_term(op("+", sym("x"), sym("y")))
    eg.rebuild()
    cost = _OpCost({"+": 2.0})
    snapshot = extract_best(eg, [root], cost)
    assert snapshot.dag_cost == 4.0  # + (2) + x (1) + y (1)

    # later iteration discovers x == y
    eg.merge(x, y)
    eg.rebuild()
    resolved = resolve_result(eg, snapshot, [root], cost)
    assert resolved is not None
    # the collapsed class is paid once now
    assert resolved.dag_cost == 3.0
    assert set(resolved.choices) == {eg.find(root), eg.find(x)}
    # the rebuilt term spells both children through the kept choice
    term = resolved.terms[root]
    assert term.op == "+"
    assert term.children[0] == term.children[1]


def test_root_merged_into_child_yields_none_when_selection_turns_cyclic():
    eg = EGraph()
    inner = eg.add_term(op("g", sym("x")))
    root = eg.add_term(op("f", op("g", sym("x"))))
    eg.rebuild()
    # make f irresistibly cheap so the collision keeps the cyclic spelling
    cost = _OpCost({"f": 0.0, "g": 5.0})
    snapshot = extract_best(eg, [root], cost)

    eg.merge(root, inner)  # f(g(x)) == g(x): root class absorbs its child
    eg.rebuild()
    resolved = resolve_result(eg, snapshot, [root], cost)
    # keeping f's node makes the class its own child -> cyclic -> refused
    assert resolved is None


def test_root_merged_into_child_resolves_when_acyclic_choice_wins():
    eg = EGraph()
    inner = eg.add_term(op("g", sym("x")))
    root = eg.add_term(op("f", op("g", sym("x"))))
    eg.rebuild()
    # g is cheaper, so after the merge the collision keeps g(x) — acyclic
    cost = _OpCost({"f": 5.0, "g": 1.0})
    snapshot = extract_best(eg, [root], cost)

    eg.merge(root, inner)
    eg.rebuild()
    resolved = resolve_result(eg, snapshot, [root], cost)
    assert resolved is not None
    assert resolved.terms[root].op == "g"
    assert resolved.dag_cost == 2.0  # g (1) + x (1)


def test_snapshot_stays_valid_as_the_graph_grows_around_it():
    eg = EGraph()
    root = eg.add_term(op("*", op("+", sym("a"), sym("b")), sym("c")))
    eg.rebuild()
    cost = _OpCost({"*": 3.0, "+": 2.0})
    snapshot = extract_best(eg, [root], cost)

    # unrelated growth and a merge that only re-canonicalizes ids
    extra = eg.add_term(op("+", sym("b"), sym("a")))
    plus = eg.add_term(op("+", sym("a"), sym("b")))
    eg.merge(extra, plus)
    eg.rebuild()
    resolved = resolve_result(eg, snapshot, [root], cost)
    assert resolved is not None
    assert resolved.dag_cost == snapshot.dag_cost
    assert resolved.terms[root] == snapshot.terms[root]
