"""Tests for the experiment harness (tables and figures).

These run the real pipeline + GPU model on a reduced setting and check the
qualitative claims of the paper's evaluation (who wins, and roughly where).
"""

import pytest

from repro.benchsuite import get_benchmark
from repro.experiments import table1
from repro.experiments.common import (
    EvaluationSettings,
    VARIANT_ORDER,
    characterize_kernel,
    evaluate_benchmark,
    format_speedup_table,
)
from repro.gpusim import A100_PCIE_40GB, A100_SXM4_80GB

FAST = EvaluationSettings(node_limit=1500, iter_limit=3, time_limit=3.0)


class TestTable1:
    def test_rule_table_consistent_with_implementation(self):
        rows = table1.run()
        assert len(rows) == 9
        assert "FMA1" in table1.format_table(rows)


class TestCharacterization:
    def test_cse_reduces_loads_on_olbm(self):
        """Paper §VIII: CSE removes ~50% of olbm's loads."""

        olbm = get_benchmark("olbm").kernels[0]
        char = characterize_kernel(olbm, "cse", FAST)
        assert char.generated.loads < 0.6 * char.original.loads

    def test_saturation_introduces_fmas_on_bt(self):
        bt = get_benchmark("BT").kernels[0]
        char = characterize_kernel(bt, "accsat", FAST)
        assert char.generated.fmas > 0

    def test_bulk_flag_set_only_for_bulk_variants(self):
        bt = get_benchmark("BT").kernels[0]
        assert not characterize_kernel(bt, "cse", FAST).bulk_load
        assert characterize_kernel(bt, "cse+bulk", FAST).bulk_load
        assert characterize_kernel(bt, "accsat", FAST).bulk_load


class TestFigure2Shape:
    """Qualitative checks of Figure 2 (NPB, A100-PCIE-40GB)."""

    @pytest.fixture(scope="class")
    def bt_results(self):
        bench = get_benchmark("BT")
        return {
            compiler: evaluate_benchmark(bench, compiler, A100_PCIE_40GB, settings=FAST)
            for compiler in ("nvhpc", "gcc")
        }

    def test_accsat_speeds_up_bt_on_both_compilers(self, bt_results):
        assert bt_results["nvhpc"].speedup("accsat") > 1.05
        assert bt_results["gcc"].speedup("accsat") > 1.3

    def test_gcc_gains_more_than_nvhpc(self, bt_results):
        assert bt_results["gcc"].speedup("accsat") > bt_results["nvhpc"].speedup("accsat")

    def test_bulk_load_is_the_dominant_contribution(self, bt_results):
        for compiler in ("nvhpc", "gcc"):
            comparison = bt_results[compiler]
            assert comparison.speedup("cse+bulk") > comparison.speedup("cse+sat")

    def test_no_variant_causes_large_slowdown(self, bt_results):
        for comparison in bt_results.values():
            for variant in VARIANT_ORDER:
                assert comparison.speedup(variant) > 0.85

    def test_neutral_benchmark_stays_flat(self):
        ft = evaluate_benchmark(get_benchmark("FT"), "nvhpc", A100_PCIE_40GB, settings=FAST)
        for variant in VARIANT_ORDER:
            assert 0.9 < ft.speedup(variant) < 1.15


class TestFigure5Shape:
    def test_sxm_is_faster_in_absolute_terms(self):
        bench = get_benchmark("BT")
        pcie = evaluate_benchmark(bench, "nvhpc", A100_PCIE_40GB, settings=FAST)
        sxm = evaluate_benchmark(bench, "nvhpc", A100_SXM4_80GB, settings=FAST)
        assert sxm.total_time["original"] < pcie.total_time["original"]
        assert sxm.speedup("accsat") > 1.0


class TestFigure4Shape:
    def test_spec_bt_kernels_directive_hurts_gcc_original(self):
        """Table III: GCC's original spec-bt is far slower than NVHPC's."""

        bench = get_benchmark("bt")
        gcc = evaluate_benchmark(bench, "gcc", A100_PCIE_40GB, ("original",), FAST)
        nvhpc = evaluate_benchmark(bench, "nvhpc", A100_PCIE_40GB, ("original",), FAST)
        assert gcc.total_time["original"] > 2.0 * nvhpc.total_time["original"]

    def test_olbm_gains_from_cse_on_gcc(self):
        comparison = evaluate_benchmark(get_benchmark("olbm"), "gcc", A100_PCIE_40GB,
                                        settings=FAST)
        assert comparison.speedup("cse") > 1.2


class TestReporting:
    def test_format_speedup_table_layout(self):
        comparison = evaluate_benchmark(get_benchmark("MG"), "nvhpc", A100_PCIE_40GB,
                                        settings=FAST)
        text = format_speedup_table([comparison])
        assert "MG" in text
        assert "accsat" in text
        assert "x" in text
