"""The experiment harness's shared disk cache (REPRO_CACHE_DIR hook).

The figure/table harness defaults to an in-memory artifact cache; pointing
``REPRO_CACHE_DIR`` (or ``configure_pipeline_cache(cache_dir=...)``) at a
directory routes it through a disk-backed tier so separate processes —
repeated benchmark sweeps, the CI bench smoke — reuse each other's cold
pipeline runs.
"""

import pytest

from repro.benchsuite.npb.cg import CG
from repro.experiments import common
from repro.experiments.common import EvaluationSettings, configure_pipeline_cache
from repro.session import DiskCache, MemoryCache, TieredCache

FAST = EvaluationSettings(node_limit=300, iter_limit=2)
SOURCE = CG.kernels[0].source


@pytest.fixture(autouse=True)
def _restore_default_cache():
    yield
    configure_pipeline_cache()


def test_env_var_selects_disk_backed_tier(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cache = common._default_pipeline_cache()
    assert isinstance(cache, TieredCache)
    assert isinstance(cache.disk, DiskCache)
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert isinstance(common._default_pipeline_cache(), MemoryCache)


def test_cache_dir_hook_shares_artifacts_across_sessions(tmp_path):
    cache_dir = tmp_path / "cache"
    first = configure_pipeline_cache(cache_dir=cache_dir)
    assert isinstance(first, TieredCache)

    cold = common._pipeline_stats(SOURCE, False, FAST)
    assert first.stats.stores > 0
    assert list(cache_dir.glob("*/*.pkl")), "artifacts must land on disk"

    # a rebound cache (fresh memory tier — stands in for a new process)
    # serves the same artifact from disk instead of re-running the pipeline
    second = configure_pipeline_cache(cache_dir=cache_dir)
    assert second is not first
    warm = common._pipeline_stats(SOURCE, False, FAST)
    assert second.disk.stats.hits > 0
    assert warm == cold

    # the derived stats are byte-identical to an uncached default run
    configure_pipeline_cache()
    fresh = common._pipeline_stats(SOURCE, False, FAST)
    assert fresh == cold


def test_configure_rejects_conflicting_arguments(tmp_path):
    with pytest.raises(ValueError):
        configure_pipeline_cache(cache_dir=tmp_path, cache=MemoryCache())
