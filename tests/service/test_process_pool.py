"""Supervised process workers: death recovery and cross-process trips.

The PR 8 contract under test:

* the ``executor="process"`` backend serves the same artifacts as the
  thread backend — byte-identical, with coalescing, caching, and progress
  streaming intact,
* a worker that dies mid-job (injected ``os._exit``, an external SIGKILL,
  or a hang past the heartbeat timeout) is detected by the supervisor;
  the orphaned job requeues through the standard retry path, the pool
  respawns, and the recovered artifact is byte-identical to an
  undisturbed run — with the conservation law ``submitted == completed +
  failed + cancelled`` intact throughout,
* cancellation and deadlines cross the process boundary through the
  file-backed :class:`~repro.egraph.runner.FileTripSignal`: a RUNNING
  child job stops at the next iteration boundary with the PR 6 semantics
  (CANCELLED, or DEADLINE with the graceful-degradation contract — the
  degraded artifact byte-identical to an iter-limit stop at the same
  boundary, and never cached), pinned under BOTH executors.
"""

import dataclasses
import os
import signal
import time

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import (
    CancelledError,
    FaultPlan,
    FaultRule,
    JobDeadlineError,
    JobState,
    OptimizationService,
    WorkerDiedError,
)

#: Fast kernels for the recovery tests (a full run is a few dozen ms).
CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = (b[i] + c[i]) * d[i] + (c[i] + b[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * 2 + c[i] * 2; }",
]

#: A kernel whose e-graph keeps growing for ~0.5 s (the early iterations
#: are cheap, the late ones heavy), leaving a wide window between the
#: first progress event and natural completion for kills and trips.
SLOW_SOURCE = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = "
    + " + ".join(
        "b[i+%d] * c[i+%d]" % (j, j) if j else "b[i] * c[i]"
        for j in range(8)
    )
    + "; }"
)

SLOW_CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT,
    limits=RunnerLimits(20000, 12, 60.0),
    anytime_extraction=True,
    anytime_interval=1,
    plateau_patience=100,
)


def _service(**kwargs) -> OptimizationService:
    kwargs.setdefault("executor", "process")
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("retry_backoff", 0.01)
    kwargs.setdefault("retry_backoff_cap", 0.02)
    return OptimizationService(**kwargs)


def _conserved(stats) -> bool:
    return stats["submitted"] == (
        stats["completed"] + stats["failed"] + stats["cancelled"]
    )


class TestProcessBackendServes:
    def test_byte_identical_to_thread_backend_with_coalescing(self):
        with _service(config=CONFIG, workers=2) as service:
            handles = [service.submit(src, config=CONFIG) for src in KERNELS[:2]]
            dup = service.submit(KERNELS[0], config=CONFIG)
            via_process = [h.result(timeout=60) for h in handles]
            dup_result = dup.result(timeout=60)
            snap = service.stats.snapshot()

        with OptimizationService(
            executor="thread", workers=2, config=CONFIG
        ) as thread_service:
            via_thread = [
                thread_service.submit(src, config=CONFIG).result(timeout=60)
                for src in KERNELS[:2]
            ]

        assert [r.code for r in via_process] == [r.code for r in via_thread]
        assert dup_result.code == via_process[0].code
        assert snap["submitted"] == 3 and snap["completed"] == 3
        assert snap["coalesced"] + snap["cache_hits"] >= 1
        assert _conserved(snap)
        assert snap["worker_deaths"] == 0 and snap["worker_respawns"] == 0

    def test_progress_streams_across_the_pipe(self):
        with _service(config=SLOW_CONFIG) as service:
            handle = service.submit(SLOW_SOURCE, config=SLOW_CONFIG)
            handle.result(timeout=120)
            events = handle.progress()
        assert events, "the child's per-iteration rows must reach the handle"
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        iterations = [event.iteration for event in events]
        assert iterations == list(range(len(events)))


class TestWorkerDeathRecovery:
    def test_injected_crash_wave_recovers_every_orphan(self):
        """Every job's first attempt dies mid-saturation; every orphan is
        requeued, re-run on a respawned worker, and completes with the
        undisturbed artifact."""

        baseline = [optimize_source(src, CONFIG).code for src in KERNELS]
        plan = FaultPlan([FaultRule("worker:crash", "crash", nth=1, after=1)])
        with _service(config=CONFIG, workers=2, faults=plan) as service:
            handles = [service.submit(src, config=CONFIG) for src in KERNELS]
            results = [h.result(timeout=120) for h in handles]
            snap = service.stats.snapshot()

        assert [r.code for r in results] == baseline
        assert all(h.state is JobState.DONE for h in handles)
        assert snap["worker_deaths"] == 3 and snap["worker_respawns"] == 3
        assert snap["retried"] == 3 and snap["recovered"] == 3
        assert snap["completed"] == 3 and snap["failed"] == 0
        assert _conserved(snap)
        assert plan.injected()["crash"] == 3

    def test_crash_at_pickup_recovers(self):
        # after=0 (the default): the worker dies before any work
        plan = FaultPlan([FaultRule("worker:crash", "crash", nth=1)])
        with _service(config=CONFIG, faults=plan) as service:
            result = service.submit(KERNELS[0], config=CONFIG).result(timeout=120)
            snap = service.stats.snapshot()
        assert result.code == optimize_source(KERNELS[0], CONFIG).code
        assert snap["worker_deaths"] == 1 and snap["retried"] == 1
        assert snap["recovered"] == 1 and _conserved(snap)

    def test_crash_exhausting_retries_fails_typed(self):
        # three attempts (1 + max_retries=2), all crash: the job must end
        # FAILED with the typed worker-death error, ledger balanced
        plan = FaultPlan([FaultRule("worker:crash", "crash", nth=1, count=3)])
        with _service(config=CONFIG, max_retries=2, faults=plan) as service:
            handle = service.submit(KERNELS[0], config=CONFIG)
            with pytest.raises(WorkerDiedError):
                handle.result(timeout=120)
            snap = service.stats.snapshot()
        assert handle.state is JobState.FAILED
        assert snap["worker_deaths"] == 3 and snap["retried"] == 2
        assert snap["recovered"] == 0 and snap["failed"] == 1
        assert _conserved(snap)

    def test_external_sigkill_mid_run_is_detected_and_retried(self):
        """A real SIGKILL (not an injected exit) on a busy worker: the
        supervisor sees the death, requeues the orphan, respawns, and the
        retry produces the undisturbed artifact.  SIGSTOP first freezes
        the child mid-iteration so the kill deterministically lands while
        the job is running."""

        baseline = optimize_source(SLOW_SOURCE, SLOW_CONFIG).code
        with _service(config=SLOW_CONFIG) as service:
            handle = service.submit(SLOW_SOURCE, config=SLOW_CONFIG)
            next(handle.stream(timeout=60))  # the child is mid-saturation
            (pid,) = service._pool.worker_pids()
            os.kill(pid, signal.SIGSTOP)
            os.kill(pid, signal.SIGKILL)
            result = handle.result(timeout=120)
            snap = service.stats.snapshot()
        assert result.code == baseline
        assert snap["worker_deaths"] == 1 and snap["worker_respawns"] == 1
        assert snap["retried"] == 1 and snap["recovered"] == 1
        assert _conserved(snap)

    def test_hung_worker_is_killed_after_heartbeat_timeout(self):
        """A worker that stops making progress without dying (SIGSTOP) is
        declared dead once its heartbeat goes quiet, killed, and its job
        recovered on a replacement."""

        with _service(config=SLOW_CONFIG, heartbeat_timeout=1.0) as service:
            handle = service.submit(SLOW_SOURCE, config=SLOW_CONFIG)
            next(handle.stream(timeout=60))
            (pid,) = service._pool.worker_pids()
            os.kill(pid, signal.SIGSTOP)
            started = time.monotonic()
            result = handle.result(timeout=120)
            elapsed = time.monotonic() - started
            snap = service.stats.snapshot()
        assert not result.degraded
        assert snap["worker_deaths"] == 1 and snap["recovered"] == 1
        assert elapsed < 60, "the hang must be bounded by the heartbeat"
        assert _conserved(snap)

    def test_ipc_result_drop_is_retried(self):
        # the child finishes but the parent drops the payload: transient,
        # so the job re-runs cold (the drop happens before the parent's
        # cache store) and completes on the second attempt
        plan = FaultPlan([FaultRule("ipc:result-drop", "drop", nth=1)])
        with _service(config=CONFIG, faults=plan) as service:
            result = service.submit(KERNELS[0], config=CONFIG).result(timeout=120)
            snap = service.stats.snapshot()
            stores = service.session.cache.stats.stores
        assert result.code == optimize_source(KERNELS[0], CONFIG).code
        assert snap["retried"] == 1 and snap["recovered"] == 1
        assert snap["worker_deaths"] == 0, "a drop kills no worker"
        assert stores == 1 and _conserved(snap)


class TestCrossProcessCancellation:
    def test_cancel_stops_a_running_child_at_a_boundary(self):
        with _service(config=SLOW_CONFIG) as service:
            handle = service.submit(SLOW_SOURCE, config=SLOW_CONFIG)
            next(handle.stream(timeout=60))
            assert handle.state is JobState.RUNNING
            assert handle.cancel(), "running jobs stay cancellable"
            assert service.join(60)
            snap = service.stats.snapshot()
        assert handle.state is JobState.CANCELLED
        with pytest.raises(CancelledError):
            handle.result(timeout=1)
        assert snap["cancelled"] == 1 and snap["completed"] == 0
        assert snap["pipeline_runs"] == 0, "the child stopped before extraction"
        assert snap["worker_deaths"] == 0, "cancellation is not a death"
        assert _conserved(snap)


class TestCrossProcessDeadline:
    """The PR 6 degradation contract, pinned under BOTH executors."""

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_mid_run_trip_degrades_byte_identically(self, executor):
        """Expiring a RUNNING job's token stops the child at an iteration
        boundary; the degraded artifact is byte-identical to an
        iteration-limit stop at that same boundary and never enters the
        shared cache (the resubmission goes cold)."""

        with _service(config=SLOW_CONFIG, executor=executor) as service:
            handle = service.submit(SLOW_SOURCE, config=SLOW_CONFIG, deadline=1000.0)
            next(handle.stream(timeout=60))
            service.jobs()[0].cancellation.expire()
            result = handle.result(timeout=120)
            snap = service.stats.snapshot()
            stores = service.session.cache.stats.stores

            assert result.degraded
            boundary = len(result.kernels[0].runner.iterations)
            assert boundary < 12, "the trip must beat the iteration limit"
            limited = optimize_source(
                SLOW_SOURCE,
                dataclasses.replace(
                    SLOW_CONFIG, limits=RunnerLimits(20000, boundary, 60.0)
                ),
            )
            assert result.code == limited.code
            assert (
                result.kernels[0].extracted_cost
                == limited.kernels[0].extracted_cost
            )
            assert snap["degraded"] == 1 and snap["expired"] == 0
            assert stores == 0, "degraded artifacts must never be cached"

            # nothing cached: the same source re-runs the cold pipeline
            fresh = service.submit(SLOW_SOURCE, config=SLOW_CONFIG)
            full = fresh.result(timeout=120)
            final = service.stats.snapshot()
        assert not full.degraded
        assert final["pipeline_runs"] == 2 and final["cache_hits"] == 0
        assert _conserved(final)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_trip_without_snapshot_fails_typed(self, executor):
        config = dataclasses.replace(SLOW_CONFIG, anytime_extraction=False)
        with _service(config=config, executor=executor) as service:
            handle = service.submit(SLOW_SOURCE, config=config, deadline=1000.0)
            next(handle.stream(timeout=60))
            service.jobs()[0].cancellation.expire()
            with pytest.raises(JobDeadlineError):
                handle.result(timeout=120)
            snap = service.stats.snapshot()
        assert handle.state is JobState.FAILED
        assert snap["expired"] == 1 and snap["degraded"] == 0
        assert _conserved(snap)

    def test_wall_clock_deadline_crosses_the_process_boundary(self):
        """A real (not injected) deadline: the remaining budget is
        re-anchored at dispatch, the child's own clock trips it mid-run,
        and the parent receives a degraded artifact."""

        with _service(config=SLOW_CONFIG) as service:
            handle = service.submit(
                SLOW_SOURCE, config=SLOW_CONFIG, deadline=0.25
            )
            result = handle.result(timeout=120)
            snap = service.stats.snapshot()
            stores = service.session.cache.stats.stores
        assert result.degraded
        assert len(result.kernels[0].runner.iterations) < 12
        assert snap["degraded"] == 1 and snap["completed"] == 1
        assert stores == 0 and _conserved(snap)
