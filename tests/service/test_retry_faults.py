"""Retry semantics under deterministic fault injection.

Transient failures (``TransientError`` / ``OSError``) requeue the job with
backoff up to ``max_retries`` and the recovery is invisible to callers
(same result, no duplicate progress notifications); permanent failures
fail fast, fail *every* coalesced handle, and never poison a later
identical submission.
"""

import pickle

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant
from repro.service import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    JobState,
    OptimizationService,
    TransientError,
    is_transient,
)

CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

SOURCE = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }"
)

FAST_BACKOFF = dict(retry_backoff=0.001, retry_backoff_cap=0.002)


def test_transient_classification():
    assert is_transient(TransientError("blip"))
    assert is_transient(OSError("disk hiccup"))
    assert not is_transient(ValueError("permanent"))
    assert not is_transient(InjectedFault("permanent by construction"))


class TestTransientRecovery:
    def test_first_cache_probe_faults_then_the_retry_recovers(self):
        plan = FaultPlan([FaultRule("cache:get", "transient", nth=1)])
        service = OptimizationService(
            config=CONFIG, workers=1, faults=plan, **FAST_BACKOFF
        )
        first = service.submit(SOURCE)
        follower = service.submit(SOURCE)
        assert follower.coalesced
        with service:
            assert service.join(60)

        assert first.state is JobState.DONE
        assert follower.state is JobState.DONE
        assert pickle.dumps(first.result().kernels) == pickle.dumps(
            follower.result().kernels
        )
        stats = service.stats.snapshot()
        assert stats["retried"] == 1 and stats["recovered"] == 1
        assert stats["failed"] == 0 and stats["completed"] == 2
        assert stats["pipeline_runs"] == 1
        assert stats["queued"] == 0 and stats["running"] == 0
        assert plan.injected() == {"transient": 1}

    def test_retry_does_not_duplicate_progress_notifications(self):
        # attempt 1 publishes event 0, then faults at its second publish;
        # attempt 2 republishes the full trajectory under fresh seqs — the
        # stream grows monotonically and never renumbers
        plan = FaultPlan([FaultRule("progress:publish", "transient", nth=2)])
        service = OptimizationService(
            config=CONFIG, workers=1, faults=plan, **FAST_BACKOFF
        )
        handle = service.submit(SOURCE)
        with service:
            assert service.join(60)
        assert handle.state is JobState.DONE
        events = handle.progress()
        seqs = [event.seq for event in events]
        assert seqs == list(range(len(events)))
        assert len(events) >= 3  # 1 from the doomed attempt + a full rerun
        stats = service.stats.snapshot()
        assert stats["retried"] == 1 and stats["recovered"] == 1
        assert stats["progress_events"] == len(events)

    def test_exhausted_retries_fail_with_the_transient_cause(self):
        plan = FaultPlan([FaultRule("cache:get", "transient", nth=1, count=10)])
        service = OptimizationService(
            config=CONFIG, workers=1, faults=plan, max_retries=1, **FAST_BACKOFF
        )
        handle = service.submit(SOURCE)
        with service:
            assert service.join(60)
        assert handle.state is JobState.FAILED
        with pytest.raises(TransientError):
            handle.result(timeout=1)
        stats = service.stats.snapshot()
        assert stats["retried"] == 1  # one requeue, then retries exhausted
        assert stats["recovered"] == 0 and stats["failed"] == 1
        assert plan.injected() == {"transient": 2}


class TestPermanentFaults:
    def test_permanent_fault_fails_every_handle_and_does_not_poison(self):
        plan = FaultPlan([FaultRule("worker:pickup", "permanent", nth=1)])
        service = OptimizationService(
            config=CONFIG, workers=1, faults=plan, **FAST_BACKOFF
        )
        doomed = [service.submit(SOURCE) for _ in range(2)]
        with service:
            assert service.join(60)
            for handle in doomed:
                assert handle.state is JobState.FAILED
                with pytest.raises(InjectedFault):
                    handle.result(timeout=1)

            # same source, same key: its hit counter is past the rule now,
            # so the failure did not poison the path
            retry = service.submit(SOURCE)
            assert retry.result(timeout=60) is not None
        assert retry.state is JobState.DONE
        stats = service.stats.snapshot()
        assert stats["retried"] == 0, "permanent faults must fail fast"
        assert stats["failed"] == 2 and stats["completed"] == 1
        assert plan.injected() == {"permanent": 1}
        assert service.session.cache.stats.stores == 1
