"""Shutdown vs. submission races: nothing is ever stranded QUEUED.

``stop(cancel_pending=True)`` closes the queue under the same lock that
``submit`` holds from its closed-check through the push, so a racing
submission either lands fully *before* the close (and the cancel sweep
sees it) or is rejected up front with ``RuntimeError`` — there is no
window where a job is half-registered and missed by the sweep.  This
suite hammers that window from several threads and asserts the invariant:
every handle handed out reaches a terminal state.
"""

import threading

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant
from repro.service import JobState, OptimizationService

CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { e[i] = u[i] * v[i] + w[i] / u[i]; }",
]


def _hammer_one_round(submitters: int, per_thread: int) -> None:
    service = OptimizationService(config=CONFIG, workers=2).start()
    handles = []
    rejected = []
    lock = threading.Lock()
    # +1: the main thread joins the barrier, then immediately stops the
    # service while the submitters are mid-burst
    barrier = threading.Barrier(submitters + 1)

    def submitter(index):
        barrier.wait()
        for i in range(per_thread):
            try:
                # distinct name prefixes: no coalescing, maximum queue churn
                handle = service.submit(
                    KERNELS[(index + i) % len(KERNELS)],
                    name_prefix=f"k{index}_{i}",
                )
            except RuntimeError:
                with lock:
                    rejected.append((index, i))
                return  # the service is stopped; later submits also fail
            with lock:
                handles.append(handle)

    threads = [
        threading.Thread(target=submitter, args=(index,))
        for index in range(submitters)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    service.stop(wait=True, cancel_pending=True)
    for thread in threads:
        thread.join()

    # the invariant: every handle the service handed out is terminal —
    # cancelled by the sweep, or completed/failed by a worker
    for handle in handles:
        assert handle.wait(timeout=60)
        assert handle.state.terminal
    for job in service.jobs():
        assert job.state is not JobState.QUEUED, "job stranded in the queue"
        assert job.state is not JobState.RUNNING

    stats = service.stats.snapshot()
    assert stats["submitted"] == len(handles)
    assert stats["submitted"] == (
        stats["completed"] + stats["failed"] + stats["cancelled"]
    )
    assert stats["queued"] == 0 and stats["running"] == 0


def test_stop_with_cancel_pending_never_strands_submissions():
    for _ in range(4):
        _hammer_one_round(submitters=4, per_thread=8)


def test_stop_without_cancel_drains_everything_queued():
    service = OptimizationService(config=CONFIG, workers=2).start()
    handles = [
        service.submit(KERNELS[i % len(KERNELS)], name_prefix=f"drain{i}")
        for i in range(9)
    ]
    service.stop(wait=True, cancel_pending=False)
    assert all(h.state is JobState.DONE for h in handles)
    stats = service.stats.snapshot()
    assert stats["completed"] == 9
    assert stats["queued"] == 0 and stats["running"] == 0
