"""The fault-injection harness itself: rules, keying, determinism.

A :class:`FaultPlan` must be a *pure function* of (seed, rules, job
identity): hit counters and RNG streams are keyed per ``(site, job)`` —
never by global arrival order — so the exact same faults hit the exact
same attempts no matter how worker threads interleave.  The end-to-end
test runs an identical chaos scenario twice and asserts byte-equal
outcomes and stats.
"""

import threading

import pytest

from repro.egraph.runner import CancellationToken, RunnerLimits
from repro.obs.sites import register_site
from repro.saturator import SaturatorConfig, Variant
from repro.service import (
    FaultPlan,
    FaultRule,
    OptimizationService,
    TransientError,
)
from repro.service.job import Job, OptimizationRequest
from repro.session.fingerprint import CacheKey

CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

# FaultRule validates its site against the shared instrumentation-site
# registry (repro.obs.sites); the synthetic site these tests use must be
# declared like any other (registration is idempotent)
register_site("site", "synthetic fault-harness test site")

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { e[i] = u[i] * v[i] + w[i] / u[i]; }",
]


def _job(tag: str) -> Job:
    job = Job(OptimizationRequest("src"), CacheKey(tag, "cfg", "pipeline"))
    job.cancellation = CancellationToken()
    return job


class TestRuleValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultRule("cache:get", "catastrophic")

    def test_rejects_non_positive_counting(self):
        with pytest.raises(ValueError):
            FaultRule("cache:get", "transient", nth=0)
        with pytest.raises(ValueError):
            FaultRule("cache:get", "transient", count=0)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            FaultRule("cache:get", "transient", probability=1.5)


class TestHitCounting:
    def test_nth_fires_exactly_once_per_key(self):
        plan = FaultPlan([FaultRule("cache:get", "transient", nth=2)])
        plan.fire("cache:get")  # hit 1: passes
        with pytest.raises(TransientError):
            plan.fire("cache:get")  # hit 2: faults
        plan.fire("cache:get")  # hit 3: past the window
        assert plan.injected() == {"transient": 1}

    def test_hits_are_counted_per_job_not_globally(self):
        plan = FaultPlan([FaultRule("worker:pickup", "transient", nth=1)])
        for tag in ("job-a", "job-b"):
            with plan.scoped(_job(tag)):
                with pytest.raises(TransientError):
                    plan.fire("worker:pickup")  # each job's own first hit
                plan.fire("worker:pickup")  # each job's second hit passes
        assert plan.injected() == {"transient": 2}

    def test_sites_do_not_share_counters(self):
        plan = FaultPlan([FaultRule("cache:get", "transient", nth=1)])
        plan.fire("cache:store")
        plan.fire("stage:saturate")
        with pytest.raises(TransientError):
            plan.fire("cache:get")

    def test_deadline_kind_expires_the_bound_token(self):
        plan = FaultPlan([FaultRule("worker:pickup", "deadline", nth=1)])
        job = _job("deadline-job")
        with plan.scoped(job):
            plan.fire("worker:pickup")  # must not raise
        assert job.cancellation.expired
        assert plan.injected() == {"deadline": 1}

    def test_deadline_kind_without_a_bound_job_is_a_noop(self):
        plan = FaultPlan([FaultRule("cache:get", "deadline", nth=1)])
        plan.fire("cache:get")  # nothing to expire; must not raise


class TestSeededStreams:
    def test_probability_flips_replay_identically_across_plans(self):
        def pattern(plan):
            flips = []
            for _ in range(64):
                try:
                    plan.fire("site")
                    flips.append(False)
                except TransientError:
                    flips.append(True)
            return flips

        rule = FaultRule("site", "transient", probability=0.5)
        first = pattern(FaultPlan([rule], seed=7))
        second = pattern(FaultPlan([rule], seed=7))
        assert first == second
        assert any(first) and not all(first)
        assert pattern(FaultPlan([rule], seed=8)) != first

    def test_streams_are_private_per_job(self):
        rule = FaultRule("site", "transient", probability=0.5)

        def pattern(plan, tag):
            flips = []
            with plan.scoped(_job(tag)):
                for _ in range(64):
                    try:
                        plan.fire("site")
                        flips.append(False)
                    except TransientError:
                        flips.append(True)
            return flips

        # job-a's flips are the same whether or not job-b fired first —
        # per-job streams make injection independent of interleaving
        solo = pattern(FaultPlan([rule], seed=3), "job-a")
        plan = FaultPlan([rule], seed=3)
        pattern(plan, "job-b")
        assert pattern(plan, "job-a") == solo


class TestEndToEndDeterminism:
    #: Every job's first cache probe faults transiently (forcing a retry),
    #: and a per-job seeded coin decides which pickups fault permanently.
    RULES = (
        FaultRule("cache:get", "transient", nth=1),
        FaultRule("worker:pickup", "permanent", probability=0.25),
    )

    def _run_wave(self):
        plan = FaultPlan(self.RULES, seed=1234)
        service = OptimizationService(
            config=CONFIG,
            workers=2,
            coalesce=False,
            faults=plan,
            retry_backoff=0.001,
            retry_backoff_cap=0.002,
        )
        # distinct name prefixes: distinct cache keys, so per-job fault
        # streams never alias even with coalescing off
        handles = [
            service.submit(KERNELS[i % len(KERNELS)], name_prefix=f"wave{i}")
            for i in range(6)
        ]
        with service:
            assert service.join(120)
        outcomes = [handle.state.value for handle in handles]
        return outcomes, service.stats.snapshot(), plan.injected()

    def test_same_seed_reproduces_outcomes_stats_and_injections(self):
        first = self._run_wave()
        second = self._run_wave()
        assert first == second
        outcomes, stats, injected = first
        # the scenario actually exercises both paths
        assert "done" in outcomes and "failed" in outcomes
        assert stats["retried"] > 0 and injected["transient"] > 0
        assert injected["permanent"] > 0
        assert stats["submitted"] == (
            stats["completed"] + stats["failed"] + stats["cancelled"]
        )

    def test_determinism_survives_thread_count(self):
        # the same plan over 1 worker and 2 workers injects identically:
        # keying by job identity removes the scheduler from the equation
        def run(workers):
            plan = FaultPlan(self.RULES, seed=1234)
            service = OptimizationService(
                config=CONFIG,
                workers=workers,
                coalesce=False,
                faults=plan,
                retry_backoff=0.001,
                retry_backoff_cap=0.002,
            )
            handles = [
                service.submit(
                    KERNELS[i % len(KERNELS)], name_prefix=f"wave{i}"
                )
                for i in range(6)
            ]
            with service:
                assert service.join(120)
            return [h.state.value for h in handles], plan.injected()

        assert run(1) == run(2)
