"""Progress streaming: per-iteration snapshots reach the job's handles."""

import threading

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import JobState, OptimizationService

#: Anytime extraction on, so every iteration publishes an extracted cost.
ANYTIME_CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT,
    limits=RunnerLimits(600, 4, 60.0),
    anytime_extraction=True,
    plateau_patience=4,
)

KERNEL = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i] + b[i]; }"
)


def test_progress_events_mirror_the_runner_trajectory():
    with OptimizationService(config=ANYTIME_CONFIG, workers=1) as service:
        handle = service.submit(KERNEL)
        result = handle.result(timeout=60)

    events = handle.progress()
    runner = result.kernels[0].runner
    assert len(events) == len(runner.iterations)
    for event, row in zip(events, runner.iterations):
        assert event.iteration == row.index
        assert event.applied == row.applied
        assert event.egraph_nodes == row.egraph_nodes
        assert event.egraph_classes == row.egraph_classes
        assert event.extracted_cost == row.extracted_cost
    assert [event.seq for event in events] == list(range(len(events)))
    # anytime extraction published a cost at every boundary
    assert all(event.extracted_cost is not None for event in events)
    assert service.stats.snapshot()["progress_events"] == len(events)


def test_stream_replays_and_follows_to_completion():
    service = OptimizationService(config=ANYTIME_CONFIG, workers=1)
    handle = service.submit(KERNEL)

    streamed = []
    done = threading.Event()

    def consume():
        for event in handle.stream(timeout=60):
            streamed.append(event)
        done.set()

    consumer = threading.Thread(target=consume)
    consumer.start()
    with service:
        assert service.join(60)
    assert done.wait(60)
    consumer.join()
    assert streamed == handle.progress()
    assert handle.state is JobState.DONE


def test_stream_after_completion_replays_everything():
    with OptimizationService(config=ANYTIME_CONFIG, workers=1) as service:
        handle = service.submit(KERNEL)
        handle.result(timeout=60)
    late = list(handle.stream(timeout=1))
    assert late == handle.progress()
    assert len(late) > 0


def test_cache_hits_and_coalesced_handles_share_the_publisher():
    service = OptimizationService(config=ANYTIME_CONFIG, workers=1)
    primary = service.submit(KERNEL)
    follower = service.submit(KERNEL)
    with service:
        assert service.join(60)
        # a later identical submission is served by the cache: it gets the
        # artifact instantly and no progress events of its own
        hit = service.submit(KERNEL)
        hit.result(timeout=60)
    assert follower.progress() == primary.progress()
    assert len(primary.progress()) > 0
    assert hit.progress() == []
    assert hit.from_cache


def test_no_anytime_config_streams_cost_none():
    config = SaturatorConfig(
        variant=Variant.CSE_SAT, limits=RunnerLimits(600, 3, 60.0)
    )
    with OptimizationService(config=config, workers=1) as service:
        handle = service.submit(KERNEL)
        handle.result(timeout=60)
    events = handle.progress()
    assert len(events) > 0
    assert all(event.extracted_cost is None for event in events)


def test_on_iteration_hook_reaches_plain_session_runs():
    """The progress hook is a session/pipeline feature, not service magic."""

    from repro.session import OptimizationSession

    rows = []
    session = OptimizationSession(config=ANYTIME_CONFIG)
    result = session.run(KERNEL, on_iteration=rows.append)
    assert [row.index for row in rows] == [
        row.index for row in result.kernels[0].runner.iterations
    ]
    # optimize_source threads the same hook
    rows2 = []
    optimize_source(KERNEL, ANYTIME_CONFIG, on_iteration=rows2.append)
    assert [r.index for r in rows2] == [r.index for r in rows]
