"""Per-job deadlines: queued expiry, graceful degradation, running cancel.

The service-level deadline contract:

* a job whose deadline passes **while queued** fails with
  :class:`JobDeadlineError` at worker pickup — it never starts,
* a job whose deadline trips **while running** (here: injected
  deterministically, no wall-clock sleeping) degrades gracefully when an
  anytime snapshot exists — the artifact is byte-identical to an
  iteration-limit stop at the same boundary, flagged ``degraded=True``,
  shared verbatim with coalesced followers, and never cached,
* with no snapshot to degrade to, the mid-run deadline is a
  :class:`JobDeadlineError` failure,
* a **running** job is cooperatively cancellable: the handle's cancel
  trips the token and the saturation loop stops at the next boundary.
"""

import dataclasses
import pickle
import threading

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import (
    CancelledError,
    FaultPlan,
    FaultRule,
    JobDeadlineError,
    JobState,
    OptimizationService,
)
from repro.session import MemoryCache, OptimizationSession

#: Saturates only after ~5 iterations, so an injected deadline at
#: iteration 0 always beats the natural stop.
SOURCE = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = (b[i] + c[i]) * (b[i] + c[i])"
    " + (c[i] + b[i]) * d[i] + b[i] * c[i] + d[i] * d[i]; }"
)

ANYTIME_CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT,
    limits=RunnerLimits(4000, 8, 60.0),
    anytime_extraction=True,
    anytime_interval=1,
    plateau_patience=50,
)


def _deadline_at_first_publish() -> FaultPlan:
    # the publish hook fires *after* the boundary's anytime evaluation, so
    # the token trips with iteration 0's snapshot already taken
    return FaultPlan([FaultRule("progress:publish", "deadline", nth=1)])


class TestQueuedExpiry:
    def test_expired_deadline_fails_at_pickup_without_running(self):
        service = OptimizationService(config=ANYTIME_CONFIG, workers=1)
        handle = service.submit(SOURCE, deadline=-1.0)  # already past due
        with service:
            assert service.join(60)
        assert handle.state is JobState.FAILED
        with pytest.raises(JobDeadlineError):
            handle.result(timeout=1)
        stats = service.stats.snapshot()
        assert stats["expired"] == 1 and stats["failed"] == 1
        assert stats["pipeline_runs"] == 0, "an expired job must never start"
        assert stats["queued"] == 0 and stats["running"] == 0


class TestGracefulDegradation:
    def test_degraded_artifact_matches_iter_limit_stop_and_skips_cache(self):
        plan = _deadline_at_first_publish()
        service = OptimizationService(
            config=ANYTIME_CONFIG, workers=1, faults=plan
        )
        first = service.submit(SOURCE, deadline=1000.0)
        follower = service.submit(SOURCE)
        assert follower.coalesced
        with service:
            assert service.join(60)

        result = first.result()
        assert result.degraded
        assert len(result.kernels[0].runner.iterations) == 1

        # byte-identical to a plateau/iter-limit stop at the same boundary
        limited = optimize_source(
            SOURCE,
            dataclasses.replace(
                ANYTIME_CONFIG, limits=RunnerLimits(4000, 1, 60.0)
            ),
        )
        assert result.code == limited.code
        assert (
            result.kernels[0].extracted_cost
            == limited.kernels[0].extracted_cost
        )

        # the coalesced follower shares the degraded artifact verbatim
        shared = follower.result()
        assert shared.degraded
        assert pickle.dumps(shared.kernels) == pickle.dumps(result.kernels)

        stats = service.stats.snapshot()
        assert stats["degraded"] == 1 and stats["completed"] == 2
        assert stats["expired"] == 0 and stats["failed"] == 0
        assert plan.injected() == {"deadline": 1}
        assert (
            service.session.cache.stats.stores == 0
        ), "degraded artifacts must not poison the shared cache"

    def test_fresh_submission_after_degraded_run_is_a_full_cold_run(self):
        plan = _deadline_at_first_publish()
        with OptimizationService(
            config=ANYTIME_CONFIG, workers=1, faults=plan
        ) as service:
            degraded = service.submit(SOURCE).result(timeout=60)
            assert degraded.degraded
            # nothing was cached, so the rerun goes cold and completes
            full = service.submit(SOURCE).result(timeout=60)
        assert not full.degraded
        assert (
            full.kernels[0].extracted_cost
            <= degraded.kernels[0].extracted_cost
        )
        stats = service.stats.snapshot()
        assert stats["pipeline_runs"] == 2 and stats["cache_hits"] == 0
        assert service.session.cache.stats.stores == 1

    def test_mid_run_deadline_without_snapshot_fails_typed(self):
        config = dataclasses.replace(ANYTIME_CONFIG, anytime_extraction=False)
        plan = _deadline_at_first_publish()
        service = OptimizationService(config=config, workers=1, faults=plan)
        handle = service.submit(SOURCE, deadline=1000.0)
        with service:
            assert service.join(60)
        assert handle.state is JobState.FAILED
        with pytest.raises(JobDeadlineError):
            handle.result(timeout=1)
        stats = service.stats.snapshot()
        assert stats["expired"] == 1 and stats["failed"] == 1
        assert stats["degraded"] == 0


class TestRunningCancellation:
    def test_cancel_while_running_stops_cooperatively(self):
        session = OptimizationSession(config=ANYTIME_CONFIG, cache=MemoryCache())
        started = threading.Event()
        release = threading.Event()

        def gate(site):
            if site == "cache:get":
                started.set()
                release.wait(timeout=30)

        session.cache.fault_hook = gate
        with OptimizationService(session=session, workers=1) as service:
            handle = service.submit(SOURCE)
            assert started.wait(timeout=30)
            assert handle.state is JobState.RUNNING
            assert handle.cancel(), "running jobs are cancellable via the token"
            release.set()
            assert service.join(60)
        assert handle.state is JobState.CANCELLED
        with pytest.raises(CancelledError):
            handle.result(timeout=1)
        stats = service.stats.snapshot()
        assert stats["cancelled"] == 1 and stats["completed"] == 0
        assert stats["pipeline_runs"] == 0, "the loop stopped before extraction"
        assert stats["queued"] == 0 and stats["running"] == 0
