"""Backpressure and load shedding at a bounded queue.

``max_queue`` bounds the queued-job depth; ``overload_policy`` decides
what a full queue does to ``submit``: ``block`` waits (optionally bounded
by ``submit_timeout``), ``reject`` refuses the newcomer, and ``shed``
evicts the worst queued job — lowest priority first, newest submission as
the tie-break — unless the newcomer is itself the worst.  Refused
submissions count under ``rejected`` (never ``submitted``), shed victims
under ``shed`` + ``failed``; the conservation law ``submitted ==
completed + failed + cancelled`` survives all of it.
"""

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant
from repro.service import (
    JobState,
    OptimizationRequest,
    OptimizationService,
    ServiceOverloadedError,
)

CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { e[i] = u[i] * v[i] + w[i] / u[i]; }",
]


def _conserved(stats):
    return stats["submitted"] == (
        stats["completed"] + stats["failed"] + stats["cancelled"]
    )


class TestRejectPolicy:
    def test_full_queue_rejects_the_newcomer(self):
        service = OptimizationService(
            config=CONFIG, workers=1, max_queue=2, overload_policy="reject"
        )
        kept = [service.submit(KERNELS[0]), service.submit(KERNELS[1])]
        with pytest.raises(ServiceOverloadedError):
            service.submit(KERNELS[2])
        stats = service.stats.snapshot()
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2, "a rejected submission owns no handle"
        with service:
            assert service.join(60)
        assert all(h.state is JobState.DONE for h in kept)
        assert _conserved(service.stats.snapshot())

    def test_coalesced_submissions_bypass_the_depth_bound(self):
        service = OptimizationService(
            config=CONFIG, workers=1, max_queue=1, overload_policy="reject"
        )
        first = service.submit(KERNELS[0])
        attached = service.submit(KERNELS[0])  # same key: no new queue slot
        assert attached.coalesced
        with service:
            assert service.join(60)
        assert first.done() and attached.done()
        assert service.stats.snapshot()["rejected"] == 0


class TestShedPolicy:
    def test_sheds_lowest_priority_newest_first(self):
        service = OptimizationService(
            config=CONFIG,
            workers=1,
            max_queue=2,
            overload_policy="shed-oldest-lowest-priority",
        )
        keep = service.submit(OptimizationRequest(KERNELS[0], priority=0))
        victim = service.submit(OptimizationRequest(KERNELS[1], priority=5))
        newcomer = service.submit(OptimizationRequest(KERNELS[2], priority=0))

        assert victim.state is JobState.FAILED
        with pytest.raises(ServiceOverloadedError):
            victim.result(timeout=1)
        with service:
            assert service.join(60)
        assert keep.state is JobState.DONE
        assert newcomer.state is JobState.DONE
        stats = service.stats.snapshot()
        assert stats["shed"] == 1 and stats["failed"] == 1
        assert stats["rejected"] == 0
        assert stats["queued"] == 0 and stats["running"] == 0
        assert _conserved(stats)

    def test_newest_loses_the_tie_between_equal_priorities(self):
        service = OptimizationService(
            config=CONFIG, workers=1, max_queue=2, overload_policy="shed"
        )
        older = service.submit(OptimizationRequest(KERNELS[0], priority=1))
        newer = service.submit(OptimizationRequest(KERNELS[1], priority=1))
        service.submit(OptimizationRequest(KERNELS[2], priority=0))
        assert newer.state is JobState.FAILED
        assert older.state is JobState.QUEUED
        service.stop(cancel_pending=True)

    def test_incoming_submission_worse_than_every_queued_job_is_rejected(self):
        service = OptimizationService(
            config=CONFIG, workers=1, max_queue=2, overload_policy="shed"
        )
        kept = [
            service.submit(OptimizationRequest(KERNELS[0], priority=0)),
            service.submit(OptimizationRequest(KERNELS[1], priority=0)),
        ]
        with pytest.raises(ServiceOverloadedError):
            service.submit(OptimizationRequest(KERNELS[2], priority=10))
        stats = service.stats.snapshot()
        assert stats["rejected"] == 1 and stats["shed"] == 0
        with service:
            assert service.join(60)
        assert all(h.state is JobState.DONE for h in kept)


class TestBlockPolicy:
    def test_bounded_block_times_out_as_overload(self):
        # no workers are running, so the queue can never drain: the block
        # must give up after submit_timeout and unwind completely
        service = OptimizationService(
            config=CONFIG,
            workers=1,
            max_queue=1,
            overload_policy="block",
            submit_timeout=0.05,
        )
        first = service.submit(KERNELS[0])
        with pytest.raises(ServiceOverloadedError):
            service.submit(KERNELS[1])
        assert len(service.jobs()) == 1, "the refused submission left no job"
        stats = service.stats.snapshot()
        assert stats["rejected"] == 1 and stats["submitted"] == 1
        with service:
            assert service.join(60)
        assert first.state is JobState.DONE
        assert _conserved(service.stats.snapshot())

    def test_block_admits_once_a_worker_frees_space(self):
        with OptimizationService(
            config=CONFIG, workers=1, max_queue=1, overload_policy="block"
        ) as service:
            handles = [service.submit(source) for source in KERNELS]
            assert service.join(60)
        assert all(h.state is JobState.DONE for h in handles)
        stats = service.stats.snapshot()
        assert stats["rejected"] == 0 and stats["completed"] == 3


def test_validation():
    with pytest.raises(ValueError):
        OptimizationService(config=CONFIG, overload_policy="drop-everything")
    with pytest.raises(ValueError):
        OptimizationService(config=CONFIG, max_queue=0)
    with pytest.raises(ValueError):
        OptimizationService(config=CONFIG, max_retries=-1)
