"""Unit tests of the job queue and the service stats registry."""

import threading

import pytest

from repro.service import Job, JobQueue, JobState, OptimizationRequest, ServiceStats


def _job(priority: int, seq: int) -> Job:
    return Job(OptimizationRequest("src", priority=priority), key=None, seq=seq)


class TestJobQueue:
    def test_priority_then_fifo_order(self):
        queue = JobQueue()
        jobs = [_job(1, 0), _job(0, 1), _job(1, 2), _job(-1, 3)]
        for job in jobs:
            queue.push(job)
        popped = [queue.pop(timeout=1).seq for _ in range(4)]
        assert popped == [3, 1, 0, 2]

    def test_pop_skips_cancelled_jobs(self):
        queue = JobQueue()
        first, second = _job(0, 0), _job(0, 1)
        queue.push(first)
        queue.push(second)
        first.state = JobState.CANCELLED
        assert queue.pop(timeout=1) is second
        queue.close()
        assert queue.pop() is None

    def test_pop_blocks_until_push(self):
        queue = JobQueue()
        got = []

        def popper():
            got.append(queue.pop())

        thread = threading.Thread(target=popper)
        thread.start()
        job = _job(0, 0)
        queue.push(job)
        thread.join(timeout=5)
        assert got == [job]

    def test_close_wakes_blocked_pop_and_rejects_push(self):
        queue = JobQueue()
        got = []

        def popper():
            got.append(queue.pop())

        thread = threading.Thread(target=popper)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert got == [None]
        with pytest.raises(RuntimeError):
            queue.push(_job(0, 0))

    def test_pop_timeout(self):
        queue = JobQueue()
        assert queue.pop(timeout=0.01) is None
        assert len(queue) == 0


class TestHeapCompaction:
    """Tombstones (stolen/discarded entries awaiting their lazy pop-time
    skip) must never dominate the heap: the queue compacts when they
    exceed half of it, bounding ``len(queue) <= 2 * live + 1``."""

    def _bound_holds(self, queue):
        return len(queue) <= 2 * queue.live_depth + 1

    def test_steal_storm_keeps_heap_bounded(self):
        queue = JobQueue()
        jobs = [_job(0, seq) for seq in range(100)]
        for job in jobs:
            queue.push(job)
        # steal every other job: without compaction the heap would keep
        # all 100 entries while only 50 stay poppable
        for job in jobs[::2]:
            assert queue.steal(job)
            assert self._bound_holds(queue), (len(queue), queue.live_depth)
        assert queue.live_depth == 50
        assert len(queue) <= 2 * 50 + 1

    def test_discard_storm_keeps_heap_bounded(self):
        queue = JobQueue()
        jobs = [_job(0, seq) for seq in range(64)]
        for job in jobs:
            queue.push(job)
        for job in jobs[:63]:
            job.state = JobState.CANCELLED
            queue.discard(job)
            assert self._bound_holds(queue), (len(queue), queue.live_depth)
        # one live job among at most three heap entries
        assert queue.live_depth == 1
        assert len(queue) <= 3
        assert queue.pop(timeout=1) is jobs[63]

    def test_compaction_preserves_pop_order(self):
        queue = JobQueue()
        jobs = [_job(priority % 3, seq) for seq, priority in enumerate(range(30))]
        for job in jobs:
            queue.push(job)
        stolen = jobs[::2]
        for job in stolen:
            queue.steal(job)
        survivors = [job for job in jobs if job not in stolen]
        expected = sorted(survivors, key=lambda j: (j.request.priority, j.seq))
        popped = [queue.pop(timeout=1) for _ in survivors]
        assert popped == expected


class TestServiceStats:
    def test_counters_and_gauges(self):
        stats = ServiceStats()
        stats.count("submitted", 3)
        stats.count("coalesced")
        stats.job_queued()
        stats.job_queued()
        stats.job_started()
        stats.job_finished()
        stats.job_dequeued()
        snap = stats.snapshot()
        assert snap["submitted"] == 3
        assert snap["coalesced"] == 1
        assert snap["queued"] == 0
        assert snap["running"] == 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError):
            ServiceStats().count("nope")

    def test_concurrent_increments_do_not_drop(self):
        stats = ServiceStats()

        def hammer():
            for _ in range(2000):
                stats.count("submitted")
                stats.job_queued()
                stats.job_started()
                stats.job_finished()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = stats.snapshot()
        assert snap["submitted"] == 16000
        assert snap["queued"] == 0
        assert snap["running"] == 0
        assert stats.terminal == 0
