"""Service semantics: coalescing, cancellation, isolation, determinism.

The contracts under test here are the serving layer's whole value
proposition:

* N identical concurrent submissions cost one pipeline run, and every
  coalesced handle's result is **byte-identical** to the job's artifact,
* cancelling a queued job detaches it cleanly (and cancels the job once
  its last handle detached) without touching anything else in the queue,
* one failing source fails exactly its own handles — the workers and the
  other jobs are unaffected,
* results served under heavy concurrency are the same artifacts a serial
  solo run produces (deterministic outcomes under load).
"""

import pickle
import threading

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import (
    CancelledError,
    JobState,
    OptimizationRequest,
    OptimizationService,
)
from repro.session import MemoryCache, OptimizationSession

#: Small, fast configs — the semantics do not depend on saturation depth.
CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(400, 3, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { e[i] = u[i] * v[i] + w[i] / u[i]; }",
]

BAD_SOURCE = "int broken ((("


def test_single_job_round_trip():
    with OptimizationService(config=CONFIG, workers=2) as service:
        handle = service.submit(KERNELS[0])
        result = handle.result(timeout=60)
    assert handle.state is JobState.DONE
    assert handle.done() and not handle.cancelled()
    solo = optimize_source(KERNELS[0], CONFIG)
    assert result.code == solo.code


def test_submit_request_object_and_priority_order():
    service = OptimizationService(config=CONFIG, workers=1)
    # submit before start: a single worker must then pop in priority order
    low = service.submit(OptimizationRequest(KERNELS[0], priority=5))
    high = service.submit(OptimizationRequest(KERNELS[1], priority=-5))
    with service:
        assert service.join(60)
    jobs = service.jobs()
    assert [job.request.priority for job in jobs] == [5, -5]
    assert jobs[1].started_at < jobs[0].started_at  # high priority ran first
    assert low.done() and high.done()


def test_coalescing_runs_pipeline_once_and_results_are_byte_identical():
    service = OptimizationService(config=CONFIG, workers=4)
    # all five submissions land before any worker exists, so they are all
    # in flight together: exactly one pipeline run can serve them
    handles = [service.submit(KERNELS[0]) for _ in range(5)]
    with service:
        assert service.join(60)

    assert [h.coalesced for h in handles] == [False, True, True, True, True]
    stats = service.stats.snapshot()
    assert stats["submitted"] == 5
    assert stats["coalesced"] == 4
    assert stats["pipeline_runs"] == 1
    assert stats["completed"] == 5
    assert service.session.cache.stats.stores == 1

    blobs = {pickle.dumps(h.result().kernels) for h in handles}
    assert len(blobs) == 1, "coalesced results must be byte-identical"
    # ... but independent objects: mutating one caller's report must not
    # leak into another's
    handles[1].result().kernels[0].name = "mutated"
    assert handles[2].result().kernels[0].name != "mutated"


def test_no_coalescing_baseline_runs_every_submission():
    service = OptimizationService(config=CONFIG, workers=1, coalesce=False)
    handles = [service.submit(KERNELS[0]) for _ in range(3)]
    with service:
        assert service.join(60)
    stats = service.stats.snapshot()
    assert stats["coalesced"] == 0
    # a single worker serializes the duplicates, so after the first cold
    # run the rest are artifact-cache hits — still one run, proving the
    # cache (not coalescing) carries the sequential case
    assert stats["pipeline_runs"] == 1
    assert stats["cache_hits"] == 2
    assert all(h.done() for h in handles)


def test_later_identical_submission_is_a_cache_hit():
    with OptimizationService(config=CONFIG, workers=2) as service:
        first = service.submit(KERNELS[0])
        first.result(timeout=60)
        second = service.submit(KERNELS[0])
        second.result(timeout=60)
    assert not second.coalesced
    assert second.from_cache
    assert service.stats.snapshot()["cache_hits"] == 1
    assert second.result().kernels[0].from_cache


def test_kernel_less_source_cache_hit_is_counted_as_a_hit():
    # a valid translation unit with no parallel kernels produces an empty
    # report list — the hit/run split must come from the session, not from
    # per-kernel from_cache flags (there are none to inspect)
    source = "int scalar_only(int x) { return x + 1; }"
    with OptimizationService(config=CONFIG, workers=1) as service:
        first = service.submit(source)
        first.result(timeout=60)
        second = service.submit(source)
        second.result(timeout=60)
    assert first.result().kernels == []
    assert not first.from_cache
    assert second.from_cache
    stats = service.stats.snapshot()
    assert stats["pipeline_runs"] == 1
    assert stats["cache_hits"] == 1


def test_cancellation_of_queued_jobs():
    service = OptimizationService(config=CONFIG, workers=1)
    keep = service.submit(KERNELS[0])
    drop = service.submit(KERNELS[1])
    assert drop.cancel()
    assert drop.cancelled()
    with pytest.raises(CancelledError):
        drop.result(timeout=1)
    with service:
        assert service.join(60)
    assert keep.state is JobState.DONE
    stats = service.stats.snapshot()
    assert stats["cancelled"] == 1
    assert stats["completed"] == 1
    assert stats["pipeline_runs"] == 1  # the cancelled job never ran
    assert stats["queued"] == 0 and stats["running"] == 0


def test_cancel_one_coalesced_handle_keeps_the_job_alive():
    service = OptimizationService(config=CONFIG, workers=1)
    first = service.submit(KERNELS[0])
    second = service.submit(KERNELS[0])
    assert second.coalesced
    assert second.cancel()
    with service:
        assert service.join(60)
    # the job survived for the first submitter; the cancelled handle
    # stays cancelled even though the shared job completed
    assert first.state is JobState.DONE
    assert second.state is JobState.CANCELLED
    stats = service.stats.snapshot()
    assert stats["completed"] == 1 and stats["cancelled"] == 1


def test_cancelling_every_handle_cancels_the_job_and_frees_the_key():
    service = OptimizationService(config=CONFIG, workers=1)
    a = service.submit(KERNELS[0])
    b = service.submit(KERNELS[0])
    assert a.cancel() and b.cancel()
    # the in-flight slot is free again: a new submission must not attach
    # to the cancelled job
    c = service.submit(KERNELS[0])
    assert not c.coalesced
    with service:
        assert service.join(60)
    assert c.state is JobState.DONE
    assert a.cancelled() and b.cancelled()


def test_cancel_fails_once_running_or_done():
    with OptimizationService(config=CONFIG, workers=2) as service:
        handle = service.submit(KERNELS[0])
        handle.result(timeout=60)
        assert not handle.cancel()
    assert handle.state is JobState.DONE


def test_failure_isolation():
    service = OptimizationService(config=CONFIG, workers=2)
    bad = service.submit(BAD_SOURCE)
    good = [service.submit(source) for source in KERNELS]
    with service:
        assert service.join(60)
    assert bad.state is JobState.FAILED
    assert bad.error is not None
    with pytest.raises(type(bad.error)):
        bad.result(timeout=1)
    for handle in good:
        assert handle.state is JobState.DONE, "bad source must not poison the queue"
    stats = service.stats.snapshot()
    assert stats["failed"] == 1
    assert stats["completed"] == len(good)


def test_coalesced_failure_fails_every_attached_handle():
    service = OptimizationService(config=CONFIG, workers=1)
    handles = [service.submit(BAD_SOURCE) for _ in range(3)]
    with service:
        assert service.join(60)
    assert all(h.state is JobState.FAILED for h in handles)
    assert service.stats.snapshot()["failed"] == 3
    assert service.stats.snapshot()["pipeline_runs"] == 0


def test_deterministic_outcomes_under_concurrency():
    """Heavy concurrent duplicate traffic serves the same artifacts as a
    serial solo run of each kernel."""

    solo = {
        source: optimize_source(source, CONFIG) for source in KERNELS
    }
    service = OptimizationService(config=CONFIG, workers=4)
    handles = [
        service.submit(KERNELS[index % len(KERNELS)]) for index in range(24)
    ]
    with service:
        assert service.join(120)
    for index, handle in enumerate(handles):
        expected = solo[KERNELS[index % len(KERNELS)]]
        result = handle.result()
        assert result.code == expected.code
        got = [(k.egraph_nodes, k.egraph_classes, k.extracted_cost)
               for k in result.kernels]
        want = [(k.egraph_nodes, k.egraph_classes, k.extracted_cost)
                for k in expected.kernels]
        assert got == want
    stats = service.stats.snapshot()
    assert stats["submitted"] == 24
    assert stats["submitted"] == stats["completed"]
    # every distinct kernel ran at most... exactly once cold; the rest
    # were coalesced or served by the cache
    assert stats["pipeline_runs"] == len(KERNELS)


def test_concurrent_submitters_coalesce_thread_safely():
    service = OptimizationService(config=CONFIG, workers=2)
    handles = []
    lock = threading.Lock()

    def submitter():
        handle = service.submit(KERNELS[0])
        with lock:
            handles.append(handle)

    threads = [threading.Thread(target=submitter) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    with service:
        assert service.join(60)
    assert len(handles) == 8
    assert all(h.done() for h in handles)
    stats = service.stats.snapshot()
    assert stats["submitted"] == 8
    # with submissions racing the workers the split between coalesced and
    # cache-hit jobs is timing-dependent, but the conservation law is not
    assert stats["completed"] == 8
    assert stats["pipeline_runs"] == 1


def test_shared_session_and_explicit_session_validation():
    session = OptimizationSession(config=CONFIG, cache=MemoryCache())
    with pytest.raises(ValueError):
        OptimizationService(session=session, cache=MemoryCache())
    with pytest.raises(ValueError):
        OptimizationService(workers=0)
    with OptimizationService(session=session, workers=1) as service:
        service.submit(KERNELS[0]).result(timeout=60)
    # second service over the same session: artifact already cached
    with OptimizationService(session=session, workers=1) as service2:
        handle = service2.submit(KERNELS[0])
        handle.result(timeout=60)
    assert handle.from_cache


def test_stop_cancel_pending_and_rejects_late_submissions():
    service = OptimizationService(config=CONFIG, workers=1)
    pending = [service.submit(source) for source in KERNELS]
    service.stop(wait=True, cancel_pending=True)
    assert all(h.cancelled() for h in pending)
    with pytest.raises(RuntimeError):
        service.submit(KERNELS[0])
