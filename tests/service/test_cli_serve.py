"""The ``accsat serve`` CLI mode: service-backed batch optimization."""

import json

from repro.cli import main

KERNEL_A = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
  out[i] = a * in[i] + b * in[i];
}
"""

KERNEL_B = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
  res[i] = (x[i] + y[i]) * (x[i] + y[i]);
}
"""


def _write_inputs(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(KERNEL_A)
    b.write_text(KERNEL_B)
    return a, b


class TestServe:
    def test_serve_writes_outputs_identical_to_optimize_mode(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        assert main(["--quiet", str(a), str(b)]) == 0
        classic_a = a.with_suffix(".sat.c").read_text()
        classic_b = b.with_suffix(".sat.c").read_text()
        a.with_suffix(".sat.c").unlink()
        b.with_suffix(".sat.c").unlink()

        assert main(["serve", "--quiet", "--workers", "2", str(a), str(b)]) == 0
        assert a.with_suffix(".sat.c").read_text() == classic_a
        assert b.with_suffix(".sat.c").read_text() == classic_b

    def test_serve_coalesces_duplicate_inputs(self, tmp_path):
        a, _ = _write_inputs(tmp_path)
        report = tmp_path / "serve.json"
        assert main([
            "serve", "--quiet", "--workers", "2", "--report", str(report),
            str(a), str(a), str(a),
        ]) == 0
        payload = json.loads(report.read_text())
        stats = payload["service"]
        assert stats["submitted"] == 3
        assert stats["pipeline_runs"] == 1
        assert stats["coalesced"] + stats["cache_hits"] == 2
        assert [entry["state"] for entry in payload["files"]] == ["done"] * 3

    def test_serve_process_executor_matches_thread_outputs(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        assert main(["serve", "--quiet", "--workers", "2", str(a), str(b)]) == 0
        thread_a = a.with_suffix(".sat.c").read_text()
        thread_b = b.with_suffix(".sat.c").read_text()
        a.with_suffix(".sat.c").unlink()
        b.with_suffix(".sat.c").unlink()

        report = tmp_path / "serve.json"
        assert main([
            "serve", "--quiet", "--workers", "2", "--executor", "process",
            "--report", str(report), str(a), str(b),
        ]) == 0
        assert a.with_suffix(".sat.c").read_text() == thread_a
        assert b.with_suffix(".sat.c").read_text() == thread_b
        stats = json.loads(report.read_text())["service"]
        assert stats["submitted"] == 2 and stats["worker_deaths"] == 0

    def test_serve_rejects_unknown_executor(self, tmp_path, capsys):
        a, _ = _write_inputs(tmp_path)
        try:
            main(["serve", "--executor", "fibers", str(a)])
        except SystemExit as error:
            assert error.code == 2
        else:  # pragma: no cover - argparse must reject the value
            raise AssertionError("argparse accepted an unknown executor")

    def test_serve_streams_progress_with_anytime(self, tmp_path, capsys):
        a, _ = _write_inputs(tmp_path)
        assert main([
            "serve", "--stream", "--workers", "1", "--anytime",
            "--node-limit", "500", "--iter-limit", "3", str(a),
        ]) == 0
        out = capsys.readouterr().out
        assert "iter=0" in out
        assert "cost=" in out

    def test_serve_reports_bad_input_and_keeps_going(self, tmp_path):
        a, _ = _write_inputs(tmp_path)
        bad = tmp_path / "bad.c"
        bad.write_text("int broken (((")
        report = tmp_path / "serve.json"
        assert main([
            "serve", "--quiet", "--workers", "2", "--report", str(report),
            str(a), str(bad),
        ]) == 1
        payload = json.loads(report.read_text())
        states = {entry["input"]: entry["state"] for entry in payload["files"]}
        assert states[str(a)] == "done"
        assert states[str(bad)] == "failed"
        assert a.with_suffix(".sat.c").exists()

    def test_serve_missing_file_is_an_error(self, tmp_path):
        a, _ = _write_inputs(tmp_path)
        assert main(["serve", "--quiet", str(a), str(tmp_path / "nope.c")]) == 1
        assert a.with_suffix(".sat.c").exists()

    def test_serve_disk_cache_dir(self, tmp_path):
        a, _ = _write_inputs(tmp_path)
        cache_dir = tmp_path / "cache"
        assert main([
            "serve", "--quiet", "--cache-dir", str(cache_dir), str(a),
        ]) == 0
        assert any(cache_dir.rglob("*.pkl"))

    def test_serve_expired_deadline_fails_typed(self, tmp_path):
        # a deadline already in the past expires every job at pickup —
        # deterministic, no wall-clock sleeping involved
        a, _ = _write_inputs(tmp_path)
        report = tmp_path / "serve.json"
        assert main([
            "serve", "--quiet", "--deadline", "-1", "--report", str(report),
            str(a),
        ]) == 1
        payload = json.loads(report.read_text())
        assert payload["files"][0]["state"] == "failed"
        assert "JobDeadlineError" in payload["files"][0]["error"]
        assert payload["service"]["expired"] == 1
        assert not a.with_suffix(".sat.c").exists()

    def test_serve_fault_tolerance_flags_round_trip(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        report = tmp_path / "serve.json"
        assert main([
            "serve", "--quiet", "--workers", "2",
            "--deadline", "600", "--max-queue", "8",
            "--overload-policy", "shed-oldest-lowest-priority",
            "--retries", "1", "--report", str(report),
            str(a), str(b),
        ]) == 0
        payload = json.loads(report.read_text())
        for entry in payload["files"]:
            assert entry["state"] == "done"
            assert entry["degraded"] is False
        stats = payload["service"]
        assert stats["rejected"] == 0 and stats["shed"] == 0
        assert stats["degraded"] == 0 and stats["retried"] == 0
