"""Tests for the benchmark suite: metadata, parsing, and semantics.

Every shipped kernel must (a) parse, (b) contain a discoverable parallel
kernel, and (c) survive the full ACCSAT pipeline with semantics preserved.
"""

import pytest

from repro.benchsuite import (
    NPB_BENCHMARKS,
    SPEC_ACC_BENCHMARKS,
    SPEC_OMP_BENCHMARKS,
    acc_to_omp_source,
    all_benchmarks,
    get_benchmark,
)
from repro.frontend import parse_statement
from repro.frontend.cast import clone
from repro.frontend.normalize import normalize_blocks
from repro.interp import verify_equivalence
from repro.saturator import SaturatorConfig, Variant, find_parallel_kernels
from repro.saturator.driver import optimize_ast
from repro.egraph.runner import RunnerLimits

ALL_KERNELS = [
    pytest.param(bench, spec, id=f"{bench.name}:{spec.name}")
    for bench in NPB_BENCHMARKS + SPEC_ACC_BENCHMARKS
    for spec in bench.kernels
]

FAST_CONFIG = SaturatorConfig(
    variant=Variant.ACCSAT, limits=RunnerLimits(1500, 3, 3.0)
)


class TestRegistry:
    def test_table2_metadata_matches_paper(self):
        by_name = {b.name: b for b in NPB_BENCHMARKS}
        assert by_name["BT"].num_kernels == 46
        assert by_name["CG"].num_kernels == 16
        assert by_name["EP"].num_kernels == 4
        assert by_name["FT"].num_kernels == 12
        assert by_name["LU"].num_kernels == 59
        assert by_name["MG"].num_kernels == 16
        assert by_name["SP"].num_kernels == 65
        assert by_name["BT"].paper_original_time["nvhpc"] == pytest.approx(14.85)
        assert by_name["BT"].paper_original_time["gcc"] == pytest.approx(28.04)

    def test_table3_metadata_matches_paper(self):
        by_name = {b.name: b for b in SPEC_ACC_BENCHMARKS}
        assert by_name["csp"].num_kernels == 68
        assert by_name["bt"].num_kernels == 50
        assert by_name["cg"].paper_original_time["gcc"] == pytest.approx(662.58)

    def test_omp_versions_have_p_names_and_paper_times(self):
        names = {b.name for b in SPEC_OMP_BENCHMARKS}
        assert names == {"postencil", "polbm", "pomriq", "pep", "pcg", "pcsp", "pbt"}
        pbt = get_benchmark("pbt")
        assert pbt.paper_original_time["clang"] == pytest.approx(562.83)

    def test_get_benchmark_prefers_exact_match(self):
        assert get_benchmark("bt").suite == "spec"
        assert get_benchmark("BT").suite == "npb"
        assert get_benchmark("olbm").suite == "spec"
        with pytest.raises(KeyError):
            get_benchmark("unknown")

    def test_all_benchmarks_count(self):
        assert len(all_benchmarks()) == 7 + 7 + 7


class TestDirectiveTranslation:
    def test_acc_to_omp_swaps_outer_directive(self):
        source = "#pragma acc parallel loop gang\nfor (i = 0; i < n; i++) a[i] = 0.0;"
        converted = acc_to_omp_source(source)
        assert "#pragma omp target teams distribute" in converted
        assert "acc" not in converted

    def test_omp_sources_still_contain_kernels(self):
        for bench in SPEC_OMP_BENCHMARKS:
            for spec in bench.kernels:
                assert "#pragma omp" in spec.source
                root = parse_statement(spec.source)
                normalize_blocks(root)
                assert find_parallel_kernels(root), f"{bench.name}:{spec.name}"


@pytest.mark.parametrize("bench,spec", ALL_KERNELS)
def test_kernel_parses_and_is_discoverable(bench, spec):
    root = parse_statement(spec.source)
    normalize_blocks(root)
    kernels = find_parallel_kernels(root)
    assert kernels, f"no parallel kernel found in {bench.name}:{spec.name}"


@pytest.mark.parametrize("bench,spec", ALL_KERNELS)
def test_kernel_pipeline_preserves_semantics(bench, spec):
    original = parse_statement(spec.source)
    normalize_blocks(original)
    work = clone(original)
    optimize_ast(work, FAST_CONFIG)
    result = verify_equivalence(original, work, trials=1, rtol=1e-6, atol=1e-8)
    assert result.passed, f"{bench.name}:{spec.name}: {result.message}"


@pytest.mark.parametrize(
    "bench", NPB_BENCHMARKS + SPEC_ACC_BENCHMARKS,
    ids=lambda b: b.name,
)
def test_kernel_specs_have_sane_launch_parameters(bench):
    for spec in bench.kernels:
        assert spec.iterations_per_launch > 0
        assert spec.launches > 0
        assert spec.repeat >= 1
        assert 0 < spec.parallel_fraction <= 1.0
        assert spec.statement_scale >= 1.0
