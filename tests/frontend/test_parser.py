"""Unit tests for the recursive-descent parser."""

import pytest

from repro.frontend import cast as C
from repro.frontend.parser import ParseError, parse, parse_expression, parse_statement


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, C.BinOp) and expr.op == "+"
        assert isinstance(expr.rhs, C.BinOp) and expr.rhs.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(a + b) * c")
        assert isinstance(expr, C.BinOp) and expr.op == "*"
        assert isinstance(expr.lhs, C.BinOp) and expr.lhs.op == "+"

    def test_unary_minus_binds_tighter_than_mul(self):
        expr = parse_expression("-a * b")
        assert isinstance(expr, C.BinOp) and expr.op == "*"
        assert isinstance(expr.lhs, C.UnaryOp) and expr.lhs.op == "-"

    def test_multidim_array_subscript(self):
        expr = parse_expression("a[i][j][k]")
        assert isinstance(expr, C.ArraySub)
        assert isinstance(expr.base, C.ArraySub)
        assert isinstance(expr.base.base, C.ArraySub)
        assert isinstance(expr.base.base.base, C.Ident)

    def test_member_access_dot_and_arrow(self):
        dot = parse_expression("s.field")
        arrow = parse_expression("p->field")
        assert isinstance(dot, C.Member) and not dot.arrow
        assert isinstance(arrow, C.Member) and arrow.arrow

    def test_call_with_arguments(self):
        expr = parse_expression("pow(x, 2.0)")
        assert isinstance(expr, C.Call)
        assert isinstance(expr.func, C.Ident) and expr.func.name == "pow"
        assert len(expr.args) == 2

    def test_ternary(self):
        expr = parse_expression("a > 0 ? b : c")
        assert isinstance(expr, C.Ternary)

    def test_cast(self):
        expr = parse_expression("(double)x")
        assert isinstance(expr, C.Cast) and expr.type_name == "double"

    def test_cast_vs_parenthesised_expression(self):
        expr = parse_expression("(x) + 1")
        assert isinstance(expr, C.BinOp) and expr.op == "+"

    def test_assignment_right_associative(self):
        expr = parse_expression("a = b = c")
        assert isinstance(expr, C.Assign)
        assert isinstance(expr.value, C.Assign)

    def test_compound_assignment(self):
        expr = parse_expression("x += y * 2")
        assert isinstance(expr, C.Assign) and expr.op == "+="

    def test_number_values(self):
        assert parse_expression("42").value == 42
        assert parse_expression("3.5").value == 3.5
        assert parse_expression("1e3").value == 1000.0
        assert parse_expression("0.f").is_float

    def test_logical_operators(self):
        expr = parse_expression("a && b || c")
        assert isinstance(expr, C.BinOp) and expr.op == "||"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a + b extra")


class TestStatements:
    def test_for_loop_with_declaration_init(self):
        stmt = parse_statement("for (int i = 0; i < n; i++) x = i;")
        assert isinstance(stmt, C.For)
        assert isinstance(stmt.init, C.Decl)
        assert stmt.cond is not None and stmt.step is not None

    def test_if_else(self):
        stmt = parse_statement("if (a > b) x = 1; else x = 2;")
        assert isinstance(stmt, C.If)
        assert stmt.otherwise is not None

    def test_while_and_do_while(self):
        assert isinstance(parse_statement("while (x) x = x - 1;"), C.While)
        assert isinstance(parse_statement("do x = x - 1; while (x);"), C.DoWhile)

    def test_block_with_declarations(self):
        stmt = parse_statement("{ double a = 1.0; int i; a = a + i; }")
        assert isinstance(stmt, C.Block)
        assert isinstance(stmt.stmts[0], C.Decl)
        assert stmt.stmts[0].init is not None

    def test_multi_declarator_split(self):
        stmt = parse_statement("{ int i, j, k; }")
        decls = [s for s in stmt.stmts if isinstance(s, C.Decl)]
        assert [d.name for d in decls] == ["i", "j", "k"]

    def test_array_declaration(self):
        stmt = parse_statement("{ double q[5]; }")
        decl = stmt.stmts[0]
        assert isinstance(decl, C.Decl) and len(decl.array_dims) == 1

    def test_break_continue_return(self):
        block = parse_statement("{ break; continue; return x; }")
        assert isinstance(block.stmts[0], C.Break)
        assert isinstance(block.stmts[1], C.Continue)
        assert isinstance(block.stmts[2], C.Return)

    def test_pragma_attaches_to_following_loop(self):
        stmt = parse_statement("#pragma acc loop vector\nfor (i = 0; i < n; i++) x = i;")
        assert isinstance(stmt, C.Pragma)
        assert isinstance(stmt.stmt, C.For)


class TestTranslationUnit:
    def test_function_definition(self):
        unit = parse("void foo(double *a, int n) { a[0] = n; }")
        assert len(unit.decls) == 1
        func = unit.decls[0]
        assert isinstance(func, C.FuncDef)
        assert func.name == "foo"
        assert len(func.params) == 2

    def test_global_declaration(self):
        unit = parse("double alpha = 1.5;")
        assert isinstance(unit.decls[0], C.Decl)

    def test_kernel_with_pragma_at_top_level(self):
        unit = parse(
            "#pragma acc parallel loop\nfor (int i = 0; i < n; i++) a[i] = b[i];"
        )
        assert isinstance(unit.decls[0], C.Pragma)
        assert isinstance(unit.decls[0].stmt, C.For)

    def test_parse_error_reports_location(self):
        with pytest.raises(ParseError):
            parse("void foo( {")
