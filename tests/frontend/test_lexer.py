"""Unit tests for the lexer."""

import pytest

from repro.frontend.lexer import LexerError, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind is not TokenKind.EOF]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_identifiers_and_numbers(self):
        assert texts("foo bar42 _x") == ["foo", "bar42", "_x"]
        assert kinds("foo 42") == [TokenKind.IDENT, TokenKind.NUMBER]

    def test_float_literals_keep_spelling(self):
        assert texts("0.f 1.0e-3 3.14 1e10") == ["0.f", "1.0e-3", "3.14", "1e10"]

    def test_hex_literal(self):
        assert texts("0xFF") == ["0xFF"]

    def test_integer_suffixes(self):
        assert texts("42u 42UL 7L") == ["42u", "42UL", "7L"]

    def test_multichar_punctuators_are_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_all_punctuators_tokenize(self):
        source = "+ - * / % << >> < > <= >= == != & | ^ && || = += -= *= /= ( ) [ ] { } , ; : ? ."
        assert all(k is TokenKind.PUNCT for k in kinds(source))

    def test_string_and_char_literals(self):
        tokens = tokenize('"hello" \'c\'')
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[1].kind is TokenKind.CHAR

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind is TokenKind.EOF
        assert tokenize("x")[-1].kind is TokenKind.EOF


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* oops")


class TestPragmas:
    def test_pragma_is_single_token(self):
        tokens = tokenize("#pragma acc parallel loop gang\nfor (;;) x;")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert tokens[0].text == "#pragma acc parallel loop gang"

    def test_pragma_backslash_continuation(self):
        source = "#pragma acc parallel loop gang num_gangs(4)\\\n  vector_length(32)\nx;"
        tokens = tokenize(source)
        assert tokens[0].kind is TokenKind.PRAGMA
        assert "vector_length(32)" in tokens[0].text
        assert "\\" not in tokens[0].text

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\n  c")
        a, b, c = tokens[0], tokens[1], tokens[2]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"never closed')
