"""Tests for OpenACC/OpenMP directive parsing."""

from repro.frontend.pragma import DirectiveKind, parse_pragma


class TestOpenACC:
    def test_parallel_loop_with_clauses(self):
        d = parse_pragma(
            "#pragma acc parallel loop gang num_gangs(ksize-1) num_workers(4) vector_length(32)"
        )
        assert d.kind is DirectiveKind.ACC
        assert d.names == ("parallel", "loop")
        assert d.has_clause("gang")
        assert d.clause("num_gangs").argument == "ksize-1"
        assert d.clause("vector_length").argument == "32"
        assert d.is_compute_construct
        assert d.is_loop_directive

    def test_kernels_directive(self):
        d = parse_pragma("#pragma acc kernels loop independent")
        assert d.names == ("kernels", "loop")
        assert d.has_clause("independent")
        assert d.is_compute_construct

    def test_loop_only_directive_is_not_compute(self):
        d = parse_pragma("#pragma acc loop vector(128)")
        assert not d.is_compute_construct
        assert d.is_loop_directive
        assert d.parallelism_levels == ("vector",)

    def test_parallelism_levels_ordered(self):
        d = parse_pragma("#pragma acc loop vector worker gang")
        assert d.parallelism_levels == ("gang", "worker", "vector")

    def test_str_roundtrip_contains_clauses(self):
        d = parse_pragma("#pragma acc loop gang(16) vector(256)")
        assert "gang(16)" in str(d)
        assert "vector(256)" in str(d)


class TestOpenMP:
    def test_target_teams_distribute(self):
        d = parse_pragma("#pragma omp target teams distribute")
        assert d.kind is DirectiveKind.OMP
        assert d.names == ("target", "teams", "distribute")
        assert d.is_compute_construct

    def test_parallel_for_simd(self):
        d = parse_pragma("#pragma omp parallel for simd")
        assert d.is_loop_directive
        assert not d.is_compute_construct

    def test_reduction_clause_argument(self):
        d = parse_pragma("#pragma omp parallel for reduction(+:sum)")
        assert d.clause("reduction").argument == "+:sum"


class TestOther:
    def test_unknown_pragma_family(self):
        d = parse_pragma("#pragma unroll 4")
        assert d.kind is DirectiveKind.OTHER

    def test_without_hash_pragma_prefix(self):
        d = parse_pragma("acc loop seq")
        assert d.kind is DirectiveKind.ACC
        assert d.has_clause("seq") or "seq" in d.names
