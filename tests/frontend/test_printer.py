"""Printer tests: regenerated C must re-parse to an equivalent AST."""

import pytest

from repro.frontend import cast as C
from repro.frontend.parser import parse_expression, parse_statement
from repro.frontend.printer import print_c, print_expr


ROUNDTRIP_EXPRESSIONS = [
    "a + b * c",
    "(a + b) * c",
    "-x * y",
    "a[i][j] + b[j][i]",
    "alpha * tmp + beta * c[i][j]",
    "x > 0 ? x : -x",
    "sqrt(x * x + y * y)",
    "(double)n / 2.0",
    "p->value + s.field",
    "a && b || !c",
    "i % 4 + (n << 2)",
]


@pytest.mark.parametrize("source", ROUNDTRIP_EXPRESSIONS)
def test_expression_roundtrip_is_stable(source):
    """print(parse(x)) re-parses and re-prints to the same text (fixpoint)."""

    once = print_expr(parse_expression(source))
    twice = print_expr(parse_expression(once))
    assert once == twice


ROUNDTRIP_STATEMENTS = [
    "{ double tmp = 0.0; tmp += a[i] * b[i]; r[i] = tmp; }",
    "for (int i = 0; i < n; i++) { a[i] = b[i] + 1.0; }",
    "if (x > 0) { y = 1.0; } else { y = -1.0; }",
    "while (k < n) { s += a[k]; k++; }",
    "do { x = x * 0.5; } while (x > eps);",
    "#pragma acc parallel loop gang\nfor (i = 0; i < n; i++) a[i] = 0.0;",
]


@pytest.mark.parametrize("source", ROUNDTRIP_STATEMENTS)
def test_statement_roundtrip_is_stable(source):
    once = print_c(parse_statement(source))
    twice = print_c(parse_statement(once))
    assert once == twice


def test_pragma_text_is_preserved_verbatim():
    source = "#pragma acc parallel loop gang num_gangs(ksize-1) vector_length(32)\nfor (k = 0; k < n; k++) x = k;"
    printed = print_c(parse_statement(source))
    assert "#pragma acc parallel loop gang num_gangs(ksize-1) vector_length(32)" in printed


def test_minimal_parentheses_for_precedence():
    expr = parse_expression("a + b * c")
    assert print_expr(expr) == "a + b * c"
    expr = parse_expression("(a + b) * c")
    assert print_expr(expr) == "(a + b) * c"


def test_nested_blocks_indent():
    printed = print_c(parse_statement("{ { x = 1; } }"))
    assert "  {" in printed


def test_print_function_definition():
    from repro.frontend.parser import parse

    unit = parse("double scale(double x, double f) { return x * f; }")
    printed = print_c(unit)
    assert "double scale(double x, double f)" in printed
    assert "return x * f;" in printed
