"""Tests for block normalisation."""

from repro.frontend import cast as C
from repro.frontend.normalize import normalize_blocks
from repro.frontend.parser import parse_statement
from repro.frontend.printer import print_c
from repro.interp import Environment, execute
import numpy as np


def test_single_statement_loop_body_becomes_block():
    stmt = parse_statement("for (i = 0; i < n; i++) a[i] = 0.0;")
    normalize_blocks(stmt)
    assert isinstance(stmt.body, C.Block)


def test_if_branches_become_blocks():
    stmt = parse_statement("if (x > 0) y = 1.0; else y = 2.0;")
    normalize_blocks(stmt)
    assert isinstance(stmt.then, C.Block)
    assert isinstance(stmt.otherwise, C.Block)


def test_nested_loops_normalised_recursively():
    stmt = parse_statement("for (i = 0; i < n; i++) for (j = 0; j < n; j++) a[i][j] = 0.0;")
    normalize_blocks(stmt)
    assert isinstance(stmt.body, C.Block)
    inner = stmt.body.stmts[0]
    assert isinstance(inner.body, C.Block)


def test_normalisation_preserves_semantics():
    source = "for (i = 0; i < n; i++) if (a[i] > 0.0) a[i] = a[i] * 2.0; else a[i] = 0.0;"
    original = parse_statement(source)
    normalized = parse_statement(source)
    normalize_blocks(normalized)

    env1 = Environment(scalars={"n": 6}, arrays={"a": np.linspace(-1, 1, 8)})
    env2 = env1.copy()
    execute(original, env1)
    execute(normalized, env2)
    assert env1.allclose(env2)


def test_already_normalised_is_idempotent():
    stmt = parse_statement("for (i = 0; i < n; i++) { a[i] = 0.0; }")
    once = print_c(normalize_blocks(stmt))
    twice = print_c(normalize_blocks(stmt))
    assert once == twice
