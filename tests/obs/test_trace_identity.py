"""The observational contract, enforced: tracing never changes results.

A traced run and an untraced run of the identical workload must produce
byte-identical artifacts — the same generated code and the same
deterministic report fields (wall-clock fields excluded, exactly as the
cache-equivalence suite excludes them) — through the bare pipeline, the
thread-executor service, the process-executor service (where spans cross
the process boundary), and the pure array-module fallback
(``REPRO_NO_NUMPY=1``, exercised in a subprocess like the columnar
backend-equality tests).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.egraph.runner import RunnerLimits
from repro.obs import Tracer
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import OptimizationService

CONFIG = SaturatorConfig(
    variant=Variant.ACCSAT, limits=RunnerLimits(800, 4, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
]

_TIME_KEYS = ("ssa_codegen_time", "saturation_time", "extraction_time",
              "search_time", "apply_time", "rebuild_time", "total_time",
              "phase_times", "hit_rate")


def _strip_volatile(obj):
    if isinstance(obj, dict):
        return {
            key: _strip_volatile(value)
            for key, value in obj.items()
            if key not in _TIME_KEYS and key != "from_cache"
        }
    if isinstance(obj, list):
        return [_strip_volatile(item) for item in obj]
    return obj


def _comparable(result):
    return [_strip_volatile(k.as_dict()) for k in result.kernels]


class TestPipelineIdentity:
    def test_traced_equals_untraced_for_every_variant(self):
        for variant in Variant:
            config = CONFIG.with_variant(variant)
            untraced = optimize_source(KERNELS[0], config)
            tracer = Tracer()
            root = tracer.span("run")
            traced = optimize_source(
                KERNELS[0], config, tracer=tracer, trace_parent=root.span_id
            )
            root.end()
            assert traced.code == untraced.code
            assert _comparable(traced) == _comparable(untraced)
            # the tracer actually observed the run it didn't perturb
            assert tracer.counts()["spans_started"] > 5


class TestServiceIdentity:
    def _wave(self, executor, traced):
        tracer = Tracer() if traced else None
        service = OptimizationService(
            config=CONFIG, workers=2, executor=executor, coalesce=False,
            tracer=tracer,
        )
        with service:
            handles = [
                service.submit(source, name_prefix=f"k{index}")
                for index, source in enumerate(KERNELS)
            ]
            assert service.join(120)
        results = [handle.result() for handle in handles]
        if tracer is not None:
            assert tracer.counts()["spans_started"] > 0
        return (
            [result.code for result in results],
            [_comparable(result) for result in results],
        )

    def test_thread_executor(self):
        assert self._wave("thread", traced=True) == self._wave("thread", traced=False)

    def test_process_executor(self):
        assert self._wave("process", traced=True) == self._wave("process", traced=False)


_NO_NUMPY_SCRIPT = """
import json
from repro.egraph.runner import RunnerLimits
from repro.obs import Tracer
from repro.saturator import SaturatorConfig, Variant, optimize_source

config = SaturatorConfig(variant=Variant.ACCSAT, limits=RunnerLimits(800, 4, 60.0))
source = (
    "#pragma acc parallel loop\\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }"
)
untraced = optimize_source(source, config)
tracer = Tracer()
root = tracer.span("run")
traced = optimize_source(source, config, tracer=tracer, trace_parent=root.span_id)
root.end()
assert traced.code == untraced.code, "traced code diverged"
print(json.dumps({
    "code": traced.code,
    "costs": [k.extracted_cost for k in traced.kernels],
    "nodes": [k.egraph_nodes for k in traced.kernels],
    "spans": tracer.counts()["spans_started"],
}))
"""


def test_identity_holds_without_numpy():
    """The array-module fallback honours the same contract (subprocess
    lane, mirroring tests/egraph/test_columnar.py)."""

    src = Path(__file__).resolve().parents[2] / "src"
    outputs = {}
    for no_numpy in ("0", "1"):
        env = dict(os.environ)
        env["REPRO_NO_NUMPY"] = no_numpy
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _NO_NUMPY_SCRIPT],
            capture_output=True, text=True, env=env, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        outputs[no_numpy] = json.loads(proc.stdout)
        assert outputs[no_numpy]["spans"] > 5
    # both backends: traced == untraced (asserted in-script), and the
    # backends agree with each other on the artifact
    assert outputs["0"]["code"] == outputs["1"]["code"]
    assert outputs["0"]["costs"] == outputs["1"]["costs"]
