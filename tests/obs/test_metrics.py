"""MetricsRegistry: instruments, adapted sources, deterministic snapshots."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry, sorted_deep


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.snapshot()["counters"]["hits"] == 3

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(5)
        registry.gauge("depth").set(2)
        assert registry.snapshot()["gauges"]["depth"] == 2

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.histogram("latency").observe(value)
        summary = registry.snapshot()["histograms"]["latency"]
        assert summary == {"count": 3, "max": 3.0, "mean": 2.0,
                           "min": 1.0, "total": 6.0}

    def test_empty_histogram_has_null_summary_fields(self):
        registry = MetricsRegistry()
        registry.histogram("unused")
        summary = registry.snapshot()["histograms"]["unused"]
        assert summary["count"] == 0 and summary["mean"] is None

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestSources:
    def test_sources_are_read_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"runs": 0}
        registry.add_source("service", lambda: dict(state))
        state["runs"] = 7
        assert registry.snapshot()["service"] == {"runs": 7}

    def test_reserved_source_names_are_rejected(self):
        registry = MetricsRegistry()
        for reserved in ("counters", "gauges", "histograms"):
            with pytest.raises(ValueError):
                registry.add_source(reserved, dict)


class TestDeterminism:
    def test_snapshot_key_order_is_recursively_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        registry.add_source("svc", lambda: {"b": {"y": 1, "x": 2}, "a": 3})
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        assert list(snapshot["svc"]) == ["a", "b"]
        assert list(snapshot["svc"]["b"]) == ["x", "y"]
        # identical content serializes identically regardless of the
        # insertion order of a second registry
        other = MetricsRegistry()
        other.counter("alpha").inc()
        other.counter("zeta").inc()
        other.add_source("svc", lambda: {"a": 3, "b": {"x": 2, "y": 1}})
        assert json.dumps(snapshot) == json.dumps(other.snapshot())

    def test_sorted_deep_handles_nesting_and_sequences(self):
        obj = {"b": [{"z": 1, "a": 2}], "a": ({"k": 0},)}
        out = sorted_deep(obj)
        assert list(out) == ["a", "b"]
        assert list(out["b"][0]) == ["a", "z"]
        assert out["a"] == [{"k": 0}]
