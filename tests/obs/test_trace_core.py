"""Tracer mechanics: spans, events, binding, ingestion, and the exporters.

The trace record stream is the PR-10 contract everything else builds on:
a flat JSONL sequence of ``start`` / ``end`` / ``event`` records under
one strictly monotone ``seq``, with ``start`` and ``end`` as *separate*
records so "every started span ends" is checkable, and with
cross-process ingestion re-parenting a child tracer's rebased records
under a chosen parent span.
"""

import pytest

from repro.obs import (
    SCHEMA,
    Tracer,
    chrome_path_for,
    load_jsonl,
    render_summary,
    to_chrome_trace,
    validate_chrome_file,
    validate_trace_records,
    write_trace_files,
)
from repro.obs.sites import all_sites, check_site, is_known_site, register_site


class TestSpans:
    def test_start_and_end_are_separate_records(self):
        tracer = Tracer()
        span = tracer.span("work", kind="unit")
        span.end(outcome="ok")
        records = tracer.records()
        assert [r["type"] for r in records] == ["start", "end"]
        start, end = records
        assert start["name"] == "work" and start["attrs"] == {"kind": "unit"}
        assert end["id"] == start["id"] and end["attrs"] == {"outcome": "ok"}
        assert end["ts"] >= start["ts"]

    def test_seq_is_strictly_monotone_across_record_kinds(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.event("tick", span=outer)
            tracer.span("inner").end()
        seqs = [r["seq"] for r in tracer.records()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.end(first=True)
        span.end(second=True)  # swallowed: exactly one end record
        ends = [r for r in tracer.records() if r["type"] == "end"]
        assert len(ends) == 1 and ends[0]["attrs"] == {"first": True}

    def test_context_manager_records_the_exception_type(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (end,) = [r for r in tracer.records() if r["type"] == "end"]
        assert end["attrs"]["error"] == "ValueError"

    def test_record_span_takes_no_clock_readings(self):
        reads = []

        def clock():
            reads.append(None)
            return float(len(reads))

        tracer = Tracer(clock=clock)
        tracer.record_span("phase", 1.0, 2.0)
        assert reads == []  # caller-supplied timestamps are used verbatim
        start, end = tracer.records()
        assert (start["ts"], end["ts"]) == (1.0, 2.0)

    def test_name_keyword_lands_in_attrs_not_the_span_name(self):
        tracer = Tracer()
        tracer.span("kernel", name="jacld").end()
        start = tracer.records()[0]
        assert start["name"] == "kernel" and start["attrs"] == {"name": "jacld"}


class TestBinding:
    def test_bound_span_is_the_default_parent(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        with tracer.bind(outer):
            child = tracer.span("child")
            tracer.event("probe")
        child.end()
        outer.end()
        records = tracer.records()
        child_start = next(r for r in records if r.get("name") == "child")
        event = next(r for r in records if r["type"] == "event")
        assert child_start["parent"] == outer.span_id
        assert event["span"] == outer.span_id

    def test_explicit_parent_beats_the_binding(self):
        tracer = Tracer()
        a, b = tracer.span("a"), tracer.span("b")
        with tracer.bind(a):
            child = tracer.span("child", parent=b)
        start = next(r for r in tracer.records() if r.get("name") == "child")
        assert start["parent"] == b.span_id

    def test_hook_adapter_emits_an_event_on_the_bound_span(self):
        tracer = Tracer()
        with tracer.span("job") as job, tracer.bind(job):
            tracer.hook("cache:get", {"outcome": "hit"})
        event = next(r for r in tracer.records() if r["type"] == "event")
        assert event["name"] == "cache:get"
        assert event["span"] == job.span_id
        assert event["attrs"] == {"outcome": "hit"}


class TestIngestion:
    """Cross-process collection: a child tracer's records re-home cleanly."""

    def _child_records(self):
        child = Tracer()
        root = child.span("worker:run", pid=123)
        with child.bind(root):
            inner = child.span("stage:saturate")
            child.event("cache:get", outcome="miss")
            inner.end()
        root.end(outcome="done")
        return child.rebased_records()

    def test_rebased_records_start_at_zero(self):
        records = self._child_records()
        assert min(r["ts"] for r in records) == 0.0

    def test_ingest_remaps_ids_and_reparents_roots(self):
        parent = Tracer()
        attempt = parent.span("attempt")
        parent.ingest(self._child_records(), parent=attempt.span_id, offset=attempt.start)
        attempt.end()
        records = parent.records()
        assert validate_trace_records(records) == []
        worker = next(r for r in records if r.get("name") == "worker:run")
        stage = next(r for r in records if r.get("name") == "stage:saturate")
        assert worker["parent"] == attempt.span_id
        assert stage["parent"] == worker["id"]
        # remapped ids never collide with the parent tracer's own spans
        assert worker["id"] != attempt.span_id

    def test_ingested_seqs_stay_monotone(self):
        parent = Tracer()
        attempt = parent.span("attempt")
        parent.ingest(self._child_records(), parent=attempt.span_id, offset=attempt.start)
        parent.event("after")
        attempt.end()
        seqs = [r["seq"] for r in parent.records()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_counts_track_open_and_ended_spans(self):
        tracer = Tracer()
        a = tracer.span("a")
        tracer.span("b").end()
        tracer.event("e")
        counts = tracer.counts()
        assert counts["spans_started"] == 2
        assert counts["spans_ended"] == 1
        assert counts["open_spans"] == 1
        assert counts["events"] == 1
        a.end()
        assert tracer.counts()["open_spans"] == 0


class TestExporters:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("job", seq=0) as job, tracer.bind(job):
            with tracer.span("stage:frontend"):
                tracer.event("cache:get", outcome="miss")
        return tracer.records()

    def test_jsonl_round_trip(self, tmp_path):
        records = self._traced()
        path = str(tmp_path / "trace.json")
        jsonl_path, chrome_path = write_trace_files(records, path, meta={"mode": "test"})
        assert jsonl_path == path and chrome_path == str(tmp_path / "trace.chrome.json")
        meta, loaded = load_jsonl(path)
        assert meta["schema"] == SCHEMA and meta["mode"] == "test"
        assert loaded == records

    def test_chrome_export_pairs_starts_with_ends(self, tmp_path):
        records = self._traced()
        document = to_chrome_trace(records)
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"job", "stage:frontend"}
        assert [e["name"] for e in instants] == ["cache:get"]
        for event in complete:
            assert event["dur"] >= 0
        path = str(tmp_path / "out.json")
        write_trace_files(records, path)
        assert validate_chrome_file(chrome_path_for(path)) == []

    def test_chrome_path_derivation(self):
        assert chrome_path_for("out.json") == "out.chrome.json"
        assert chrome_path_for("dir/t.jsonl") == "dir/t.chrome.jsonl"
        assert chrome_path_for("plain") == "plain.chrome.json"

    def test_render_summary_names_spans_and_events(self):
        text = render_summary(self._traced())
        assert "job" in text and "cache:get" in text


class TestSiteRegistry:
    def test_builtin_sites_are_known(self):
        for site in ("cache:get", "cache:store", "worker:pickup",
                     "worker:crash", "progress:publish", "ipc:result-drop"):
            assert is_known_site(site)

    def test_stage_prefix_family(self):
        assert is_known_site("stage:saturate")
        assert is_known_site("stage:anything-new")

    def test_unknown_site_is_rejected_with_the_inventory(self):
        with pytest.raises(ValueError) as excinfo:
            check_site("definitely-not-a-site")
        assert "cache:get" in str(excinfo.value)

    def test_registration_is_idempotent(self):
        register_site("obs-test-site", "test")
        register_site("obs-test-site", "test")
        assert is_known_site("obs-test-site")
        assert "obs-test-site" in all_sites()

    def test_fault_rules_validate_against_the_registry(self):
        from repro.service import FaultRule

        with pytest.raises(ValueError):
            FaultRule("not-an-instrumented-site", "transient", nth=1)
        FaultRule("cache:get", "transient", nth=1)  # known: accepted
