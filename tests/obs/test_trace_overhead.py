"""The disabled path is genuinely disabled: no spans, no events, no clocks.

Telemetry rides the ``Optional[Tracer] = None`` convention, so with no
tracer attached the hot loops must never construct a :class:`Span`,
append a record, or touch the obs layer at all.  These tests instrument
the obs module itself (counting constructor calls) and run the full
pipeline and a service wave untraced — any allocation is a regression
that would tax every untraced run.
"""

import repro.obs.trace as trace_module
from repro.egraph import EGraph, Runner, RunnerLimits
from repro.egraph.runner import CancellationToken
from repro.obs import Tracer
from repro.rules import default_ruleset
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import OptimizationService

CONFIG = SaturatorConfig(
    variant=Variant.ACCSAT, limits=RunnerLimits(800, 4, 60.0)
)

SOURCE = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }"
)


class _Guard:
    """Counts every Span construction and Tracer method entry."""

    def __init__(self, monkeypatch):
        self.spans = 0
        self.events = 0
        original_span_init = trace_module.Span.__init__
        original_event = trace_module.Tracer.event

        def counting_span_init(span_self, *args, **kwargs):
            self.spans += 1
            return original_span_init(span_self, *args, **kwargs)

        def counting_event(tracer_self, *args, **kwargs):
            self.events += 1
            return original_event(tracer_self, *args, **kwargs)

        monkeypatch.setattr(trace_module.Span, "__init__", counting_span_init)
        monkeypatch.setattr(trace_module.Tracer, "event", counting_event)


def test_untraced_runner_allocates_no_spans(monkeypatch):
    guard = _Guard(monkeypatch)
    from repro.egraph.language import op, sym

    eg = EGraph()
    eg.add_term(op("+", op("*", sym("a"), sym("b")),
                  op("*", sym("a"), sym("c"))))
    report = Runner(eg, default_ruleset(), RunnerLimits(800, 4, 60.0)).run()
    assert report.num_iterations > 0
    assert guard.spans == 0 and guard.events == 0


def test_untraced_pipeline_allocates_no_spans(monkeypatch):
    guard = _Guard(monkeypatch)
    result = optimize_source(SOURCE, CONFIG)
    assert result.kernels
    assert guard.spans == 0 and guard.events == 0


def test_untraced_service_allocates_no_spans(monkeypatch):
    guard = _Guard(monkeypatch)
    service = OptimizationService(config=CONFIG, workers=2)
    with service:
        handle = service.submit(SOURCE, name_prefix="quiet")
        assert service.join(60)
    assert handle.result().kernels
    assert guard.spans == 0 and guard.events == 0


def test_untraced_cancellation_path_allocates_no_spans(monkeypatch):
    """The early-exit (deadline) branch of the runner is guarded too."""

    guard = _Guard(monkeypatch)
    eg = EGraph()
    from repro.egraph.language import op, sym

    eg.add_term(op("+", sym("a"), op("*", sym("b"), sym("c"))))
    token = CancellationToken(timeout=0.0)  # expires immediately
    Runner(
        eg, default_ruleset(), RunnerLimits(800, 4, 60.0),
        cancellation=token,
    ).run()
    assert guard.spans == 0 and guard.events == 0


def test_traced_runs_do_allocate(monkeypatch):
    """Sanity check on the guard itself: with a tracer attached the same
    counters move, so a silently-broken monkeypatch can't fake a pass."""

    guard = _Guard(monkeypatch)
    tracer = Tracer()
    root = tracer.span("run")
    optimize_source(SOURCE, CONFIG, tracer=tracer, trace_parent=root.span_id)
    root.end()
    assert guard.spans > 5
