"""Span-tree well-formedness: the trace survives chaos.

``repro.obs.check.validate_trace_records`` is the single contract —
strictly monotone seqs, every started span ends exactly once, children
nest inside their parents, every job span reaches exactly one terminal
state.  Here it is driven two ways: a Hypothesis property over randomly
generated span-tree programs (the checker and the tracer agree on any
schedule), and end-to-end service waves under crash/retry/deadline fault
plans — including real worker deaths on the process executor, where a
crashed attempt's worker spans are lost by design but the *retry*
attempt's worker spans must re-parent under the same job span.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.egraph.runner import RunnerLimits
from repro.obs import Tracer, validate_trace_records
from repro.saturator import SaturatorConfig, Variant
from repro.service import FaultPlan, FaultRule, OptimizationService

CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT, limits=RunnerLimits(500, 3, 60.0)
)

KERNELS = [
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i]; }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { d[i] = (x[i] + y[i]) * (x[i] + y[i]); }",
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { e[i] = u[i] * v[i] + w[i] / u[i]; }",
]


# ---------------------------------------------------------------------------
# property: any program of nested spans/events the Tracer can express
# validates — and mutations of the stream are caught
# ---------------------------------------------------------------------------

@st.composite
def _tree_programs(draw):
    """A random tree as a nesting program: each node is (n_events, children)."""

    node = st.deferred(
        lambda: st.tuples(st.integers(0, 2), st.lists(node, max_size=3))
    )
    return draw(st.tuples(st.integers(0, 2), st.lists(node, max_size=4)))


def _run_program(tracer, program, parent=None, depth=0):
    n_events, children = program
    span = tracer.span(f"node-d{depth}", parent=parent)
    for index in range(n_events):
        tracer.event(f"tick-{index}", span=span)
    for child in children:
        _run_program(tracer, child, parent=span, depth=depth + 1)
    span.end()


@given(_tree_programs())
@settings(max_examples=60, deadline=None)
def test_any_nesting_program_validates(program):
    tracer = Tracer()
    _run_program(tracer, program)
    assert validate_trace_records(tracer.records()) == []


@given(_tree_programs())
@settings(max_examples=30, deadline=None)
def test_checker_catches_a_dropped_end(program):
    tracer = Tracer()
    _run_program(tracer, program)
    records = tracer.records()
    mutated = [r for r in records if r["type"] != "end"] \
        + [r for r in records if r["type"] == "end"][1:]
    mutated = sorted(mutated, key=lambda r: r["seq"])
    assert validate_trace_records(mutated) != []


def test_checker_catches_unended_and_orphan_spans():
    tracer = Tracer()
    tracer.span("never-ended")
    assert any("never end" in e or "never-ended" in e
               for e in validate_trace_records(tracer.records()))
    orphan = [{"type": "event", "seq": 0, "span": "s99", "name": "lost",
               "ts": 0.0, "attrs": {}}]
    assert validate_trace_records(orphan) != []


def test_checker_requires_job_terminal_state():
    tracer = Tracer()
    tracer.span("job", seq=0).end()  # no terminal attr
    assert any("terminal" in error
               for error in validate_trace_records(tracer.records()))


# ---------------------------------------------------------------------------
# end-to-end: chaos waves keep the tree well-formed
# ---------------------------------------------------------------------------

def _job_spans(records):
    return [r for r in records if r["type"] == "start" and r["name"] == "job"]


def _children_of(records, span_id, name=None):
    return [
        r for r in records
        if r["type"] == "start" and r["parent"] == span_id
        and (name is None or r["name"] == name)
    ]


def _end_of(records, span_id):
    return next(r for r in records if r["type"] == "end" and r["id"] == span_id)


class TestThreadChaosWave:
    def test_retry_and_failure_spans_stay_well_formed(self):
        plan = FaultPlan([
            FaultRule("cache:get", "transient", nth=1),
            FaultRule("worker:pickup", "permanent", probability=0.3),
        ], seed=99)
        tracer = Tracer()
        service = OptimizationService(
            config=CONFIG, workers=2, coalesce=False, faults=plan,
            retry_backoff=0.001, retry_backoff_cap=0.002, tracer=tracer,
        )
        with service:
            handles = [
                service.submit(KERNELS[i % len(KERNELS)], name_prefix=f"w{i}")
                for i in range(6)
            ]
            assert service.join(120)
            snapshot = service.metrics.snapshot()

        # the metrics snapshot obeys the conservation law even mid-chaos
        stats = snapshot["service"]
        assert stats["submitted"] == (
            stats["completed"] + stats["failed"] + stats["cancelled"]
        )
        # and its fault section mirrors the plan's injection counters
        assert snapshot["faults"] == plan.injected()

        records = tracer.records()
        assert validate_trace_records(records) == []

        jobs = _job_spans(records)
        assert len(jobs) == 6
        states = [h.state.value for h in handles]
        for job, state in zip(jobs, states):
            end = _end_of(records, job["id"])
            # the span's terminal attribute is the handle's terminal state
            assert end["attrs"]["terminal"] == state
            # retried jobs carry one attempt span per attempt
            attempts = _children_of(records, job["id"], "attempt")
            assert len(attempts) == 1 + end["attrs"]["retries"]
        assert "failed" in states and "done" in states  # chaos actually hit
        # every injected fault surfaced as a trace event
        injected = sum(plan.injected().values())
        fault_events = [r for r in records
                        if r["type"] == "event" and r["name"] == "fault:injected"]
        assert len(fault_events) == injected


class TestProcessCrashWave:
    def test_worker_spans_reparent_after_crash_and_retry(self):
        # every job's first attempt dies mid-run (real SIGKILL-style
        # os._exit in the worker); the retry must complete and its worker
        # spans must land under the *same* job span
        plan = FaultPlan([FaultRule("worker:crash", "crash", nth=1, after=1)])
        tracer = Tracer()
        service = OptimizationService(
            config=CONFIG, workers=2, executor="process", coalesce=False,
            faults=plan, retry_backoff=0.01, retry_backoff_cap=0.02,
            tracer=tracer,
        )
        with service:
            handles = [
                service.submit(source, name_prefix=f"c{index}")
                for index, source in enumerate(KERNELS)
            ]
            results = [handle.result(timeout=180) for handle in handles]
            snap = service.stats.snapshot()

        assert snap["worker_deaths"] == 3 and snap["recovered"] == 3
        assert all(result.kernels for result in results)

        records = tracer.records()
        assert validate_trace_records(records) == []
        jobs = _job_spans(records)
        assert len(jobs) == 3
        for job in jobs:
            end = _end_of(records, job["id"])
            assert end["attrs"]["terminal"] == "done"
            attempts = _children_of(records, job["id"], "attempt")
            assert len(attempts) == 1 + end["attrs"]["retries"]
            assert len(attempts) >= 2  # the injected crash forced a retry
            # crashed attempts' worker buffers died with their workers —
            # lost by design — so exactly the one surviving attempt
            # shipped worker spans, re-parented under its attempt span
            per_attempt = [
                _children_of(records, attempt["id"], "worker:run")
                for attempt in attempts
            ]
            shipped = [len(workers) for workers in per_attempt]
            assert sum(shipped) == 1 and shipped[-1] == 1
            (worker_run,) = per_attempt[-1]
            # and the worker's own children (kernel pipeline) came along
            assert _children_of(records, worker_run["id"])
            # a retry event per retry, naming the worker death
            retry_events = [
                r for r in records if r["type"] == "event"
                and r["name"] == "job:retry" and r["span"] == job["id"]
            ]
            assert len(retry_events) == end["attrs"]["retries"]
            assert retry_events[0]["attrs"]["worker_death"] is True
