"""Cache-correctness contract: a hit is indistinguishable from a cold run.

These tests enforce the session architecture's core promise — for every
variant and extractor, the artifact a cache hit returns carries the same
generated C and the same per-kernel statistics as a cold pipeline run,
whether the artifact came from the in-memory or the on-disk backend.
"""

import pytest

from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.session import DiskCache, MemoryCache, OptimizationSession

KERNEL = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
#pragma acc loop vector
  for (int j = 0; j < m; j++) {
    out[i][j] = w0 * in[i][j] + w1 * (in[i][j-1] + in[i][j+1])
              + w0 * in[i][j] * w1;
  }
}
"""

_TIME_KEYS = ("ssa_codegen_time", "saturation_time", "extraction_time",
              "search_time", "apply_time", "rebuild_time", "total_time",
              "phase_times", "hit_rate")


def _strip_volatile(obj):
    """Drop wall-clock fields (and cache flags) from a report dict tree."""

    if isinstance(obj, dict):
        return {
            key: _strip_volatile(value)
            for key, value in obj.items()
            if key not in _TIME_KEYS and key != "from_cache"
        }
    if isinstance(obj, list):
        return [_strip_volatile(item) for item in obj]
    return obj


def _comparable(result):
    return [_strip_volatile(k.as_dict()) for k in result.kernels]


@pytest.mark.parametrize("variant", list(Variant))
@pytest.mark.parametrize("extraction", ["dag-greedy", "tree"])
def test_hit_equals_cold_run_for_every_variant_and_extractor(variant, extraction):
    config = SaturatorConfig(variant=variant, extraction=extraction)
    session = OptimizationSession(config=config, cache=MemoryCache())

    cold = session.run(KERNEL)
    hit = session.run(KERNEL)
    assert session.cache.stats.hits == 1

    assert hit.code == cold.code
    assert hit.variant == cold.variant
    # every statistic matches, including the saturation profile; only the
    # provenance flag differs
    assert _comparable(hit) == _comparable(cold)
    assert all(k.from_cache for k in hit.kernels)
    assert not any(k.from_cache for k in cold.kernels)
    # timing fields of a hit are the cold run's (the artifact is the same)
    assert [k.saturation_time for k in hit.kernels] == [
        k.saturation_time for k in cold.kernels
    ]

    # and an entirely fresh, uncached run agrees on code and statistics
    fresh = optimize_source(KERNEL, config)
    assert fresh.code == cold.code
    assert _comparable(fresh) == _comparable(cold)


def test_ilp_extraction_artifacts_cache_identically():
    config = SaturatorConfig(variant=Variant.CSE_SAT, extraction="ilp")
    session = OptimizationSession(config=config, cache=MemoryCache())
    cold = session.run(KERNEL)
    hit = session.run(KERNEL)
    assert hit.code == cold.code
    assert _comparable(hit) == _comparable(cold)


def test_disk_backend_reproduces_artifacts_across_sessions(tmp_path):
    config = SaturatorConfig(variant=Variant.ACCSAT)
    first = OptimizationSession(config=config, cache=DiskCache(tmp_path))
    cold = first.run(KERNEL)

    # a brand-new session over the same directory sees the artifact
    second = OptimizationSession(config=config, cache=DiskCache(tmp_path))
    hit = second.run(KERNEL)
    assert second.cache.stats.hits == 1
    assert hit.code == cold.code
    assert _comparable(hit) == _comparable(cold)
    assert all(k.from_cache for k in hit.kernels)


def test_cache_discriminates_configs_and_sources(tmp_path):
    session = OptimizationSession(cache=MemoryCache())
    accsat = session.run(KERNEL, SaturatorConfig(variant=Variant.ACCSAT))
    cse = session.run(KERNEL, SaturatorConfig(variant=Variant.CSE))
    assert session.cache.stats.misses == 2  # no false sharing
    assert accsat.variant != cse.variant
    other = session.run(KERNEL.replace("w1", "w2"), SaturatorConfig())
    assert other.code != accsat.code


def test_name_prefix_is_part_of_the_key():
    session = OptimizationSession(cache=MemoryCache())
    a = session.run(KERNEL, name_prefix="alpha")
    b = session.run(KERNEL, name_prefix="beta")
    assert a.kernels[0].name.startswith("alpha")
    assert b.kernels[0].name.startswith("beta")
    assert session.cache.stats.hits == 0


def test_uncached_session_still_optimizes():
    session = OptimizationSession()
    result = session.run(KERNEL)
    assert result.kernels
    assert session.cache_stats is None
