"""Best-result anytime codegen: a plateau stop ships the best-seen selection.

The runner snapshots the best in-loop ``ExtractionResult`` (not just its
cost); the extraction stage rebases it onto the final e-graph and ships it
when it beats the final greedy extraction.  Greedy DAG extraction can
regress as the e-graph grows, so without the snapshot a plateau stop could
generate *worse* code than the loop had already proven reachable.
"""

import pytest

from repro.benchsuite.npb.lu import LU_JACLD_SOURCE
from repro.cost import AccSaturatorCostModel
from repro.egraph import EGraph, ExtractionResult, Runner, RunnerLimits, extract_best
from repro.egraph.language import op, sym
from repro.egraph.runner import AnytimeExtraction
from repro.rules import default_ruleset
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.session import MemoryCache, OptimizationSession
from repro.session import stages as stages_module
from repro.session.stages import (
    EGraphBuildStage,
    ExtractionStage,
    FrontendStage,
    SaturationStage,
    StageContext,
    run_stages,
)

ANYTIME_CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT,
    limits=RunnerLimits(1500, 5, 300.0),
    anytime_extraction=True,
    plateau_patience=2,
)

KERNEL = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = b[i] * c[i] + b[i] * c[i] + c[i]; }"
)


def _bench_egraph():
    eg = EGraph()
    term = op("+", op("*", sym("a"), sym("b")), op("*", sym("a"), sym("b")))
    root = eg.add_term(term)
    eg.rebuild()
    return eg, root


class TestRunnerSnapshot:
    def test_keep_best_records_the_best_in_loop_result(self):
        eg, root = _bench_egraph()
        hook = AnytimeExtraction(
            roots=[root], cost_model=AccSaturatorCostModel(),
            interval=1, patience=10**6,
        )
        runner = Runner(eg, default_ruleset(), RunnerLimits(500, 4, 300.0),
                        anytime=hook)
        report = runner.run()
        costs = [it.extracted_cost for it in report.iterations
                 if it.extracted_cost is not None]
        assert costs, "anytime extraction must have evaluated"
        assert hook.best_result is not None
        assert hook.best_result.dag_cost == min(costs)

    def test_keep_best_false_skips_the_snapshot(self):
        eg, root = _bench_egraph()
        hook = AnytimeExtraction(
            roots=[root], cost_model=AccSaturatorCostModel(),
            interval=1, patience=10**6, keep_best=False,
        )
        Runner(eg, default_ruleset(), RunnerLimits(500, 4, 300.0),
               anytime=hook).run()
        assert hook.best_result is None

    def test_snapshot_resets_between_runs(self):
        eg, root = _bench_egraph()
        hook = AnytimeExtraction(
            roots=[root], cost_model=AccSaturatorCostModel(),
            interval=1, patience=10**6,
        )
        runner = Runner(eg, default_ruleset(), RunnerLimits(500, 4, 300.0),
                        anytime=hook)
        runner.run()
        first = hook.best_result
        assert first is not None
        runner2 = Runner(eg, default_ruleset(), RunnerLimits(500, 1, 300.0),
                         anytime=hook)
        runner2.run()
        assert hook.best_result is not first or hook.best_result is None


def _staged_context(config):
    from repro.frontend.parser import parse_statement
    from repro.frontend.normalize import normalize_blocks
    from repro.saturator.kernel import find_parallel_kernels

    root = parse_statement(KERNEL)
    normalize_blocks(root)
    kernel = find_parallel_kernels(root)[0]
    return StageContext(body=kernel.body, config=config, name="k")


class TestExtractionStageSelection:
    def test_snapshot_ships_when_it_beats_the_final_extraction(self, monkeypatch):
        ctx = _staged_context(ANYTIME_CONFIG)
        run_stages(ctx, (FrontendStage(), EGraphBuildStage(), SaturationStage()))
        assert ctx.anytime_best is not None

        sentinel = ExtractionResult({}, {}, -1.0, 0.0, "dag-greedy")

        def fake_resolve(egraph, result, roots, cost_model):
            assert result is ctx.anytime_best
            return sentinel

        monkeypatch.setattr(stages_module, "resolve_result", fake_resolve)
        ExtractionStage().run(ctx)
        assert ctx.extraction is sentinel
        assert ctx.report.extracted_cost == -1.0

    def test_final_extraction_kept_when_snapshot_resolution_fails(self, monkeypatch):
        ctx = _staged_context(ANYTIME_CONFIG)
        run_stages(ctx, (FrontendStage(), EGraphBuildStage(), SaturationStage()))
        monkeypatch.setattr(
            stages_module, "resolve_result", lambda *args: None
        )
        ExtractionStage().run(ctx)
        assert ctx.extraction is not None
        assert ctx.extraction.dag_cost == ctx.report.extracted_cost

    def test_final_extraction_kept_when_it_is_at_least_as_good(self):
        ctx = _staged_context(ANYTIME_CONFIG)
        run_stages(ctx, (FrontendStage(), EGraphBuildStage(), SaturationStage(),
                         ExtractionStage()))
        costs = [it.extracted_cost
                 for it in ctx.report.runner.iterations
                 if it.extracted_cost is not None]
        # the shipped cost is never worse than the best the loop observed
        assert ctx.report.extracted_cost <= min(costs) + 1e-9


class TestEndToEnd:
    @pytest.mark.parametrize("source", [KERNEL, LU_JACLD_SOURCE])
    def test_shipped_cost_never_worse_than_the_loop_best(self, source):
        result = optimize_source(source, ANYTIME_CONFIG)
        for kernel in result.kernels:
            costs = [it.extracted_cost for it in kernel.runner.iterations
                     if it.extracted_cost is not None]
            if costs:
                assert kernel.extracted_cost <= min(costs) + 1e-9

    def test_anytime_pipeline_is_deterministic(self):
        first = optimize_source(LU_JACLD_SOURCE, ANYTIME_CONFIG)
        second = optimize_source(LU_JACLD_SOURCE, ANYTIME_CONFIG)
        assert first.code == second.code
        assert [k.extracted_cost for k in first.kernels] == [
            k.extracted_cost for k in second.kernels
        ]

    def test_anytime_cache_hit_equals_cold_run(self):
        session = OptimizationSession(config=ANYTIME_CONFIG, cache=MemoryCache())
        cold = session.run(LU_JACLD_SOURCE)
        hit = session.run(LU_JACLD_SOURCE)
        assert session.cache.stats.hits == 1
        assert hit.code == cold.code
        assert [k.extracted_cost for k in hit.kernels] == [
            k.extracted_cost for k in cold.kernels
        ]
