"""Process-pool workers inherit the session's disk cache tier.

``ProcessExecutor`` hands its ``cache_dir`` (explicit, or from
``REPRO_CACHE_DIR``) to every worker through a pool initializer: the
worker exports the variable and rebinds the experiment harness's pipeline
cache onto the directory.  A worker therefore starts with a *fresh memory
tier over the shared disk tier* — so any cache hit it reports can only
have come from an artifact another process wrote to disk, which is
exactly the cross-process warm-state handoff the ROADMAP asked for.
"""

import os

from repro.benchsuite.npb.cg import CG
from repro.experiments import common
from repro.experiments.common import EvaluationSettings, configure_pipeline_cache
from repro.saturator import Variant
from repro.session import (
    DiskCache,
    MemoryCache,
    OptimizationSession,
    ProcessExecutor,
    SerialExecutor,
    TieredCache,
    make_executor,
)
from repro.session.session import _cache_dir_of

SOURCE = CG.kernels[0].source
#: Deliberately unusual limits so no other test's artifacts collide.
SETTINGS = EvaluationSettings(node_limit=311, iter_limit=2)


def _probe_worker(args):
    """Run one kernel through the harness; report where the result came from.

    Module-level so the process pool can pickle it.  By the time it runs,
    the pool initializer has rebound the harness cache onto the shared
    disk directory (with a *fresh* memory tier), so a reported hit proves
    a cross-process disk artifact was reused.
    """

    source, saturate = args
    common._pipeline_stats(source, saturate, SETTINGS)
    stats = common.pipeline_cache_stats()
    return {
        "env_cache_dir": os.environ.get("REPRO_CACHE_DIR"),
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def test_workers_hit_artifacts_the_parent_wrote(tmp_path):
    cache_dir = tmp_path / "fleet-cache"

    # The parent seeds the DISK tier only — through a standalone session,
    # not the harness, so the forked workers cannot inherit a warm memory
    # tier and the only shared state is the on-disk artifact.
    seeder = OptimizationSession(cache=DiskCache(cache_dir))
    seeder.run(SOURCE, SETTINGS.config(Variant.CSE))
    assert list(cache_dir.glob("*/*.pkl")), "seeding must write disk artifacts"

    executor = ProcessExecutor(jobs=2, cache_dir=cache_dir)
    results = executor.map(_probe_worker, [(SOURCE, False), (SOURCE, False)])

    assert [r["env_cache_dir"] for r in results] == [str(cache_dir)] * 2
    # every worker served the pipeline from the shared disk tier instead
    # of re-running it cold
    assert all(r["hits"] >= 1 for r in results), results


def test_pool_kwargs_carry_the_initializer(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert ProcessExecutor(jobs=2)._pool_kwargs() == {}

    explicit = ProcessExecutor(jobs=2, cache_dir=tmp_path)
    kwargs = explicit._pool_kwargs()
    assert kwargs["initargs"] == (str(tmp_path),)

    # without an explicit directory, REPRO_CACHE_DIR is the fleet default
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert ProcessExecutor(jobs=2)._pool_kwargs()["initargs"] == (
        str(tmp_path / "env"),
    )


def test_worker_init_rebinds_the_harness_cache(tmp_path):
    from repro.session.executor import _worker_cache_init

    before = common._PIPELINE_CACHE
    try:
        _worker_cache_init(str(tmp_path / "a"))
        bound = common._PIPELINE_CACHE
        assert isinstance(bound, TieredCache)
        assert str(bound.disk.root) == str(tmp_path / "a")
        # already backed by the same directory: the warm memory tier is kept
        _worker_cache_init(str(tmp_path / "a"))
        assert common._PIPELINE_CACHE is bound
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
        configure_pipeline_cache()
    assert before is not common._PIPELINE_CACHE  # rebuilt to the default


def test_session_forwards_its_disk_dir_to_process_executors(tmp_path):
    session = OptimizationSession(
        cache=DiskCache(tmp_path), executor="processes:2"
    )
    assert isinstance(session.executor, ProcessExecutor)
    assert session.executor.cache_dir == str(tmp_path)

    tiered = OptimizationSession(
        cache=TieredCache(memory=MemoryCache(), disk=DiskCache(tmp_path / "t")),
        executor="processes:2",
    )
    assert tiered.executor.cache_dir == str(tmp_path / "t")

    assert _cache_dir_of(MemoryCache()) is None
    assert _cache_dir_of(None) is None
    # non-process specs ignore the directory
    assert isinstance(make_executor("serial", cache_dir=tmp_path), SerialExecutor)
