"""Batch executors, and the parallel == serial evaluation contract."""

import time

import pytest

from repro.benchsuite import get_benchmark
from repro.experiments.common import (
    EvaluationSettings,
    clear_pipeline_cache,
    evaluate_benchmark,
    evaluate_kernel,
    pipeline_cache_stats,
)
from repro.gpusim import A100_PCIE_40GB, compiler_model
from repro.session import (
    BatchExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)

FAST = EvaluationSettings(node_limit=1200, iter_limit=2, time_limit=3.0)


def _square(x):
    return x * x


def _jittered_negate(x):
    # later items finish first, exercising order preservation
    time.sleep(0.02 * (3 - x % 4))
    return -x


class TestMakeExecutor:
    def test_spellings(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("serial:1"), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ThreadExecutor)
        assert make_executor(4).jobs == 4
        assert isinstance(make_executor("threads"), ThreadExecutor)
        assert make_executor("threads:3").jobs == 3
        assert isinstance(make_executor("processes:2"), ProcessExecutor)
        assert make_executor("2").jobs == 2

    def test_existing_executor_passes_through(self):
        executor = ThreadExecutor(2)
        assert make_executor(executor) is executor

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            make_executor("fleet")
        with pytest.raises(ValueError):
            make_executor("threads:0")
        with pytest.raises(ValueError):
            make_executor(0)


class TestExecutors:
    def test_serial_map(self):
        assert SerialExecutor().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_threads_preserve_input_order(self):
        result = ThreadExecutor(4).map(_jittered_negate, list(range(8)))
        assert result == [-x for x in range(8)]

    def test_processes_map(self):
        assert ProcessExecutor(2).map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]

    def test_single_item_short_circuits_pool(self):
        assert ThreadExecutor(4).map(_square, [5]) == [25]


class TestParallelEvaluationMatchesSerial:
    @pytest.fixture(scope="class")
    def bench(self):
        return get_benchmark("BT")

    def test_evaluate_benchmark_threads_equals_serial(self, bench):
        serial = evaluate_benchmark(bench, "nvhpc", settings=FAST)
        threaded = evaluate_benchmark(
            bench, "nvhpc", settings=FAST, executor="threads:4"
        )
        assert threaded.total_time == serial.total_time
        assert [m.kernel for m in threaded.kernels] == [m.kernel for m in serial.kernels]
        for ours, theirs in zip(threaded.kernels, serial.kernels):
            assert ours.by_variant.keys() == theirs.by_variant.keys()
            for variant in ours.by_variant:
                assert ours.by_variant[variant].time_s == theirs.by_variant[variant].time_s

    def test_evaluate_kernel_executor_matches_serial(self, bench):
        spec = bench.kernels[0]
        compiler = compiler_model("nvhpc", bench.programming_model)
        serial = evaluate_kernel(spec, compiler, A100_PCIE_40GB, settings=FAST)
        threaded = evaluate_kernel(
            spec, compiler, A100_PCIE_40GB, settings=FAST, executor=3
        )
        assert {
            v: m.time_s for v, m in threaded.by_variant.items()
        } == {v: m.time_s for v, m in serial.by_variant.items()}

    def test_repeated_cells_hit_the_pipeline_caches(self, bench):
        clear_pipeline_cache()
        evaluate_benchmark(bench, "nvhpc", settings=FAST)
        before = pipeline_cache_stats()
        evaluate_benchmark(bench, "gcc", settings=FAST)
        after = pipeline_cache_stats()
        # the second compiler re-uses every pipeline artifact: no new
        # stores in the session cache, every cell served by the memo
        assert after["stores"] == before["stores"]
        assert after["derived_hits"] > before["derived_hits"]
