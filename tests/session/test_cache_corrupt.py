"""Corrupt disk-cache entries: quarantine instead of silent swallow.

An on-disk entry that exists but won't unpickle (truncated by a crashed
writer, or written by an incompatible version) must degrade to a miss
*once*: the entry is quarantined off the probe path, the ``corrupt``
counter records it, and the next probe is a plain miss that a fresh
``put`` can refill.
"""

import copy
import pickle
import threading

from repro.session import DiskCache, MISS, TieredCache
from repro.session.cache import CacheStats
from repro.session.fingerprint import CacheKey


def _key(tag: str = "k") -> CacheKey:
    return CacheKey(source_fp=tag, config_fp="cfg", stage="pipeline")


def _corrupt_entry(cache: DiskCache, key: CacheKey, payload: bytes) -> None:
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)


class TestCorruptQuarantine:
    def test_truncated_pickle_is_quarantined_and_counted(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = _key()
        cache.put(key, {"answer": 42})
        path = cache._path(key)
        # truncate mid-stream: pickle.load raises EOFError
        blob = path.read_bytes()
        _corrupt_entry(cache, key, blob[: len(blob) // 2])

        assert cache.get(key) is MISS
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists(), "corrupt entry must leave the probe path"
        assert path.with_suffix(".corrupt").exists()

        # second probe: plain miss, no second corruption event
        assert cache.get(key) is MISS
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_garbage_bytes_are_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = _key()
        _corrupt_entry(cache, key, b"this is not a pickle")
        assert cache.get(key) is MISS
        assert cache.stats.corrupt == 1

    def test_refill_after_quarantine_hits(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = _key()
        _corrupt_entry(cache, key, pickle.dumps(object)[:4])
        assert cache.get(key) is MISS
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
        assert cache.stats.hits == 1
        assert cache.stats.corrupt == 1

    def test_missing_entry_is_a_plain_miss_not_corruption(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(_key("absent")) is MISS
        assert cache.stats.corrupt == 0
        assert cache.stats.misses == 1

    def test_concurrent_probes_quarantine_once_and_refill_clean(self, tmp_path):
        """Two threads racing into the same corrupt entry must not fight.

        Whichever thread loses the ``os.replace`` race degrades to a
        plain miss (or a second best-effort unlink that finds nothing):
        exactly one ``.corrupt`` quarantine file appears, each thread
        books at most one ``corrupt`` increment, and a subsequent ``put``
        refills the slot cleanly.
        """

        cache = DiskCache(tmp_path)
        key = _key("raced")
        _corrupt_entry(cache, key, b"\x80\x04 definitely not a pickle")
        path = cache._path(key)

        barrier = threading.Barrier(2)
        results = []

        def probe():
            barrier.wait()
            results.append(cache.get(key))

        threads = [threading.Thread(target=probe) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results == [MISS, MISS]
        # exactly one quarantine artifact, none left on the probe path
        assert not path.exists()
        quarantined = list(path.parent.glob("*.corrupt"))
        assert len(quarantined) == 1
        # each probe books at most one corruption event (the loser of the
        # rename race may instead see a plain FileNotFoundError miss)
        assert 1 <= cache.stats.corrupt <= 2
        assert cache.stats.misses == 2

        # clean refill: the quarantined entry no longer shadows the slot
        cache.put(key, "fresh")
        assert cache.get(key) == "fresh"
        assert cache.stats.hits == 1
        assert len(list(path.parent.glob("*.corrupt"))) == 1

    def test_tiered_cache_surfaces_disk_corruption_as_miss(self, tmp_path):
        disk = DiskCache(tmp_path)
        tiered = TieredCache(memory=None, disk=disk)
        key = _key()
        _corrupt_entry(disk, key, b"\x80")
        assert tiered.get(key) is MISS
        assert disk.stats.corrupt == 1
        assert tiered.stats.misses == 1


class TestCorruptCounterPlumbing:
    def test_corrupt_survives_pickle_and_deepcopy(self):
        stats = CacheStats()
        stats.corrupted(3)
        stats.miss(3)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.corrupt == 3 and clone.misses == 3
        dup = copy.deepcopy(stats)
        assert dup.corrupt == 3
        assert stats.as_dict()["corrupt"] == 3

    def test_old_pickled_state_defaults_corrupt_to_zero(self):
        stats = CacheStats()
        stats.__setstate__({"hits": 1, "misses": 2, "stores": 3})
        assert stats.corrupt == 0 and stats.hits == 1
