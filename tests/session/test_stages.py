"""Stage composition: contracts, timing, and extensibility."""

import pytest

from repro.frontend import parse_statement
from repro.saturator import SaturatorConfig, Variant, find_parallel_kernels
from repro.saturator.pipeline import optimize_loop_body
from repro.session import (
    DEFAULT_STAGES,
    CodegenStage,
    EGraphBuildStage,
    ExtractionStage,
    FrontendStage,
    SaturationStage,
    Stage,
    StageContext,
    StageError,
    run_stages,
)

SOURCE = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
#pragma acc loop vector
  for (int j = 0; j < m; j++) {
    out[i][j] = a * in[i][j] + b * in[i][j];
  }
}
"""


def _body():
    root = parse_statement(SOURCE)
    return find_parallel_kernels(root)[0].body


def _context(variant=Variant.ACCSAT):
    return StageContext(body=_body(), config=SaturatorConfig(variant=variant))


class TestDefaultPipeline:
    def test_stage_names_and_order(self):
        assert [s.name for s in DEFAULT_STAGES] == [
            "frontend", "egraph", "saturate", "extract", "codegen",
        ]

    def test_run_stages_fills_every_artifact_and_timing(self):
        ctx = run_stages(_context())
        assert ctx.ssa is not None
        assert ctx.egraph is not None
        assert ctx.extraction is not None
        assert ctx.generated is not None
        assert set(ctx.stage_times) == {s.name for s in DEFAULT_STAGES}
        report = ctx.report
        assert report.saturation_time == ctx.stage_times["saturate"]
        assert report.extraction_time == ctx.stage_times["extract"]
        expected = sum(
            t for name, t in ctx.stage_times.items()
            if name not in ("saturate", "extract")
        )
        assert report.ssa_codegen_time == pytest.approx(expected)

    def test_non_saturating_variant_reports_zero_saturation_time(self):
        ctx = run_stages(_context(Variant.CSE))
        assert ctx.report.runner is None
        assert ctx.report.saturation_time == 0.0
        assert ctx.report.egraph_nodes > 0  # bookkeeping still recorded


class TestContracts:
    def test_stage_requires_check(self):
        ctx = _context()
        with pytest.raises(StageError, match="requires 'ssa'"):
            run_stages(ctx, [EGraphBuildStage()])

    def test_codegen_requires_extraction(self):
        ctx = _context()
        with pytest.raises(StageError):
            run_stages(ctx, [FrontendStage(), EGraphBuildStage(), CodegenStage()])


class _CountClasses(Stage):
    """A custom stage splicing diagnostics between saturation and extraction."""

    name = "count-classes"
    requires = ("egraph",)

    def __init__(self):
        self.seen = []

    def run(self, ctx):
        self.seen.append(ctx.egraph.num_classes)


class TestExtensibility:
    def test_custom_stage_runs_in_sequence_and_is_timed(self):
        probe = _CountClasses()
        stages = (
            FrontendStage(),
            EGraphBuildStage(),
            SaturationStage(),
            probe,
            ExtractionStage(),
            CodegenStage(),
        )
        ctx = run_stages(_context(), stages)
        assert probe.seen and probe.seen[0] == ctx.report.egraph_classes
        assert "count-classes" in ctx.stage_times
        # custom stages count toward the SSA/codegen bucket
        assert ctx.report.ssa_codegen_time >= ctx.stage_times["count-classes"]

    def test_optimize_loop_body_accepts_a_stage_list(self):
        probe = _CountClasses()
        stages = DEFAULT_STAGES[:3] + (probe,) + DEFAULT_STAGES[3:]
        generated, report = optimize_loop_body(
            _body(), SaturatorConfig(), stages=stages
        )
        assert probe.seen
        assert generated.stats.loads >= 0
        assert report.optimized is generated.stats

    def test_stageless_call_matches_default_stage_tuple(self):
        g1, r1 = optimize_loop_body(_body(), SaturatorConfig())
        g2, r2 = optimize_loop_body(_body(), SaturatorConfig(), stages=DEFAULT_STAGES)
        assert g1.stats == g2.stats
        assert r1.extracted_cost == r2.extracted_cost
