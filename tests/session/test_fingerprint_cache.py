"""Fingerprints and artifact-cache backends."""

import pytest

from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant
from repro.session import (
    MISS,
    CacheKey,
    DiskCache,
    MemoryCache,
    TieredCache,
    fingerprint_config,
    fingerprint_text,
    stage_key,
)


class TestFingerprints:
    def test_text_fingerprint_is_stable_and_content_sensitive(self):
        assert fingerprint_text("abc") == fingerprint_text("abc")
        assert fingerprint_text("abc") != fingerprint_text("abd")

    def test_config_fingerprint_covers_every_field(self):
        base = SaturatorConfig()
        assert fingerprint_config(base) == fingerprint_config(SaturatorConfig())
        assert fingerprint_config(base) != fingerprint_config(
            SaturatorConfig(variant=Variant.CSE)
        )
        assert fingerprint_config(base) != fingerprint_config(
            SaturatorConfig(limits=RunnerLimits(123, 4, 5.0))
        )
        assert fingerprint_config(base) != fingerprint_config(
            SaturatorConfig(incremental_search=False)
        )

    def test_stage_key_digest_is_stable(self):
        key = stage_key("src", SaturatorConfig(), "optimize-source", "k")
        again = stage_key("src", SaturatorConfig(), "optimize-source", "k")
        assert key == again
        assert key.digest == again.digest
        assert key.digest != stage_key("src", SaturatorConfig(), "frontend", "k").digest


def _key(tag: str) -> CacheKey:
    return CacheKey("s" + tag, "c" + tag, "stage", "")


class TestMemoryCache:
    def test_roundtrip_and_stats(self):
        cache = MemoryCache()
        assert cache.get(_key("a")) is MISS
        cache.put(_key("a"), {"v": 1})
        assert cache.get(_key("a")) == {"v": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_artifacts_are_isolated_from_caller_mutation(self):
        cache = MemoryCache()
        artifact = {"v": [1, 2]}
        cache.put(_key("a"), artifact)
        artifact["v"].append(3)  # mutating the original after put
        first = cache.get(_key("a"))
        assert first == {"v": [1, 2]}
        first["v"].append(4)  # mutating a returned copy
        assert cache.get(_key("a")) == {"v": [1, 2]}

    def test_lru_eviction(self):
        cache = MemoryCache(max_entries=2)
        cache.put(_key("a"), 1)
        cache.put(_key("b"), 2)
        assert cache.get(_key("a")) == 1  # refresh a
        cache.put(_key("c"), 3)  # evicts b
        assert cache.get(_key("b")) is MISS
        assert cache.get(_key("a")) == 1
        assert cache.get(_key("c")) == 3

    def test_none_is_a_cacheable_artifact(self):
        cache = MemoryCache()
        cache.put(_key("n"), None)
        assert cache.get(_key("n")) is None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryCache(max_entries=0)


class TestDiskCache:
    def test_roundtrip_persists_across_instances(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put(_key("a"), {"v": 42})
        reopened = DiskCache(tmp_path / "cache")
        assert reopened.get(_key("a")) == {"v": 42}
        assert reopened.stats.hits == 1

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(_key("a"), {"v": 1})
        [path] = list(tmp_path.glob("*/*.pkl"))
        path.write_bytes(b"not a pickle")
        assert cache.get(_key("a")) is MISS

    def test_clear_removes_entries(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(_key("a"), 1)
        cache.clear()
        assert cache.get(_key("a")) is MISS


class TestTieredCache:
    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = DiskCache(tmp_path)
        disk.put(_key("a"), "artifact")
        tiered = TieredCache(MemoryCache(), DiskCache(tmp_path))
        assert tiered.get(_key("a")) == "artifact"
        assert tiered.memory.stats.misses == 1
        # second read is served by the memory tier
        assert tiered.get(_key("a")) == "artifact"
        assert tiered.memory.stats.hits == 1

    def test_put_fills_both_tiers(self, tmp_path):
        tiered = TieredCache(MemoryCache(), DiskCache(tmp_path))
        tiered.put(_key("b"), 7)
        assert tiered.memory.get(_key("b")) == 7
        assert DiskCache(tmp_path).get(_key("b")) == 7

    def test_requires_a_backend(self):
        with pytest.raises(ValueError):
            TieredCache(None, None)
