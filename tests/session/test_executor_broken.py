"""A worker process dying mid-batch surfaces as a typed, resumable error.

``concurrent.futures`` reports a killed pool worker as the untyped
``BrokenProcessPool``; the executor layer must instead raise
:class:`~repro.session.ExecutorBrokenError` carrying how many results from
the front of the batch were already collected, so a caller can resume at
the first unfinished item instead of redoing the whole batch.
"""

import os
import signal
import time

import pytest

from repro.session import (
    ExecutorBrokenError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)


def _work(item):
    """Module-level (hence picklable) batch callable.

    ``("die", delay)`` sleeps, then SIGKILLs its own worker process —
    the delay gives earlier items time to finish so the completed-prefix
    count is deterministic.
    """

    if isinstance(item, tuple) and item[0] == "die":
        time.sleep(item[1])
        os.kill(os.getpid(), signal.SIGKILL)
    return item * 2


class TestExecutorBroken:
    def test_sigkilled_worker_raises_typed_error_with_completed_prefix(self):
        executor = ProcessExecutor(jobs=2)
        items = [1, ("die", 1.0), 3, 4]
        with pytest.raises(ExecutorBrokenError) as excinfo:
            executor.map(_work, items)
        error = excinfo.value
        # item 0 is trivial and finished well inside the killer's 1s nap;
        # item 1's future breaks, so exactly one prefix result landed
        assert error.completed == 1
        assert isinstance(error, RuntimeError)
        assert "1 of 4" in str(error)

    def test_break_on_first_item_reports_zero_completed(self):
        executor = ProcessExecutor(jobs=2)
        with pytest.raises(ExecutorBrokenError) as excinfo:
            executor.map(_work, [("die", 0.0), ("die", 0.0)])
        assert excinfo.value.completed == 0

    def test_healthy_batches_are_unaffected(self):
        items = list(range(6))
        expected = [item * 2 for item in items]
        assert ProcessExecutor(jobs=2).map(_work, items) == expected
        assert ThreadExecutor(jobs=2).map(_work, items) == expected
        assert SerialExecutor().map(_work, items) == expected

    def test_ordinary_exceptions_propagate_untyped(self):
        # only a *broken pool* wraps; a callable raising normally must
        # surface its own exception type
        executor = ThreadExecutor(jobs=2)
        with pytest.raises(TypeError):
            executor.map(_work, [1, object(), 3])
