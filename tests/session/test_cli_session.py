"""CLI integration with the session subsystem (--jobs, --cache-dir)."""

import json

from repro.cli import main

KERNEL_A = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
  out[i] = a * in[i] + b * in[i];
}
"""

KERNEL_B = """
#pragma acc parallel loop gang
for (int i = 0; i < n; i++) {
  res[i] = (x[i] + y[i]) * (x[i] + y[i]);
}
"""


def _write_inputs(tmp_path):
    a = tmp_path / "a.c"
    b = tmp_path / "b.c"
    a.write_text(KERNEL_A)
    b.write_text(KERNEL_B)
    return a, b


class TestJobs:
    def test_parallel_jobs_match_serial_outputs(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        assert main(["--quiet", str(a), str(b)]) == 0
        serial_a = a.with_suffix(".sat.c").read_text()
        serial_b = b.with_suffix(".sat.c").read_text()

        a.with_suffix(".sat.c").unlink()
        b.with_suffix(".sat.c").unlink()
        assert main(["--quiet", "--jobs", "2", str(a), str(b)]) == 0
        assert a.with_suffix(".sat.c").read_text() == serial_a
        assert b.with_suffix(".sat.c").read_text() == serial_b

    def test_process_executor_jobs(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        assert main(
            ["--quiet", "--jobs", "2", "--executor", "processes", str(a), str(b)]
        ) == 0
        assert a.with_suffix(".sat.c").exists()
        assert b.with_suffix(".sat.c").exists()

    def test_missing_file_still_fails_gracefully(self, tmp_path, capsys):
        a, _ = _write_inputs(tmp_path)
        assert main(["--quiet", "--jobs", "2", str(a), str(tmp_path / "no.c")]) == 1
        assert "no such file" in capsys.readouterr().err


class TestCacheDir:
    def test_second_run_hits_the_disk_cache(self, tmp_path):
        a, b = _write_inputs(tmp_path)
        cache_dir = tmp_path / "artifacts"
        report1 = tmp_path / "r1.json"
        report2 = tmp_path / "r2.json"

        args = ["--quiet", "--cache-dir", str(cache_dir)]
        assert main(args + ["--report", str(report1), str(a), str(b)]) == 0
        first = json.loads(report1.read_text())
        assert first["cache"]["hits"] == 0
        assert first["cache"]["stores"] == 2
        output_a = a.with_suffix(".sat.c").read_text()

        assert main(args + ["--report", str(report2), str(a), str(b)]) == 0
        second = json.loads(report2.read_text())
        assert second["cache"]["hits"] == 2
        assert second["cache"]["stores"] == 0
        # cached artifacts regenerate identical outputs and stats
        assert a.with_suffix(".sat.c").read_text() == output_a
        for cold, warm in zip(first["files"], second["files"]):
            assert [k["optimized"] for k in cold["kernels"]] == [
                k["optimized"] for k in warm["kernels"]
            ]
            assert all(k["from_cache"] for k in warm["kernels"])
