"""Deadline degradation at the pipeline/session layer.

The degradation contract: a deadline that trips at iteration boundary k
(with anytime extraction holding a snapshot) produces an artifact
**byte-identical** to an iteration-limit/plateau stop at the same
boundary, flagged ``degraded=True`` — and a degraded artifact is never
stored in the session's shared cache.  With no snapshot to degrade to,
the pipeline raises :class:`DeadlineExceeded`; an explicit cancel raises
:class:`SaturationCancelled`.
"""

import dataclasses
import pickle

import pytest

from repro.egraph.runner import CancellationToken, RunnerLimits, StopReason
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.session import MemoryCache, OptimizationSession
from repro.session.stages import DeadlineExceeded, SaturationCancelled

#: Deep enough to saturate only after ~5 iterations, so boundaries 0-2
#: all trip the deadline before any natural stop can outrank it.
SOURCE = (
    "#pragma acc parallel loop\n"
    "for (i = 0; i < n; i++) { a[i] = (b[i] + c[i]) * (b[i] + c[i])"
    " + (c[i] + b[i]) * d[i] + b[i] * c[i] + d[i] * d[i]; }"
)

#: Anytime extraction every boundary, patience too high to plateau first.
CONFIG = SaturatorConfig(
    variant=Variant.CSE_SAT,
    limits=RunnerLimits(4000, 8, 60.0),
    anytime_extraction=True,
    anytime_interval=1,
    plateau_patience=50,
)


def _expiring_token(at_iteration: int) -> "tuple[CancellationToken, callable]":
    token = CancellationToken()

    def hook(row):
        if row.index == at_iteration:
            token.expire()

    return token, hook


class TestDegradedDeterminism:
    @pytest.mark.parametrize("boundary", [0, 1, 2])
    def test_deadline_artifact_equals_iter_limit_artifact(self, boundary):
        token, hook = _expiring_token(boundary)
        degraded = optimize_source(
            SOURCE, CONFIG, cancellation=token, on_iteration=hook
        )
        assert degraded.degraded
        report = degraded.kernels[0]
        assert report.degraded
        assert report.runner.stop_reason is StopReason.DEADLINE
        assert len(report.runner.iterations) == boundary + 1

        limited = optimize_source(
            SOURCE,
            dataclasses.replace(
                CONFIG, limits=RunnerLimits(4000, boundary + 1, 60.0)
            ),
        )
        assert not limited.degraded
        assert limited.code == degraded.code
        assert limited.kernels[0].extracted_cost == report.extracted_cost
        assert (
            limited.kernels[0].optimized.as_dict() == report.optimized.as_dict()
        )

    def test_degraded_flag_survives_report_serialization(self):
        token, hook = _expiring_token(0)
        result = optimize_source(
            SOURCE, CONFIG, cancellation=token, on_iteration=hook
        )
        blob = pickle.loads(pickle.dumps(result))
        assert blob.degraded and blob.kernels[0].degraded
        assert result.kernels[0].as_dict()["degraded"] is True


class TestDeadlineWithoutSnapshot:
    def test_pre_expired_token_raises_deadline_exceeded(self):
        # the token trips at the top of iteration 0, before any anytime
        # evaluation: nothing to degrade to
        token = CancellationToken()
        token.expire()
        with pytest.raises(DeadlineExceeded):
            optimize_source(SOURCE, CONFIG, cancellation=token)

    def test_no_anytime_extraction_means_no_degradation(self):
        config = dataclasses.replace(CONFIG, anytime_extraction=False)
        token, hook = _expiring_token(0)
        with pytest.raises(DeadlineExceeded):
            optimize_source(config=config, source=SOURCE,
                            cancellation=token, on_iteration=hook)

    def test_explicit_cancel_raises_saturation_cancelled(self):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(SaturationCancelled):
            optimize_source(SOURCE, CONFIG, cancellation=token)


class TestDegradedNeverCached:
    def test_session_skips_the_store_and_a_full_run_refills(self):
        session = OptimizationSession(config=CONFIG, cache=MemoryCache())
        token, hook = _expiring_token(0)
        degraded, from_cache = session.run_detailed(
            SOURCE, cancellation=token, on_iteration=hook
        )
        assert degraded.degraded and not from_cache
        assert session.cache.stats.stores == 0, "degraded artifacts must not be cached"

        # the unconstrained rerun is a cold run (no stale degraded hit),
        # lands in the cache, and beats-or-matches the degraded cost
        full, from_cache = session.run_detailed(SOURCE)
        assert not from_cache and not full.degraded
        assert session.cache.stats.stores == 1
        assert full.kernels[0].extracted_cost <= degraded.kernels[0].extracted_cost

        again, from_cache = session.run_detailed(SOURCE)
        assert from_cache
        assert again.code == full.code
