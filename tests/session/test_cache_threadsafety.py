"""Thread-safety of the memory cache tier and the CacheStats counters.

Coalescing accounting in the service depends on exact hit/miss/store
counts under concurrent access; before PR 5 the counters were bare ``+= 1``
increments, which drop updates under a thread pool.
"""

import pickle
import threading

from repro.session import CacheStats, MemoryCache, TieredCache
from repro.session.cache import MISS
from repro.session.fingerprint import CacheKey


def _key(index: int) -> CacheKey:
    return CacheKey(f"src{index}", "cfg", "stage", "")


def test_cache_stats_counters_are_exact_under_contention():
    stats = CacheStats()

    def hammer():
        for _ in range(5000):
            stats.hit()
            stats.miss()
            stats.store()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert stats.hits == 40000
    assert stats.misses == 40000
    assert stats.stores == 40000
    assert stats.lookups == 80000


def test_cache_stats_survive_pickle_and_deepcopy():
    import copy

    stats = CacheStats(3, 2, 1)
    clone = pickle.loads(pickle.dumps(stats))
    assert (clone.hits, clone.misses, clone.stores) == (3, 2, 1)
    clone.hit()  # the restored lock works
    assert clone.hits == 4
    deep = copy.deepcopy(stats)
    deep.miss()
    assert (stats.misses, deep.misses) == (2, 3)


def test_memory_cache_concurrent_get_put_accounting():
    cache = MemoryCache(max_entries=None)
    keys = [_key(i) for i in range(4)]
    for key in keys:
        cache.put(key, {"payload": key.source_fp})
    rounds = 2000
    workers = 8

    def hammer(worker: int):
        for i in range(rounds):
            key = keys[(worker + i) % len(keys)]
            value = cache.get(key)
            assert value is not MISS
            assert value["payload"] == key.source_fp
            cache.get(_key(99))  # guaranteed miss

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert cache.stats.hits == rounds * workers
    assert cache.stats.misses == rounds * workers
    assert cache.stats.stores == len(keys)


def test_tiered_cache_counters_are_exact_under_contention():
    tiered = TieredCache(memory=MemoryCache())
    key = _key(0)
    tiered.put(key, "artifact")

    def hammer():
        for _ in range(2000):
            assert tiered.get(key) == "artifact"
            assert tiered.get(_key(7)) is MISS

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert tiered.stats.hits == 12000
    assert tiered.stats.misses == 12000
    # the memory tier underneath counted the same traffic
    assert tiered.memory.stats.hits == 12000
