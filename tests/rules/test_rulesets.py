"""Tests for the rule sets (paper Table I)."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.language import num, op, sym
from repro.egraph.runner import Runner, RunnerLimits
from repro.rules import (
    RULE_TABLE,
    default_ruleset,
    extended_ruleset,
    fma_rules,
    ruleset_by_name,
)


def saturate(term, rules):
    eg = EGraph()
    root = eg.add_term(term)
    Runner(eg, rules, RunnerLimits(2000, 6, 5.0)).run()
    return eg, root


class TestTableI:
    def test_rule_table_has_nine_rows(self):
        assert len(RULE_TABLE) == 9
        assert [r.name for r in RULE_TABLE[:3]] == ["FMA1", "FMA2", "FMA3"]

    def test_default_ruleset_matches_table(self):
        names = {rule.name for rule in default_ruleset()}
        assert names == {
            "fma1", "fma2", "fma3",
            "comm-add", "comm-mul",
            "assoc-add1", "assoc-add2", "assoc-mul1", "assoc-mul2",
        }

    def test_fma1_a_plus_b_times_c(self):
        eg, root = saturate(op("+", sym("a"), op("*", sym("b"), sym("c"))), fma_rules())
        assert eg.lookup_term(op("fma", sym("a"), sym("b"), sym("c"))) == eg.find(root)

    def test_fma2_a_minus_b_times_c(self):
        eg, root = saturate(op("-", sym("a"), op("*", sym("b"), sym("c"))), fma_rules())
        expected = op("fma", sym("a"), op("neg", sym("b")), sym("c"))
        assert eg.lookup_term(expected) == eg.find(root)

    def test_fma3_b_times_c_minus_a(self):
        eg, root = saturate(op("-", op("*", sym("b"), sym("c")), sym("a")), fma_rules())
        expected = op("fma", op("neg", sym("a")), sym("b"), sym("c"))
        assert eg.lookup_term(expected) == eg.find(root)

    def test_commutativity_of_add_and_mul(self):
        eg, root = saturate(op("+", sym("a"), sym("b")), default_ruleset())
        assert eg.lookup_term(op("+", sym("b"), sym("a"))) == eg.find(root)
        eg, root = saturate(op("*", sym("a"), sym("b")), default_ruleset())
        assert eg.lookup_term(op("*", sym("b"), sym("a"))) == eg.find(root)

    def test_associativity_reorders_sums(self):
        eg, root = saturate(
            op("+", sym("a"), op("+", sym("b"), sym("c"))), default_ruleset()
        )
        assert eg.lookup_term(op("+", op("+", sym("a"), sym("b")), sym("c"))) == eg.find(root)

    def test_reassociation_exposes_common_subexpression(self):
        """(a + b) + c and a + (b + c) end up in the same class (paper §V-A)."""

        eg = EGraph()
        left = eg.add_term(op("+", op("+", sym("a"), sym("b")), sym("c")))
        right = eg.add_term(op("+", sym("a"), op("+", sym("b"), sym("c"))))
        Runner(eg, default_ruleset(), RunnerLimits(2000, 6, 5.0)).run()
        assert eg.is_equal(left, right)


class TestNamedRulesets:
    def test_lookup_by_name(self):
        assert len(ruleset_by_name("default")) == 9
        assert len(ruleset_by_name("fma-only")) == 3
        assert len(ruleset_by_name("reassoc-only")) == 6
        assert ruleset_by_name("none") == []
        assert len(ruleset_by_name("extended")) > 9

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            ruleset_by_name("does-not-exist")

    def test_extended_rules_fold_identities(self):
        eg, root = saturate(op("+", sym("x"), num(0)), extended_ruleset())
        assert eg.is_equal(root, eg.add_term(sym("x")))
