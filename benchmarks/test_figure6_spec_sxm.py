"""Figure 6 — SPEC ACCEL speedups on the A100-SXM4-80GB."""

from repro.experiments import figure6


def test_figure6_spec_sxm(benchmark, settings):
    results = benchmark(figure6.run, settings)
    print("\nFigure 6 — SPEC ACCEL speedups on A100-SXM4-80GB")
    print(figure6.format_report(results))
    summary = figure6.summarize(results)
    # overall ACCSAT averages stay >= 1 for the OpenACC compilers
    assert summary["nvhpc/acc"]["accsat"] >= 0.98
    assert summary["gcc/acc"]["accsat"] >= 1.1
    # bulk load remains the dominant contribution for GCC OpenACC
    assert summary["gcc/acc"]["cse+bulk"] >= summary["gcc/acc"]["cse+sat"]
