"""Micro-benchmarks of the pipeline stages themselves.

These are engineering benchmarks (not paper figures): they track the cost
of e-graph saturation, extraction and code generation on a representative
kernel so regressions in the reproduction's own performance are visible.
"""

from repro.benchsuite.npb.lu import LU_JACLD_SOURCE
from repro.cost import DEFAULT_COST_MODEL
from repro.egraph import EGraph, Runner, RunnerLimits, extract_best
from repro.egraph.language import op, sym
from repro.frontend import parse_statement
from repro.frontend.normalize import normalize_blocks
from repro.rules import constant_folding_analysis, default_ruleset
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.ssa import build_ssa


def test_bench_parse_and_ssa(benchmark):
    from repro.saturator import find_parallel_kernels

    def run():
        root = parse_statement(LU_JACLD_SOURCE)
        normalize_blocks(root)
        kernel = find_parallel_kernels(root)[0]
        return build_ssa(kernel.body)

    ssa = benchmark(run)
    assert ssa.num_assignments > 5


def test_bench_saturation_runner(benchmark):
    def build():
        eg = EGraph(constant_folding_analysis())
        term = sym("x0")
        for i in range(1, 7):
            term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
        root = eg.add_term(term)
        return eg, root

    def run():
        eg, root = build()
        Runner(eg, default_ruleset(), RunnerLimits(2000, 5, 5.0)).run()
        return eg, root

    eg, _ = benchmark(run)
    assert len(eg) > 10


def test_bench_rule_search(benchmark):
    """Micro-benchmark of the e-matching engine alone: search every rule of
    the default set against a saturated e-graph (no apply/rebuild)."""

    eg = EGraph(constant_folding_analysis())
    term = sym("x0")
    for i in range(1, 7):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(2000, 5, 5.0)).run()
    rules = default_ruleset()

    def run():
        return sum(len(rule.search(eg)) for rule in rules)

    total = benchmark(run)
    assert total > 100


def test_bench_extraction(benchmark):
    eg = EGraph(constant_folding_analysis())
    term = sym("x0")
    for i in range(1, 7):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    root = eg.add_term(term)
    Runner(eg, default_ruleset(), RunnerLimits(2000, 5, 5.0)).run()

    result = benchmark(extract_best, eg, [root], DEFAULT_COST_MODEL, "dag-greedy")
    assert result.dag_cost > 0


def test_bench_full_pipeline_accsat(benchmark):
    config = SaturatorConfig(variant=Variant.ACCSAT, limits=RunnerLimits(2000, 4, 5.0))
    result = benchmark(optimize_source, LU_JACLD_SOURCE, config)
    assert result.kernels[0].optimized.temporaries > 0
