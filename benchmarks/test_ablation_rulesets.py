"""Ablation — rule-set and extraction-method sensitivity (DESIGN.md §5).

Not a table in the paper, but it quantifies two design choices the paper
discusses: restricting the rule set to Table I (larger sets blow up the
e-graph, §V-A) and extracting with an exact ILP versus a greedy heuristic
(§IV-B).
"""

import pytest

from repro.benchsuite.npb.bt import BT_JACOBIAN_SOURCE
from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source

LIMITS = RunnerLimits(2000, 4, 5.0)


@pytest.mark.parametrize("ruleset", ["none", "fma-only", "reassoc-only", "default", "extended"])
def test_ablation_ruleset_size(benchmark, ruleset):
    config = SaturatorConfig(variant=Variant.CSE_SAT, ruleset=ruleset, limits=LIMITS)
    result = benchmark(optimize_source, BT_JACOBIAN_SOURCE, config)
    report = result.kernels[0]
    print(f"\nruleset={ruleset:13s} e-nodes={report.egraph_nodes:6d} "
          f"cost={report.extracted_cost:8.0f} instr={report.optimized.instructions}")
    assert report.egraph_nodes > 0


@pytest.mark.parametrize("extraction", ["tree", "dag-greedy", "ilp"])
def test_ablation_extraction_method(benchmark, extraction):
    source = """
#pragma acc parallel loop gang
for (i = 0; i < n; i++) {
#pragma acc loop vector
  for (j = 0; j < m; j++) {
    t1 = a[i][j] * b[i][j];
    c[i][j] = t1 + a[i][j] * d[i][j];
    e[i][j] = t1 - b[i][j] * d[i][j];
  }
}
"""
    config = SaturatorConfig(variant=Variant.ACCSAT, extraction=extraction, limits=LIMITS)
    result = benchmark(optimize_source, source, config)
    report = result.kernels[0]
    print(f"\nextraction={extraction:10s} cost={report.extracted_cost:8.0f} "
          f"time={report.extraction_time * 1e3:6.1f} ms")
    assert report.extracted_cost > 0
