"""Figure 2 — NPB speedups (CSE / CSE+SAT / CSE+BULK / ACCSAT) on the
A100-PCIE-40GB under NVHPC and GCC."""

from repro.experiments import figure2


def test_figure2_npb_speedups(benchmark, settings):
    results = benchmark(figure2.run, settings=settings)
    print("\nFigure 2 — NPB speedups on A100-PCIE-40GB")
    print(figure2.format_report(results))
    summary = figure2.summarize(results)

    by_name = {c.benchmark: c for c in results["nvhpc"]}
    gcc_by_name = {c.benchmark: c for c in results["gcc"]}

    # BT gains the most; GCC gains more than NVHPC (paper: 1.21x vs 2.20x)
    assert by_name["BT"].speedup("accsat") > 1.05
    assert gcc_by_name["BT"].speedup("accsat") > by_name["BT"].speedup("accsat")
    # the average ACCSAT speedup is >= 1 on both compilers (1.10x / 1.29x)
    assert summary["nvhpc"]["accsat"] >= 0.99
    assert summary["gcc"]["accsat"] >= 1.05
    # CSE and CSE+SAT hover around 1.0 (0.98x-1.03x in the paper)
    assert 0.9 < summary["nvhpc"]["cse"] < 1.2
