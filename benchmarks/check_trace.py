#!/usr/bin/env python
"""Validate a trace written by ``accsat --trace`` / ``accsat serve --trace``.

Checks the JSONL span/event log against the well-formedness contract of
:mod:`repro.obs.check` — monotone sequence numbers, every started span
ends exactly once, children nest inside their parents, job spans reach
exactly one terminal state — and checks that the companion Chrome
trace-event file parses as JSON with the required event fields.

Usage::

    python benchmarks/check_trace.py TRACE.jsonl [--chrome CHROME.json]

When ``--chrome`` is omitted the companion path is derived the same way
the exporter derives it (``out.json`` -> ``out.chrome.json``).  Exits
non-zero, listing every violation, if either file fails validation.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs import (
    chrome_path_for,
    load_jsonl,
    validate_chrome_file,
    validate_trace_records,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file to validate")
    parser.add_argument(
        "--chrome", default=None,
        help="companion Chrome trace-event file "
             "(default: derived from the trace path)",
    )
    parser.add_argument(
        "--min-spans", type=int, default=1,
        help="fail unless the trace contains at least this many spans "
             "(default 1; guards against a silently empty trace)",
    )
    args = parser.parse_args(argv)

    failures = []
    try:
        meta, records = load_jsonl(args.trace)
    except ValueError as exc:
        print(f"FAIL {args.trace}: {exc}")
        return 1
    failures.extend(
        f"{args.trace}: {error}" for error in validate_trace_records(records)
    )
    spans = sum(1 for record in records if record.get("type") == "start")
    if spans < args.min_spans:
        failures.append(
            f"{args.trace}: only {spans} span(s), expected >= {args.min_spans}"
        )

    chrome = args.chrome or chrome_path_for(args.trace)
    if os.path.exists(chrome):
        failures.extend(f"{chrome}: {error}" for error in validate_chrome_file(chrome))
    else:
        failures.append(f"{chrome}: missing companion Chrome trace file")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
        return 1
    events = sum(1 for record in records if record.get("type") == "event")
    print(
        f"OK {args.trace}: {spans} spans, {events} events, "
        f"schema={meta.get('schema')!r}; chrome file valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
