#!/usr/bin/env python
"""Guard saturation outcomes against silent drift.

Compares the outcome records of a freshly produced ``BENCH_engine.json``
against the committed one.  Timings are machine-dependent and never
compared; the outcome records (stop reason, e-node and e-class counts,
and — for the PR-4 scheduling cases — iteration counts, extracted costs
and the per-iteration trajectories) are pure functions of (source,
config) — the determinism contract of ``tests/egraph/test_determinism.py``
— so any deviation means a change to the engine altered saturation
results, which must be an explicit, committed decision rather than a
side effect.

``pipeline_outcome`` and ``saturation_large_outcome`` are produced under
the **default** configuration (``SimpleScheduler``, anytime extraction
off): their match is the CI assertion that the default scheduler still
reproduces the committed outcomes exactly.  ``saturation_backoff_outcome``
and ``pipeline_anytime_outcome`` guard the backoff and anytime paths the
same way.

Usage::

    python benchmarks/check_bench_outcome.py FRESH.json [COMMITTED.json]

Exits non-zero (listing every mismatch) when the outcomes deviate.
"""

from __future__ import annotations

import json
import os
import sys

_OUTCOME_KEYS = (
    # default configuration — SimpleScheduler, anytime off
    "pipeline_outcome",
    "saturation_large_outcome",
    # adaptive scheduling (PR 4)
    "saturation_backoff_outcome",
    "pipeline_anytime_outcome",
)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or len(argv) > 2:
        print(__doc__)
        return 2
    fresh_path = argv[0]
    committed_path = (
        argv[1]
        if len(argv) == 2
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_engine.json",
        )
    )
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    with open(committed_path) as fh:
        committed = json.load(fh)

    failures = []
    for key in _OUTCOME_KEYS:
        expected = committed.get(key)
        actual = fresh.get(key)
        if expected is None:
            failures.append(f"{key}: missing from committed {committed_path}")
        elif actual != expected:
            failures.append(f"{key}: fresh={actual!r} != committed={expected!r}")

    if failures:
        print("saturation outcome drift detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    outcomes = {key: fresh[key] for key in _OUTCOME_KEYS}
    print(f"outcomes match the committed BENCH_engine.json: {outcomes}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
