#!/usr/bin/env python
"""Guard saturation outcomes against silent drift.

Compares the outcome records of a freshly produced ``BENCH_engine.json``
against the committed one.  Timings are machine-dependent and never
compared; the outcome records (stop reason, e-node and e-class counts,
and — for the PR-4 scheduling cases — iteration counts, extracted costs
and the per-iteration trajectories) are pure functions of (source,
config) — the determinism contract of ``tests/egraph/test_determinism.py``
— so any deviation means a change to the engine altered saturation
results, which must be an explicit, committed decision rather than a
side effect.

``pipeline_outcome`` and ``saturation_large_outcome`` are produced under
the **default** configuration (``SimpleScheduler``, anytime extraction
off): their match is the CI assertion that the default scheduler still
reproduces the committed outcomes exactly.  ``saturation_backoff_outcome``
and ``pipeline_anytime_outcome`` guard the backoff and anytime paths the
same way.

``--service`` switches to guarding ``BENCH_service.json`` instead: the
fresh run's correctness checks must all pass, the committed file's must
too (a regeneration that failed its own checks cannot slip in), the
no-fault outcome invariants must hold (one pipeline run per distinct
kernel, a follow-up cache hit per kernel), and — when the fresh and
committed runs share the same parameters — the default (no-fault)
outcome figures and the deterministic ``faults``- and
``worker_faults``-wave records must match the committed ones exactly
(timings and the worker count excluded: the worker-death wave's record
is worker-count independent by construction).

Usage::

    python benchmarks/check_bench_outcome.py FRESH.json [COMMITTED.json]
    python benchmarks/check_bench_outcome.py --service FRESH.json [COMMITTED.json]

Exits non-zero (listing every mismatch) when the outcomes deviate.
"""

from __future__ import annotations

import json
import os
import sys

_OUTCOME_KEYS = (
    # default configuration — SimpleScheduler, anytime off
    "pipeline_outcome",
    "saturation_large_outcome",
    # adaptive scheduling (PR 4)
    "saturation_backoff_outcome",
    "pipeline_anytime_outcome",
    # steady-state confirmation sweep (PR 9) — the batched-apply /
    # delta-join workload; its outcome is a pure function of (source,
    # config) like every record above, whichever engine serves it
    "saturation_steady_outcome",
)


#: Timing-free keys of the service bench's ``faults`` record — a pure
#: function of (request mix, seed), so fresh must equal committed when the
#: parameters match.
_FAULT_WAVE_KEYS = (
    "seed",
    "requests",
    "admitted",
    "rejected_at_submit",
    "outcomes",
    "degraded",
    "retried",
    "recovered",
    "shed",
    "expired",
    "injected",
    "all_terminal",
    "stats",
)

#: Timing- and worker-count-free keys of the ``worker_faults`` (worker
#: death) record — deterministic per seed under any pool size.
_DEATH_WAVE_KEYS = (
    "seed",
    "requests",
    "outcomes",
    "worker_deaths",
    "worker_respawns",
    "retried",
    "recovered",
    "injected",
    "all_terminal",
    "conserved",
    "stats",
)


def _check_service(fresh, committed, committed_path) -> list:
    """Failures of the service-bench outcome guard (see the docstring)."""

    failures = []
    for label, payload in (("fresh", fresh), ("committed", committed)):
        checks = payload.get("checks", {})
        for name in ("all_terminal", "coalesced_results_identical",
                     "matches_solo_run"):
            if checks.get(name) is not True:
                failures.append(f"{label} checks.{name} is not true")
    coalescing = fresh.get("coalescing", {})
    kernels = fresh.get("params", {}).get("kernels")
    if coalescing.get("pipeline_runs") != kernels:
        failures.append(
            f"coalescing.pipeline_runs={coalescing.get('pipeline_runs')!r} "
            f"!= params.kernels={kernels!r} (one cold run per distinct kernel)"
        )
    if coalescing.get("followup_cache_hits") != kernels:
        failures.append(
            f"coalescing.followup_cache_hits={coalescing.get('followup_cache_hits')!r} "
            f"!= params.kernels={kernels!r}"
        )

    if fresh.get("params") == committed.get("params"):
        # identical workload: the deterministic figures must reproduce
        for key in ("pipeline_runs", "coalesced", "followup_cache_hits"):
            expected = committed.get("coalescing", {}).get(key)
            actual = coalescing.get(key)
            if actual != expected:
                failures.append(
                    f"coalescing.{key}: fresh={actual!r} != committed={expected!r}"
                )
        if "faults" in fresh and "faults" in committed:
            for key in _FAULT_WAVE_KEYS:
                expected = committed["faults"].get(key)
                actual = fresh["faults"].get(key)
                if actual != expected:
                    failures.append(
                        f"faults.{key}: fresh={actual!r} != committed={expected!r}"
                    )
        if "worker_faults" in fresh and "worker_faults" in committed:
            for key in _DEATH_WAVE_KEYS:
                expected = committed["worker_faults"].get(key)
                actual = fresh["worker_faults"].get(key)
                if actual != expected:
                    failures.append(
                        f"worker_faults.{key}: fresh={actual!r} "
                        f"!= committed={expected!r}"
                    )
    elif "faults" in committed:
        # different scale: still guard that the committed wave terminated
        # and actually exercised the retry/degradation paths
        wave = committed["faults"]
        if wave.get("all_terminal") is not True:
            failures.append(f"committed faults wave in {committed_path} is not all-terminal")
        if not wave.get("retried") or not wave.get("degraded"):
            failures.append(
                f"committed faults wave in {committed_path} has zero "
                "retried/degraded counts"
            )
        deaths = committed.get("worker_faults")
        if deaths is not None:
            if deaths.get("all_terminal") is not True or deaths.get("conserved") is not True:
                failures.append(
                    f"committed worker-death wave in {committed_path} is not "
                    "all-terminal/conserved"
                )
            if not deaths.get("worker_deaths") or not deaths.get("recovered"):
                failures.append(
                    f"committed worker-death wave in {committed_path} has zero "
                    "worker_deaths/recovered counts"
                )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    service_mode = "--service" in argv
    argv = [item for item in argv if item != "--service"]
    if not argv or len(argv) > 2:
        print(__doc__)
        return 2
    fresh_path = argv[0]
    committed_path = (
        argv[1]
        if len(argv) == 2
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "BENCH_service.json" if service_mode else "BENCH_engine.json",
        )
    )
    with open(fresh_path) as fh:
        fresh = json.load(fh)
    with open(committed_path) as fh:
        committed = json.load(fh)

    if service_mode:
        failures = _check_service(fresh, committed, committed_path)
        if failures:
            print("service outcome drift detected:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"service outcomes consistent with the committed {committed_path}")
        return 0

    failures = []
    for key in _OUTCOME_KEYS:
        expected = committed.get(key)
        actual = fresh.get(key)
        if expected is None:
            failures.append(f"{key}: missing from committed {committed_path}")
        elif actual != expected:
            failures.append(f"{key}: fresh={actual!r} != committed={expected!r}")

    # the observational-telemetry contract (PR 10): the *traced* runs'
    # outcome records must equal the committed *untraced* ones — a tracer
    # may cost wall clock but can never change what the engine computes
    overhead = fresh.get("telemetry_overhead")
    if overhead is not None:
        for traced_key, untraced_key in (
            ("traced_outcome", "saturation_outcome"),
            ("traced_pipeline_outcome", "pipeline_outcome"),
        ):
            expected = committed.get(untraced_key)
            actual = overhead.get(traced_key)
            if expected is None:
                failures.append(
                    f"{untraced_key}: missing from committed {committed_path}"
                )
            elif actual != expected:
                failures.append(
                    f"telemetry_overhead.{traced_key}: traced={actual!r} "
                    f"!= committed untraced {untraced_key}={expected!r}"
                )

    if failures:
        print("saturation outcome drift detected:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    outcomes = {key: fresh[key] for key in _OUTCOME_KEYS}
    print(f"outcomes match the committed BENCH_engine.json: {outcomes}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
