#!/usr/bin/env python
"""Synthetic load generator for the optimization service: BENCH_service.json.

Drives an :class:`~repro.service.OptimizationService` with a
duplicate-heavy request mix — by default 200 requests spread over ~20
distinct benchmark kernels, submitted in bursts so identical requests are
in flight together (the trending-kernel traffic shape coalescing exists
for) — and records:

* **throughput** (requests/s) and **p50/p95 latency** (submit → terminal),
* the **coalesce rate** (submissions attached to an in-flight job) and the
  **cache-hit rate** of a follow-up wave re-requesting every kernel,
* the same run with coalescing disabled (the baseline: every submission
  enqueues its own job, duplicates popped concurrently each run the cold
  pipeline), and the resulting **coalescing speedup**,
* a **correctness audit**: every coalesced result must be byte-identical
  (pickle) to the artifact of the job it attached to, and every job's
  generated code must equal a solo ``optimize_source`` run of the same
  (source, config).

``--faults`` appends a deterministic **chaos wave**: the same request mix
with coalescing off, unique per-request names, a bounded queue under the
shed policy, and a seeded :class:`~repro.service.FaultPlan` injecting
transient faults (exercising retry + recovery), mid-run deadlines
(exercising graceful degradation), and permanent faults (failure
isolation).  The wave's outcome and stats records are pure functions of
the seed — the ``faults`` section of ``BENCH_service.json`` — and
``--check`` replays the wave to assert exactly that, plus nonzero
retried/degraded counts and universal termination.

``--faults`` also appends a **worker-death wave** (PR 8): the mix served
by the ``process`` executor while a seeded plan hard-kills workers
mid-job (``worker:crash``) and drops finished results in IPC
(``ipc:result-drop``).  Both kinds are consumed at dispatch/result
receipt — points synchronous with the job's own attempt sequence — so
the kill pattern, recovery counts, and final stats are pure functions of
the seed, *independent of the worker count*; ``--check`` replays the
wave with a different number of workers and asserts the records match
bit-for-bit (timings excluded), that every orphan recovered, and that
the conservation law ``submitted == completed + failed + cancelled``
held through the carnage.

The payload's ``executors`` section compares the ``thread`` and
``process`` backends at the standard bursty load (throughput, p50/p95).

``--check`` turns the invariants into hard assertions (exit 1 on
violation) — CI runs the generator at small scale in that mode to prove
the service terminates every job and actually coalesces under load.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py [-o OUT]
        [--requests N] [--kernels K] [--workers W] [--check]
        [--faults] [--fault-seed S]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import statistics
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.egraph.runner import RunnerLimits
from repro.experiments.common import pipeline_workload
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import (
    FaultPlan,
    FaultRule,
    JobState,
    OptimizationService,
    ServiceOverloadedError,
)
from repro.session import MemoryCache

# Generous wall-clock limit (the node/iteration limits bind first), so the
# produced artifacts are pure functions of (source, config) — which is what
# makes the byte-identity audit meaningful on a noisy machine.
_TIME_LIMIT = 300.0


def _service_config(node_limit: int, iter_limit: int) -> SaturatorConfig:
    """The per-job pipeline config: saturating, with anytime extraction on
    so jobs stream per-iteration extracted-cost snapshots."""

    return SaturatorConfig(
        variant=Variant.CSE_SAT,
        limits=RunnerLimits(node_limit, iter_limit, _TIME_LIMIT),
        anytime_extraction=True,
        plateau_patience=2,
    )


def _kernel_pool(count: int) -> list:
    """Up to *count* distinct kernel sources from the benchmark suites."""

    sources = []
    seen = set()
    for source, _config, name in pipeline_workload():
        if source in seen:
            continue
        seen.add(source)
        sources.append((name, source))
        if len(sources) >= count:
            break
    return sources


def _request_mix(kernels: list, requests: int) -> list:
    """A bursty, duplicate-heavy request order (deterministic).

    Requests for one kernel arrive back to back — the worst case for a
    cache-only service (duplicates are popped while their twin is still
    running) and exactly the case in-flight coalescing collapses.
    """

    mix = []
    for index in range(requests):
        mix.append(kernels[index * len(kernels) // requests])
    return mix


def _percentiles(values: list) -> tuple:
    """(p50, p95) of *values*, interpolated like standard latency tooling."""

    if not values:
        return 0.0, 0.0
    if len(values) == 1:
        return values[0], values[0]
    cuts = statistics.quantiles(values, n=20, method="inclusive")
    return cuts[9], cuts[18]


def _drive(mix, config, workers, coalesce, executor="thread", tracer=None):
    """Submit the whole mix, start the workers, drain; return the record."""

    service = OptimizationService(
        config=config, cache=MemoryCache(), workers=workers, coalesce=coalesce,
        executor=executor, tracer=tracer,
    )
    t0 = time.perf_counter()
    handles = [
        service.submit(source, priority=0, name_prefix=name)
        for name, source in mix
    ]
    service.start()
    service.join()
    elapsed = time.perf_counter() - t0

    latencies = [h.latency for h in handles if h.latency is not None]
    p50, p95 = _percentiles(latencies)
    stats = service.stats.snapshot()
    record = {
        "coalesce": coalesce,
        "executor": executor,
        "requests": len(handles),
        "wall_seconds": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else float("inf"),
        "latency_p50_s": p50,
        "latency_p95_s": p95,
        "pipeline_runs": stats["pipeline_runs"],
        "coalesced": stats["coalesced"],
        "coalesce_rate": stats["coalesced"] / max(1, stats["submitted"]),
        "cache_hits": stats["cache_hits"],
        "stats": stats,
    }
    return service, handles, record


def _fault_plan(seed):
    """The chaos wave's injection plan (see the module docstring).

    Every job's first cache probe faults transiently — each admitted job
    retries exactly once and (absent other faults) recovers; seeded
    per-job coins degrade some jobs via a mid-run deadline and kill a few
    permanently at pickup.
    """

    return FaultPlan(
        [
            FaultRule("cache:get", "transient", nth=1),
            FaultRule("progress:publish", "deadline", probability=0.2),
            FaultRule("worker:pickup", "permanent", probability=0.08),
        ],
        seed=seed,
    )


def _drive_faults(mix, config, workers, seed):
    """One deterministic chaos wave; returns its (reproducible) record.

    Coalescing is off and every request carries a unique name prefix, so
    each submission is its own job with its own cache key — which is what
    keys the plan's per-job fault streams and makes the wave's outcome
    independent of worker interleaving.  Submission happens before the
    workers start (single-threaded), so the bounded queue's shed/reject
    decisions are deterministic too.
    """

    plan = _fault_plan(seed)
    service = OptimizationService(
        config=config,
        cache=MemoryCache(),
        workers=workers,
        coalesce=False,
        faults=plan,
        max_queue=max(2, len(mix) // 2),
        overload_policy="shed-oldest-lowest-priority",
        retry_backoff=0.001,
        retry_backoff_cap=0.002,
    )
    handles = []
    rejected_at_submit = 0
    for index, (name, source) in enumerate(mix):
        try:
            handles.append(
                service.submit(
                    source,
                    priority=index % 3,
                    name_prefix=f"{name}-{index:04d}",
                )
            )
        except ServiceOverloadedError:
            rejected_at_submit += 1
    t0 = time.perf_counter()
    service.start()
    service.join()
    elapsed = time.perf_counter() - t0
    service.stop()

    outcomes = [handle.state.value for handle in handles]
    stats = service.stats.snapshot()
    record = {
        "seed": seed,
        "requests": len(mix),
        "admitted": len(handles),
        "rejected_at_submit": rejected_at_submit,
        "outcomes": {state: outcomes.count(state) for state in sorted(set(outcomes))},
        "degraded": stats["degraded"],
        "retried": stats["retried"],
        "recovered": stats["recovered"],
        "shed": stats["shed"],
        "expired": stats["expired"],
        "injected": plan.injected(),
        "all_terminal": all(handle.done() for handle in handles),
        "stats": stats,
    }
    return record, elapsed


def _worker_death_plan(seed):
    """The worker-death wave's plan: only **dispatch/result-synchronous**
    kinds, so the kill pattern is a function of each job's own attempt
    sequence and replays identically under any worker count.

    A seeded per-job coin hard-kills ~1 in 5 attempts after one published
    iteration (``worker:crash``); another drops ~1 in 10 finished results
    on the way back (``ipc:result-drop``).  Both route the orphan through
    the standard retry path.
    """

    return FaultPlan(
        [
            FaultRule("worker:crash", "crash", probability=0.2, after=1),
            FaultRule("ipc:result-drop", "drop", probability=0.1),
        ],
        seed=seed,
    )


def _drive_worker_deaths(mix, config, workers, seed):
    """One deterministic worker-death wave on the ``process`` executor.

    Coalescing off + unique per-request names (as in ``_drive_faults``)
    key the per-job fault streams; the queue is unbounded so every
    request is admitted and the outcome set is exactly the per-job fault
    verdicts.  Returns the (replayable) record and the wall time.
    """

    plan = _worker_death_plan(seed)
    service = OptimizationService(
        config=config,
        cache=MemoryCache(),
        workers=workers,
        coalesce=False,
        faults=plan,
        executor="process",
        retry_backoff=0.001,
        retry_backoff_cap=0.002,
    )
    handles = [
        service.submit(source, priority=index % 3, name_prefix=f"{name}-{index:04d}")
        for index, (name, source) in enumerate(mix)
    ]
    t0 = time.perf_counter()
    service.start()
    service.join()
    elapsed = time.perf_counter() - t0
    service.stop()

    outcomes = [handle.state.value for handle in handles]
    stats = service.stats.snapshot()
    record = {
        "seed": seed,
        "requests": len(mix),
        "outcomes": {state: outcomes.count(state) for state in sorted(set(outcomes))},
        "worker_deaths": stats["worker_deaths"],
        "worker_respawns": stats["worker_respawns"],
        "retried": stats["retried"],
        "recovered": stats["recovered"],
        "injected": plan.injected(),
        "all_terminal": all(handle.done() for handle in handles),
        "conserved": stats["submitted"]
        == stats["completed"] + stats["failed"] + stats["cancelled"],
        "stats": stats,
    }
    return record, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                             "BENCH_service.json"),
        help="output JSON path (default: repo-root BENCH_service.json)",
    )
    parser.add_argument("--requests", type=int, default=200,
                        help="requests in the main wave (default 200)")
    parser.add_argument("--kernels", type=int, default=20,
                        help="distinct kernels in the mix (default 20)")
    parser.add_argument("--workers", type=int, default=8,
                        help="service worker threads (default 8)")
    parser.add_argument("--node-limit", type=int, default=1000,
                        help="per-job saturation node limit (default 1000)")
    parser.add_argument("--iter-limit", type=int, default=3,
                        help="per-job saturation iteration limit (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="assert the service invariants (CI smoke mode)")
    parser.add_argument("--faults", action="store_true",
                        help="append the deterministic fault-injection wave "
                             "(the 'faults' section of the output)")
    parser.add_argument("--fault-seed", type=int, default=1234,
                        help="seed of the fault wave's FaultPlan (default 1234)")
    parser.add_argument("--trace",
                        help="trace the main coalescing wave: write the JSONL "
                             "span/event log to FILE plus a Chrome trace-event "
                             "file next to it (observational only)")
    args = parser.parse_args(argv)
    if args.requests < args.kernels or args.kernels < 1:
        parser.error("--requests must be >= --kernels >= 1")

    config = _service_config(args.node_limit, args.iter_limit)
    kernels = _kernel_pool(args.kernels)
    mix = _request_mix(kernels, args.requests)

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()

    # -- main wave, coalescing on -----------------------------------------
    service, handles, coalesced_record = _drive(
        mix, config, args.workers, coalesce=True, tracer=tracer
    )

    # -- follow-up wave: every kernel again -> plain cache hits ------------
    followup = [service.submit(source, priority=0, name_prefix=name)
                for name, source in kernels]
    service.start()
    service.join()
    followup_hits = sum(1 for h in followup if h.from_cache)
    coalesced_record["followup_cache_hits"] = followup_hits
    coalesced_record["stats"] = service.stats.snapshot()
    service.stop()
    if tracer is not None:
        from repro.obs import write_trace_files

        jsonl_path, chrome_path = write_trace_files(
            tracer.records(), args.trace,
            meta={"mode": "service-bench", "requests": args.requests,
                  "workers": args.workers},
        )
        print(f"trace -> {jsonl_path} (+ {chrome_path})")

    # -- correctness audit -------------------------------------------------
    # (a) each coalesced handle's result is byte-identical to the artifact
    #     of the job it attached to
    identical = True
    by_job = {}
    for handle in handles:
        by_job.setdefault(id(handle._job), []).append(handle)
    for group in by_job.values():
        blobs = {pickle.dumps(h.result().kernels) for h in group}
        if len(blobs) != 1:
            identical = False
    # (b) each job's generated code equals a solo run of (source, config)
    solo_matches = True
    solo_costs = {}
    for name, source in kernels:
        solo = optimize_source(source, config, name)
        solo_costs[name] = [k.extracted_cost for k in solo.kernels]
        served = next(h for h in handles if h.request.name_prefix == name)
        if served.result().code != solo.code:
            solo_matches = False

    # -- baseline: coalescing off ------------------------------------------
    baseline_service, baseline_handles, baseline_record = _drive(
        mix, config, args.workers, coalesce=False
    )
    baseline_service.stop()

    speedup = (
        baseline_record["wall_seconds"] / coalesced_record["wall_seconds"]
        if coalesced_record["wall_seconds"] > 0 else float("inf")
    )

    # -- executor comparison: thread vs supervised processes ---------------
    process_service, process_handles, process_record = _drive(
        mix, config, args.workers, coalesce=True, executor="process"
    )
    process_service.stop()

    def _executor_summary(record):
        return {
            key: record[key]
            for key in ("wall_seconds", "throughput_rps", "latency_p50_s",
                        "latency_p95_s", "pipeline_runs", "coalesced")
        }

    executors = {
        "thread": _executor_summary(coalesced_record),
        "process": _executor_summary(process_record),
    }

    # -- chaos wave: deterministic fault injection -------------------------
    faults_record = None
    faults_replay = None
    deaths_record = None
    deaths_replay = None
    if args.faults:
        faults_record, faults_elapsed = _drive_faults(
            mix, config, args.workers, args.fault_seed
        )
        faults_record["wall_seconds"] = faults_elapsed
        deaths_record, deaths_elapsed = _drive_worker_deaths(
            mix, config, args.workers, args.fault_seed
        )
        deaths_record["workers"] = args.workers
        deaths_record["wall_seconds"] = deaths_elapsed
        if args.check:
            # replay the identical wave: everything but the wall clock must
            # reproduce bit-for-bit (the determinism contract of FaultPlan)
            faults_replay, _ = _drive_faults(
                mix, config, args.workers, args.fault_seed
            )
            # the worker-death wave must replay identically under a
            # *different* worker count: the kill pattern is per-job, not
            # per-worker
            alt_workers = max(1, args.workers // 2)
            if alt_workers == args.workers:
                alt_workers = args.workers + 1
            deaths_replay, _ = _drive_worker_deaths(
                mix, config, alt_workers, args.fault_seed
            )

    payload = {
        "schema": "repro-service-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "params": {
            "requests": args.requests,
            "kernels": len(kernels),
            "workers": args.workers,
            "node_limit": args.node_limit,
            "iter_limit": args.iter_limit,
        },
        "coalescing": coalesced_record,
        "no_coalescing_baseline": baseline_record,
        "speedup_coalescing": speedup,
        "executors": executors,
        "checks": {
            "all_terminal": all(h.done() for h in handles + followup),
            "coalesced_results_identical": identical,
            "matches_solo_run": solo_matches,
            "process_all_terminal": all(h.done() for h in process_handles),
            "process_matches_thread": [
                h.result().code for h in process_handles
            ] == [h.result().code for h in handles],
        },
    }
    if faults_record is not None:
        payload["faults"] = faults_record
    if deaths_record is not None:
        payload["worker_faults"] = deaths_record

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    print(
        f"  coalescing : {coalesced_record['throughput_rps']:8.1f} req/s "
        f"(p50 {1e3 * coalesced_record['latency_p50_s']:.0f} ms, "
        f"p95 {1e3 * coalesced_record['latency_p95_s']:.0f} ms, "
        f"{coalesced_record['pipeline_runs']} pipeline runs)"
    )
    print(
        f"  baseline   : {baseline_record['throughput_rps']:8.1f} req/s "
        f"({baseline_record['pipeline_runs']} pipeline runs)"
    )
    print(f"  speedup    : {speedup:8.2f}x   "
          f"coalesce rate {100 * coalesced_record['coalesce_rate']:.0f}%   "
          f"follow-up cache hits {followup_hits}/{len(kernels)}")
    print(
        f"  processes  : {process_record['throughput_rps']:8.1f} req/s "
        f"(p50 {1e3 * process_record['latency_p50_s']:.0f} ms, "
        f"p95 {1e3 * process_record['latency_p95_s']:.0f} ms, "
        f"{process_record['pipeline_runs']} pipeline runs)"
    )
    if faults_record is not None:
        print(
            f"  faults     : {faults_record['admitted']}/{faults_record['requests']} admitted, "
            f"outcomes {faults_record['outcomes']}, "
            f"retried {faults_record['retried']} recovered {faults_record['recovered']} "
            f"degraded {faults_record['degraded']} shed {faults_record['shed']}"
        )
    if deaths_record is not None:
        print(
            f"  deaths     : outcomes {deaths_record['outcomes']}, "
            f"worker deaths {deaths_record['worker_deaths']} "
            f"respawns {deaths_record['worker_respawns']}, "
            f"retried {deaths_record['retried']} recovered {deaths_record['recovered']}"
        )

    if args.check:
        failures = []
        if not payload["checks"]["all_terminal"]:
            failures.append("not every job reached a terminal state")
        if coalesced_record["coalesced"] == 0:
            failures.append("no submissions were coalesced")
        if followup_hits == 0:
            failures.append("follow-up wave produced no cache hits")
        if not identical:
            failures.append("coalesced results were not byte-identical")
        if not solo_matches:
            failures.append("served code deviates from a solo run")
        if coalesced_record["pipeline_runs"] > len(kernels):
            failures.append(
                f"coalescing ran {coalesced_record['pipeline_runs']} pipelines "
                f"for {len(kernels)} distinct kernels"
            )
        if not payload["checks"]["process_all_terminal"]:
            failures.append("process-executor wave left a job non-terminal")
        if not payload["checks"]["process_matches_thread"]:
            failures.append(
                "process-executor artifacts deviate from the thread wave"
            )
        if faults_record is not None:
            if not faults_record["all_terminal"]:
                failures.append("fault wave left a job non-terminal")
            if faults_record["retried"] == 0:
                failures.append("fault wave injected no transient retries")
            if faults_record["recovered"] == 0:
                failures.append("fault wave produced no retry recoveries")
            if faults_record["degraded"] == 0:
                failures.append("fault wave produced no degraded results")
            replay = dict(faults_replay)
            wave = {k: v for k, v in faults_record.items() if k != "wall_seconds"}
            if replay != wave:
                failures.append(
                    "fault wave is not deterministic: replay deviates "
                    f"(fresh={wave!r} replay={replay!r})"
                )
        if deaths_record is not None:
            if not deaths_record["all_terminal"]:
                failures.append("worker-death wave left a job non-terminal")
            if not deaths_record["conserved"]:
                failures.append(
                    "worker-death wave broke the conservation law "
                    f"(stats={deaths_record['stats']!r})"
                )
            if deaths_record["worker_deaths"] == 0:
                failures.append("worker-death wave killed no workers")
            if deaths_record["recovered"] == 0:
                failures.append("worker-death wave produced no recoveries")
            replay = {
                k: v for k, v in (deaths_replay or {}).items()
                if k not in ("wall_seconds", "workers")
            }
            wave = {
                k: v for k, v in deaths_record.items()
                if k not in ("wall_seconds", "workers")
            }
            if replay != wave:
                failures.append(
                    "worker-death wave is worker-count dependent: replay "
                    f"under a different pool size deviates "
                    f"(fresh={wave!r} replay={replay!r})"
                )
        if failures:
            print("service bench check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("service bench checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
