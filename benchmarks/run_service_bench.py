#!/usr/bin/env python
"""Synthetic load generator for the optimization service: BENCH_service.json.

Drives an :class:`~repro.service.OptimizationService` with a
duplicate-heavy request mix — by default 200 requests spread over ~20
distinct benchmark kernels, submitted in bursts so identical requests are
in flight together (the trending-kernel traffic shape coalescing exists
for) — and records:

* **throughput** (requests/s) and **p50/p95 latency** (submit → terminal),
* the **coalesce rate** (submissions attached to an in-flight job) and the
  **cache-hit rate** of a follow-up wave re-requesting every kernel,
* the same run with coalescing disabled (the baseline: every submission
  enqueues its own job, duplicates popped concurrently each run the cold
  pipeline), and the resulting **coalescing speedup**,
* a **correctness audit**: every coalesced result must be byte-identical
  (pickle) to the artifact of the job it attached to, and every job's
  generated code must equal a solo ``optimize_source`` run of the same
  (source, config).

``--check`` turns the invariants into hard assertions (exit 1 on
violation) — CI runs the generator at small scale in that mode to prove
the service terminates every job and actually coalesces under load.

Usage::

    PYTHONPATH=src python benchmarks/run_service_bench.py [-o OUT]
        [--requests N] [--kernels K] [--workers W] [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import statistics
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.egraph.runner import RunnerLimits
from repro.experiments.common import pipeline_workload
from repro.saturator import SaturatorConfig, Variant, optimize_source
from repro.service import JobState, OptimizationService
from repro.session import MemoryCache

# Generous wall-clock limit (the node/iteration limits bind first), so the
# produced artifacts are pure functions of (source, config) — which is what
# makes the byte-identity audit meaningful on a noisy machine.
_TIME_LIMIT = 300.0


def _service_config(node_limit: int, iter_limit: int) -> SaturatorConfig:
    """The per-job pipeline config: saturating, with anytime extraction on
    so jobs stream per-iteration extracted-cost snapshots."""

    return SaturatorConfig(
        variant=Variant.CSE_SAT,
        limits=RunnerLimits(node_limit, iter_limit, _TIME_LIMIT),
        anytime_extraction=True,
        plateau_patience=2,
    )


def _kernel_pool(count: int) -> list:
    """Up to *count* distinct kernel sources from the benchmark suites."""

    sources = []
    seen = set()
    for source, _config, name in pipeline_workload():
        if source in seen:
            continue
        seen.add(source)
        sources.append((name, source))
        if len(sources) >= count:
            break
    return sources


def _request_mix(kernels: list, requests: int) -> list:
    """A bursty, duplicate-heavy request order (deterministic).

    Requests for one kernel arrive back to back — the worst case for a
    cache-only service (duplicates are popped while their twin is still
    running) and exactly the case in-flight coalescing collapses.
    """

    mix = []
    for index in range(requests):
        mix.append(kernels[index * len(kernels) // requests])
    return mix


def _percentiles(values: list) -> tuple:
    """(p50, p95) of *values*, interpolated like standard latency tooling."""

    if not values:
        return 0.0, 0.0
    if len(values) == 1:
        return values[0], values[0]
    cuts = statistics.quantiles(values, n=20, method="inclusive")
    return cuts[9], cuts[18]


def _drive(mix, config, workers, coalesce):
    """Submit the whole mix, start the workers, drain; return the record."""

    service = OptimizationService(
        config=config, cache=MemoryCache(), workers=workers, coalesce=coalesce
    )
    t0 = time.perf_counter()
    handles = [
        service.submit(source, priority=0, name_prefix=name)
        for name, source in mix
    ]
    service.start()
    service.join()
    elapsed = time.perf_counter() - t0

    latencies = [h.latency for h in handles if h.latency is not None]
    p50, p95 = _percentiles(latencies)
    stats = service.stats.snapshot()
    record = {
        "coalesce": coalesce,
        "requests": len(handles),
        "wall_seconds": elapsed,
        "throughput_rps": len(handles) / elapsed if elapsed > 0 else float("inf"),
        "latency_p50_s": p50,
        "latency_p95_s": p95,
        "pipeline_runs": stats["pipeline_runs"],
        "coalesced": stats["coalesced"],
        "coalesce_rate": stats["coalesced"] / max(1, stats["submitted"]),
        "cache_hits": stats["cache_hits"],
        "stats": stats,
    }
    return service, handles, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                             "BENCH_service.json"),
        help="output JSON path (default: repo-root BENCH_service.json)",
    )
    parser.add_argument("--requests", type=int, default=200,
                        help="requests in the main wave (default 200)")
    parser.add_argument("--kernels", type=int, default=20,
                        help="distinct kernels in the mix (default 20)")
    parser.add_argument("--workers", type=int, default=8,
                        help="service worker threads (default 8)")
    parser.add_argument("--node-limit", type=int, default=1000,
                        help="per-job saturation node limit (default 1000)")
    parser.add_argument("--iter-limit", type=int, default=3,
                        help="per-job saturation iteration limit (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="assert the service invariants (CI smoke mode)")
    args = parser.parse_args(argv)
    if args.requests < args.kernels or args.kernels < 1:
        parser.error("--requests must be >= --kernels >= 1")

    config = _service_config(args.node_limit, args.iter_limit)
    kernels = _kernel_pool(args.kernels)
    mix = _request_mix(kernels, args.requests)

    # -- main wave, coalescing on -----------------------------------------
    service, handles, coalesced_record = _drive(
        mix, config, args.workers, coalesce=True
    )

    # -- follow-up wave: every kernel again -> plain cache hits ------------
    followup = [service.submit(source, priority=0, name_prefix=name)
                for name, source in kernels]
    service.start()
    service.join()
    followup_hits = sum(1 for h in followup if h.from_cache)
    coalesced_record["followup_cache_hits"] = followup_hits
    coalesced_record["stats"] = service.stats.snapshot()
    service.stop()

    # -- correctness audit -------------------------------------------------
    # (a) each coalesced handle's result is byte-identical to the artifact
    #     of the job it attached to
    identical = True
    by_job = {}
    for handle in handles:
        by_job.setdefault(id(handle._job), []).append(handle)
    for group in by_job.values():
        blobs = {pickle.dumps(h.result().kernels) for h in group}
        if len(blobs) != 1:
            identical = False
    # (b) each job's generated code equals a solo run of (source, config)
    solo_matches = True
    solo_costs = {}
    for name, source in kernels:
        solo = optimize_source(source, config, name)
        solo_costs[name] = [k.extracted_cost for k in solo.kernels]
        served = next(h for h in handles if h.request.name_prefix == name)
        if served.result().code != solo.code:
            solo_matches = False

    # -- baseline: coalescing off ------------------------------------------
    baseline_service, baseline_handles, baseline_record = _drive(
        mix, config, args.workers, coalesce=False
    )
    baseline_service.stop()

    speedup = (
        baseline_record["wall_seconds"] / coalesced_record["wall_seconds"]
        if coalesced_record["wall_seconds"] > 0 else float("inf")
    )

    payload = {
        "schema": "repro-service-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "params": {
            "requests": args.requests,
            "kernels": len(kernels),
            "workers": args.workers,
            "node_limit": args.node_limit,
            "iter_limit": args.iter_limit,
        },
        "coalescing": coalesced_record,
        "no_coalescing_baseline": baseline_record,
        "speedup_coalescing": speedup,
        "checks": {
            "all_terminal": all(h.done() for h in handles + followup),
            "coalesced_results_identical": identical,
            "matches_solo_run": solo_matches,
        },
    }

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    print(
        f"  coalescing : {coalesced_record['throughput_rps']:8.1f} req/s "
        f"(p50 {1e3 * coalesced_record['latency_p50_s']:.0f} ms, "
        f"p95 {1e3 * coalesced_record['latency_p95_s']:.0f} ms, "
        f"{coalesced_record['pipeline_runs']} pipeline runs)"
    )
    print(
        f"  baseline   : {baseline_record['throughput_rps']:8.1f} req/s "
        f"({baseline_record['pipeline_runs']} pipeline runs)"
    )
    print(f"  speedup    : {speedup:8.2f}x   "
          f"coalesce rate {100 * coalesced_record['coalesce_rate']:.0f}%   "
          f"follow-up cache hits {followup_hits}/{len(kernels)}")

    if args.check:
        failures = []
        if not payload["checks"]["all_terminal"]:
            failures.append("not every job reached a terminal state")
        if coalesced_record["coalesced"] == 0:
            failures.append("no submissions were coalesced")
        if followup_hits == 0:
            failures.append("follow-up wave produced no cache hits")
        if not identical:
            failures.append("coalesced results were not byte-identical")
        if not solo_matches:
            failures.append("served code deviates from a solo run")
        if coalesced_record["pipeline_runs"] > len(kernels):
            failures.append(
                f"coalescing ran {coalesced_record['pipeline_runs']} pipelines "
                f"for {len(kernels)} distinct kernels"
            )
        if failures:
            print("service bench check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("service bench checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
