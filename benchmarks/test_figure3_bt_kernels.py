"""Figure 3 — per-kernel speedup distribution of NPB-BT."""

from repro.experiments import figure3


def test_figure3_bt_kernel_breakdown(benchmark, settings):
    rows = benchmark(figure3.run, settings)
    print("\nFigure 3 — NPB-BT per-kernel speedups")
    print(figure3.format_report(rows))

    gcc_rows = [r for r in rows if r["compiler"] == "gcc"]
    # time shares sum to one per compiler
    assert abs(sum(r["time_share"] for r in gcc_rows) - 1.0) < 1e-6
    # the Jacobian kernels (the paper's top-3) show the largest ACCSAT gain
    best = max(gcc_rows, key=lambda r: r["speedup_accsat"])
    assert best["kernel"].startswith("bt_jacobian") or best["kernel"].startswith("bt_solve")
    assert best["speedup_accsat"] > 1.3
