"""§VII statistics — per-kernel SSA/codegen and saturation cost.

The paper reports an average of 91.8 ms for SSA construction + code
generation and 0.63 s for equality saturation per kernel, under the limits
of 10,000 e-nodes, 10 iterations, 10 s saturation and 30 s extraction.
This harness measures the same quantities for every benchmark kernel.
"""

import statistics

from repro.benchsuite import NPB_BENCHMARKS, SPEC_ACC_BENCHMARKS
from repro.egraph.runner import RunnerLimits
from repro.saturator import SaturatorConfig, Variant, optimize_source


def _optimize_all():
    config = SaturatorConfig(
        variant=Variant.ACCSAT, limits=RunnerLimits(3000, 4, 5.0)
    )
    reports = []
    for bench in NPB_BENCHMARKS + SPEC_ACC_BENCHMARKS:
        for spec in bench.kernels:
            result = optimize_source(spec.source, config, name_prefix=spec.name)
            reports.extend(result.kernels)
    return reports


def test_saturation_statistics(benchmark):
    reports = benchmark.pedantic(_optimize_all, rounds=1, iterations=1)
    ssa_codegen = [r.ssa_codegen_time for r in reports]
    saturation = [r.saturation_time for r in reports]
    nodes = [r.egraph_nodes for r in reports]

    print("\n§VII saturation statistics over", len(reports), "kernels")
    print(f"  SSA+codegen  mean {1e3 * statistics.mean(ssa_codegen):7.1f} ms   "
          f"max {1e3 * max(ssa_codegen):7.1f} ms   (paper: mean 91.8 ms)")
    print(f"  saturation   mean {statistics.mean(saturation):7.3f} s    "
          f"max {max(saturation):7.3f} s    (paper: mean 0.63 s)")
    print(f"  e-graph size mean {statistics.mean(nodes):7.0f}      max {max(nodes)}")

    assert len(reports) >= 14
    # every kernel respects the configured e-node limit (with one iteration
    # of slack, as in egg's runner semantics)
    assert all(r.egraph_nodes > 0 for r in reports)
    assert statistics.mean(saturation) < 10.0
