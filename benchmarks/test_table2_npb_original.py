"""Table II — NPB description and original execution times."""

from repro.experiments import table2


def test_table2_npb_original(benchmark, settings):
    rows = benchmark(table2.run, settings)
    assert len(rows) == 7
    print("\nTable II — NPB benchmarks (modelled vs paper original times)")
    print(table2.format_table(rows))
    by_name = {row["name"]: row for row in rows}
    # GCC's original BT is slower than NVHPC's, as in the paper (28.0 vs 14.9 s)
    assert by_name["BT"]["model_time_gcc"] > by_name["BT"]["model_time_nvhpc"]
