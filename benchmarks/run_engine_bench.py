#!/usr/bin/env python
"""Engine performance trajectory: write BENCH_engine.json.

Measures the median wall-clock time of the four pipeline stages the
throughput benchmarks track (parse+SSA, saturation, extraction, and the
full ACC-Saturator pipeline on the LU jacld kernel), the full pipeline on
the largest NPB kernel (BT's jacobian assembly — ``saturation_large``),
plus the rule-search micro-benchmark, and writes them to
``BENCH_engine.json`` at the repo root.  Future PRs re-run this script and
compare against the committed figures, so perf regressions in the
reproduction's own hot paths are attributable — the per-rule breakdown
from the saturation profiler and the search/apply/rebuild/extract
``phase_times`` split are included for exactly that purpose.  CI reruns
the script in quick mode and fails if ``pipeline_outcome`` /
``saturation_large_outcome`` deviate from the committed values, so
representation changes cannot silently alter saturation results.

Two repeated-workload rows exercise the session architecture the
experiment harness runs on: ``extraction_memoized`` re-extracts the same
saturated e-graph through a shared ``ExtractionMemo``, and
``pipeline_variants_cached`` sweeps all four generated-code variants
through a session with an artifact cache (vs ``pipeline_variants_cold``
without one).  The cache hit/miss counters and memo statistics behind
those rows are recorded under ``"cache"``.

The ``executors`` section (PR 5) times the full figure-sweep pipeline
workload — both configs of every kernel in both suites, cold — through the
serial, thread and process batch executors, recording the thread-vs-process
scaling the session architecture delivers on a whole sweep.

The ``matching`` section (PR 7) times the two e-matching engines head to
head: every join-capable rule of the default ruleset is searched over the
saturated micro e-graph with the relational (hash-join) backend and with
the compiled scan matcher, recording per-rule and per-atom-count medians.
Both engines return identical rows by construction, so the section is
pure wall-clock — it exists to keep the join planner honest about where
it actually wins.

Two scheduling rows (PR 4) exercise the adaptive saturation loop:
``saturation_backoff`` re-runs the saturation micro-workload under the
egg-style exponential-backoff rule scheduler, and ``pipeline_anytime``
runs the BT-jacobian pipeline with in-loop anytime extraction and
plateau-based early stopping.  Both record deterministic outcome records
(guarded by CI next to the default-scheduler outcomes, which must stay
byte-identical to the committed figures) plus per-iteration
node/class/cost trajectories under ``"scheduling"``.

Usage::

    PYTHONPATH=src python benchmarks/run_engine_bench.py [-o OUT] [-n REPEATS]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.benchsuite.npb.bt import BT_JACOBIAN_SOURCE
from repro.benchsuite.npb.lu import LU_JACLD_SOURCE
from repro.cost import DEFAULT_COST_MODEL
from repro.egraph import (
    AnytimeExtraction,
    EGraph,
    ExtractionMemo,
    Runner,
    RunnerLimits,
    extract_best,
)
from repro.egraph import columns
from repro.egraph.language import op, sym
from repro.experiments.common import EvaluationSettings, pipeline_workload
from repro.frontend import parse_statement
from repro.frontend.normalize import normalize_blocks
from repro.rules import constant_folding_analysis, default_ruleset
from repro.saturator import SaturatorConfig, Variant, find_parallel_kernels, optimize_source
from repro.session import MemoryCache, OptimizationSession
from repro.ssa import build_ssa


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _bench_term():
    term = sym("x0")
    for i in range(1, 7):
        term = op("+", term, op("*", sym(f"a{i}"), sym(f"b{i}")))
    return term


# Generous time limits everywhere: the node/iteration limits stop these
# runs in well under a second, so the wall-clock budget is never the
# binding constraint — which keeps the recorded outcomes (stop reason,
# node/class counts) pure functions of (source, config) even on a stalled
# shared CI runner.  CI's outcome guard relies on that.
_TIME_LIMIT = 300.0


def _saturated_egraph():
    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(_bench_term())
    report = Runner(eg, default_ruleset(), RunnerLimits(2000, 5, _TIME_LIMIT)).run()
    return eg, root, report


#: Backoff parameters of the ``saturation_backoff`` row: small enough that
#: bans actually trigger on the micro workload, so the row exercises the
#: skip/drop machinery rather than degenerating into the simple policy.
_BACKOFF_SPEC = "backoff:200:2"


def _backoff_egraph(anytime=False):
    eg = EGraph(constant_folding_analysis())
    root = eg.add_term(_bench_term())
    hook = None
    if anytime:
        # patience is effectively infinite: the hook only records the cost
        # trajectory, it never changes where this run stops
        hook = AnytimeExtraction(
            roots=[root], cost_model=DEFAULT_COST_MODEL, interval=1, patience=10**6
        )
    report = Runner(
        eg, default_ruleset(), RunnerLimits(2000, 5, _TIME_LIMIT),
        scheduler=_BACKOFF_SPEC, anytime=hook,
    ).run()
    return eg, root, report


def _trajectory(report):
    """Deterministic per-iteration rows (no wall-clock fields)."""

    return [
        {
            "iteration": it.index,
            "applied": it.applied,
            "egraph_nodes": it.egraph_nodes,
            "egraph_classes": it.egraph_classes,
            "extracted_cost": it.extracted_cost,
        }
        for it in report.iterations
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                             "BENCH_engine.json"),
        help="output JSON path (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument("-n", "--repeats", type=int, default=7,
                        help="timed repetitions per stage (median is kept)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    # warm every cache (pattern compilation, pyc, allocator) before timing
    config = SaturatorConfig(
        variant=Variant.ACCSAT, limits=RunnerLimits(2000, 4, _TIME_LIMIT)
    )
    optimize_source(LU_JACLD_SOURCE, config)

    def parse_and_ssa():
        root = parse_statement(LU_JACLD_SOURCE)
        normalize_blocks(root)
        kernel = find_parallel_kernels(root)[0]
        return build_ssa(kernel.body)

    def saturation():
        return _saturated_egraph()

    eg, root, sat_report = _saturated_egraph()

    def extraction():
        return extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy")

    rules = default_ruleset()

    def rule_search():
        return sum(len(rule.search(eg)) for rule in rules)

    def full_pipeline():
        return optimize_source(LU_JACLD_SOURCE, config)

    # the largest NPB kernel (BT's z-direction jacobian assembly, 13
    # statements over 5x5 block matrices): a realistic saturation-dominated
    # workload for the arena representation, not just the micro kernel.
    # NOTE: like full_pipeline, this row times the WHOLE pipeline
    # (parse+SSA+saturate+extract+codegen) on that kernel — see
    # phase_times_large for the per-phase split of its saturation/extract
    # shares; don't compare it against the Runner-only `saturation` row.
    large_config = SaturatorConfig(
        variant=Variant.CSE_SAT, limits=RunnerLimits(2000, 4, _TIME_LIMIT)
    )
    optimize_source(BT_JACOBIAN_SOURCE, large_config)  # warm

    def saturation_large():
        return optimize_source(BT_JACOBIAN_SOURCE, large_config)

    # -- steady-state saturation (PR 9) ------------------------------------
    # the batched-apply / delta-join home turf: grow the micro e-graph to
    # its 30k-node fixpoint once (outside timing), then time confirmation
    # sweeps on copies — every batch is re-derivation-heavy, which is what
    # the purity prepass skips in bulk.  The copy is inside the timed
    # region for both engines alike; the row is only compared against
    # itself across commits.
    steady_eg = _saturated_egraph()[0]
    steady_limits = RunnerLimits(30000, 2, _TIME_LIMIT)
    Runner(steady_eg, default_ruleset(), steady_limits).run()

    def saturation_steady():
        return Runner(steady_eg.copy(), default_ruleset(), steady_limits).run()

    steady_report = saturation_steady()

    # -- adaptive scheduling rows (PR 4) -----------------------------------

    def saturation_backoff():
        return _backoff_egraph()

    # anytime extraction with plateau patience 1 on the BT-jacobian
    # pipeline: stop saturating as soon as one in-loop extraction fails to
    # improve on the best cost so far
    anytime_config = SaturatorConfig(
        variant=Variant.CSE_SAT, limits=RunnerLimits(2000, 4, _TIME_LIMIT),
        anytime_extraction=True, plateau_patience=1,
    )
    optimize_source(BT_JACOBIAN_SOURCE, anytime_config)  # warm

    def pipeline_anytime():
        return optimize_source(BT_JACOBIAN_SOURCE, anytime_config)

    # -- repeated-workload rows (the session architecture's home turf) -----

    memo = ExtractionMemo()
    extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy", memo=memo)  # warm

    def extraction_memoized():
        return extract_best(eg, [root], DEFAULT_COST_MODEL, "dag-greedy", memo=memo)

    variants = (Variant.CSE, Variant.CSE_SAT, Variant.CSE_BULK, Variant.ACCSAT)

    def pipeline_variants_cold():
        return [
            optimize_source(LU_JACLD_SOURCE, config.with_variant(v))
            for v in variants
        ]

    cached_session = OptimizationSession(cache=MemoryCache())
    for v in variants:  # warm the artifact cache
        cached_session.run(LU_JACLD_SOURCE, config.with_variant(v))

    def pipeline_variants_cached():
        return [
            cached_session.run(LU_JACLD_SOURCE, config.with_variant(v))
            for v in variants
        ]

    # -- executor scaling on the figure-sweep workload (PR 5) --------------
    # the full deduplicated pipeline workload behind the figure/table
    # sweeps (two configs per kernel over both suites), run cold through
    # each batch-executor backend.  Timed once per backend: the section
    # records *scaling*, the per-stage medians above cover precision.
    sweep = pipeline_workload(settings=EvaluationSettings())
    sweep_groups = {}
    for source, sweep_config, name in sweep:
        sweep_groups.setdefault(sweep_config.variant, (sweep_config, []))
        sweep_groups[sweep_config.variant][1].append((source, name))

    def _executor_sweep(spec):
        session = OptimizationSession(cache=None, executor=spec)
        for sweep_config, items in sweep_groups.values():
            session.run_many(items, sweep_config)

    # at least two jobs, so the thread/process rows exercise real pools
    # (and honestly record the GIL / pool-startup overheads) even on a
    # single-core machine
    executor_jobs = max(2, os.cpu_count() or 1)
    executor_seconds = {}
    for spec in ("serial", f"threads:{executor_jobs}", f"processes:{executor_jobs}"):
        t0 = time.perf_counter()
        _executor_sweep(spec)
        executor_seconds[spec.split(":")[0]] = time.perf_counter() - t0

    # -- relational e-matching micro-benchmark (PR 7) ----------------------
    # join vs scan, per join-capable rule, on the saturated micro e-graph.
    # Both engines return the identical row list; the numbers are pure
    # wall-clock, grouped by atom count so the join's fixed costs (relation
    # slicing, key encoding) are visible separately from its wins on
    # high-selectivity multi-atom patterns.
    matching_rules = []
    if columns.HAVE_NUMPY:
        for rule in rules:
            cp = rule._compiled
            if cp._atoms is None:
                continue  # trivial pattern: scan engine only
            scan_s = _median_time(
                lambda: cp.search_rows(eg, backend="scan"), args.repeats
            )
            try:
                join_s = _median_time(
                    lambda: cp.search_rows(eg, backend="join"), args.repeats
                )
            except RuntimeError:
                continue  # join-key overflow guard: engine unavailable here
            matching_rules.append({
                "rule": rule.name,
                "atoms": len(cp._atoms),
                "vars": len(cp.vars),
                "hetero": cp._hetero,
                "rows": len(cp.search_rows(eg, backend="scan")),
                "scan_seconds": scan_s,
                "join_seconds": join_s,
                "speedup_join": scan_s / join_s if join_s > 0 else float("inf"),
            })
    # the default ruleset tops out at two atoms per pattern, so a few
    # synthetic deeper patterns fill in the higher-arity rows (join plans
    # with 3-4 relations, where inter-relation selectivity compounds)
    synthetic_patterns = [
        "(+ ?a (* ?b ?c))",
        "(+ (* ?a ?b) (* ?b ?c))",
        "(* (+ ?a (* ?b ?c)) ?d)",
        "(+ (* ?a (+ ?b ?c)) (* ?d ?e))",
    ]
    matching_synthetic = []
    if columns.HAVE_NUMPY:
        from repro.egraph.pattern import compile_pattern, parse_pattern

        for text in synthetic_patterns:
            cp = compile_pattern(parse_pattern(text))
            scan_s = _median_time(
                lambda: cp.search_rows(eg, backend="scan"), args.repeats
            )
            try:
                join_s = _median_time(
                    lambda: cp.search_rows(eg, backend="join"), args.repeats
                )
            except RuntimeError:
                continue
            matching_synthetic.append({
                "pattern": text,
                "atoms": len(cp._atoms),
                "vars": len(cp.vars),
                "hetero": cp._hetero,
                "rows": len(cp.search_rows(eg, backend="scan")),
                "scan_seconds": scan_s,
                "join_seconds": join_s,
                "speedup_join": scan_s / join_s if join_s > 0 else float("inf"),
            })
    # -- semi-naive delta joins vs incremental scans (PR 9) ----------------
    # the same engines on *incremental* searches: `since` quantiles of the
    # class-touched distribution sweep the delta fraction from "everything
    # changed" down to "a thin recent slice", which is where the delta
    # join's root-relation restriction pays.  Engine choice still never
    # changes results (the equivalence tests pin multiset AND order).
    matching_delta = []
    if columns.HAVE_NUMPY:
        from repro.egraph.pattern import compile_pattern, parse_pattern

        touched_live = sorted(cls.touched for cls in eg.eclasses())
        delta_cases = [
            ("rule:" + rule.name, rule._compiled)
            for rule in rules
            if rule._compiled._atoms is not None
        ][:4] + [
            (text, compile_pattern(parse_pattern(text)))
            for text in synthetic_patterns
        ]
        n_live = len(touched_live)
        for quantile in (0.0, 0.5, 0.9):
            idx = min(n_live - 1, int(quantile * n_live))
            since = -1 if quantile == 0.0 else touched_live[idx]
            stale = sum(1 for t in touched_live if t > since)
            for label, cp in delta_cases:
                scan_s = _median_time(
                    lambda: cp.search_rows(eg, since=since, backend="scan"),
                    args.repeats,
                )
                try:
                    join_s = _median_time(
                        lambda: cp.search_rows(eg, since=since, backend="join"),
                        args.repeats,
                    )
                except RuntimeError:
                    continue
                matching_delta.append({
                    "pattern": label,
                    "atoms": len(cp._atoms),
                    "since_quantile": quantile,
                    "delta_fraction_classes": stale / n_live if n_live else 0.0,
                    "rows": len(cp.search_rows(eg, since=since, backend="scan")),
                    "scan_seconds": scan_s,
                    "join_seconds": join_s,
                    "speedup_join": scan_s / join_s if join_s > 0 else float("inf"),
                })
    matching_by_atoms = {}
    for row in matching_rules + matching_synthetic:
        matching_by_atoms.setdefault(row["atoms"], []).append(row)
    matching = {
        "backend": "numpy" if columns.HAVE_NUMPY else "fallback",
        "rules": matching_rules,
        "synthetic": matching_synthetic,
        "delta": matching_delta,
        "by_atom_count": {
            str(atoms): {
                "rules": len(rows),
                "scan_seconds": statistics.median(r["scan_seconds"] for r in rows),
                "join_seconds": statistics.median(r["join_seconds"] for r in rows),
                "speedup_join": statistics.median(
                    r["speedup_join"] for r in rows
                ),
            }
            for atoms, rows in sorted(matching_by_atoms.items())
        },
    }

    # -- telemetry overhead A/B (PR 10) ------------------------------------
    # traced vs untraced, interleaved rep-by-rep in one process so drift
    # (thermal, allocator state) hits both arms equally.  The traced arm
    # attaches a live Tracer to the identical workload; the outcome
    # records of the traced runs are kept so CI can assert tracing never
    # changes results — the observational contract, measured.
    from repro.obs import Tracer

    def saturation_traced():
        eg_t = EGraph(constant_folding_analysis())
        root_t = eg_t.add_term(_bench_term())
        tracer = Tracer()
        span = tracer.span("bench:saturation")
        report = Runner(
            eg_t, default_ruleset(), RunnerLimits(2000, 5, _TIME_LIMIT),
            tracer=tracer, trace_parent=span.span_id,
        ).run()
        span.end()
        return report

    def pipeline_traced():
        tracer = Tracer()
        span = tracer.span("bench:pipeline")
        result = optimize_source(
            LU_JACLD_SOURCE, config,
            tracer=tracer, trace_parent=span.span_id,
        )
        span.end()
        return result

    def _interleaved_ab(untraced, traced, repeats):
        untraced_times, traced_times = [], []
        for _ in range(repeats):
            t0 = time.perf_counter()
            untraced()
            untraced_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            traced()
            traced_times.append(time.perf_counter() - t0)
        return statistics.median(untraced_times), statistics.median(traced_times)

    saturation_traced()  # warm the obs module alongside everything else
    sat_ab = _interleaved_ab(saturation, saturation_traced, args.repeats)
    pipe_ab = _interleaved_ab(full_pipeline, pipeline_traced, args.repeats)
    traced_sat_report = saturation_traced()
    traced_pipe_kernel = pipeline_traced().kernels[0]

    results = {
        "parse_ssa": _median_time(parse_and_ssa, args.repeats),
        "saturation": _median_time(saturation, args.repeats),
        "saturation_steady": _median_time(saturation_steady, args.repeats),
        "saturation_backoff": _median_time(saturation_backoff, args.repeats),
        "saturation_large": _median_time(saturation_large, args.repeats),
        "rule_search": _median_time(rule_search, args.repeats),
        "extraction": _median_time(extraction, args.repeats),
        "extraction_memoized": _median_time(extraction_memoized, args.repeats),
        "full_pipeline": _median_time(full_pipeline, args.repeats),
        "pipeline_anytime": _median_time(pipeline_anytime, args.repeats),
        "pipeline_variants_cold": _median_time(pipeline_variants_cold, args.repeats),
        "pipeline_variants_cached": _median_time(pipeline_variants_cached, args.repeats),
    }

    pipeline_result = optimize_source(LU_JACLD_SOURCE, config)
    kernel_report = pipeline_result.kernels[0]
    large_result = optimize_source(BT_JACOBIAN_SOURCE, large_config)
    large_report = large_result.kernels[0]

    # scheduling outcome records + trajectories: one instrumented backoff
    # run (the cost-recording hook never changes where the run stops) and
    # one anytime pipeline run
    _, _, backoff_report = _backoff_egraph(anytime=True)
    anytime_result = optimize_source(BT_JACOBIAN_SOURCE, anytime_config)
    anytime_report = anytime_result.kernels[0]

    payload = {
        "schema": "repro-engine-bench/1",
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "median_seconds": results,
        "saturation_outcome": {
            "stop_reason": sat_report.stop_reason.value,
            "egraph_nodes": sat_report.egraph_nodes,
            "egraph_classes": sat_report.egraph_classes,
        },
        "pipeline_outcome": {
            "stop_reason": kernel_report.runner.stop_reason.value,
            "egraph_nodes": kernel_report.egraph_nodes,
            "egraph_classes": kernel_report.egraph_classes,
        },
        "saturation_large_outcome": {
            "stop_reason": large_report.runner.stop_reason.value,
            "egraph_nodes": large_report.egraph_nodes,
            "egraph_classes": large_report.egraph_classes,
        },
        "saturation_steady_outcome": {
            "stop_reason": steady_report.stop_reason.value,
            "egraph_nodes": steady_report.egraph_nodes,
            "egraph_classes": steady_report.egraph_classes,
            "iterations": steady_report.num_iterations,
        },
        # one-time acceptance measurement for the PR-9 batched/delta
        # engine, against the pre-batching commit (interleaved A/B
        # subprocesses on one machine, 5 reps each, medians of the
        # saturation_steady workload).  Static annotation — regeneration
        # cannot re-measure the old tree; the live number to watch across
        # commits is `median_seconds.saturation_steady`.
        "steady_state_ab": {
            "baseline_commit": "f8a7e21",
            "baseline_median_seconds": 0.0244,
            "current_median_seconds": 0.0181,
            "speedup": 1.35,
            "method": "interleaved A/B subprocess medians, 2026-08-07",
        },
        # adaptive-scheduling outcomes: pure functions of (source, config)
        # like the records above (the trajectories carry no wall-clock
        # fields), so CI guards them against silent drift too
        "saturation_backoff_outcome": {
            "scheduler": _BACKOFF_SPEC,
            "stop_reason": backoff_report.stop_reason.value,
            "egraph_nodes": backoff_report.egraph_nodes,
            "egraph_classes": backoff_report.egraph_classes,
            "iterations": backoff_report.num_iterations,
            "extracted_cost": backoff_report.extracted_cost,
            "trajectory": _trajectory(backoff_report),
        },
        "pipeline_anytime_outcome": {
            "stop_reason": anytime_report.runner.stop_reason.value,
            "egraph_nodes": anytime_report.egraph_nodes,
            "egraph_classes": anytime_report.egraph_classes,
            "iterations": anytime_report.runner.num_iterations,
            "extracted_cost": anytime_report.extracted_cost,
            "trajectory": _trajectory(anytime_report.runner),
        },
        # where the benchmark kernel's saturation wall-clock goes —
        # search / apply / rebuild / extract — so future perf PRs can see
        # the phase split without re-profiling
        # join vs scan e-matching engine timings (backend choice never
        # changes results, so nothing here feeds the outcome guard)
        "matching": matching,
        # the observational contract, measured: interleaved traced vs
        # untraced medians of the saturation and pipeline workloads, and
        # the traced runs' outcome records — CI asserts the latter equal
        # the committed *untraced* outcomes, so a tracer can never change
        # what the engine computes
        "telemetry_overhead": {
            "method": "interleaved A/B in-process medians",
            "repeats": args.repeats,
            "saturation_untraced_seconds": sat_ab[0],
            "saturation_traced_seconds": sat_ab[1],
            "overhead_saturation": (
                sat_ab[1] / sat_ab[0] if sat_ab[0] > 0 else float("inf")
            ),
            "pipeline_untraced_seconds": pipe_ab[0],
            "pipeline_traced_seconds": pipe_ab[1],
            "overhead_pipeline": (
                pipe_ab[1] / pipe_ab[0] if pipe_ab[0] > 0 else float("inf")
            ),
            "traced_outcome": {
                "stop_reason": traced_sat_report.stop_reason.value,
                "egraph_nodes": traced_sat_report.egraph_nodes,
                "egraph_classes": traced_sat_report.egraph_classes,
            },
            "traced_pipeline_outcome": {
                "stop_reason": traced_pipe_kernel.runner.stop_reason.value,
                "egraph_nodes": traced_pipe_kernel.egraph_nodes,
                "egraph_classes": traced_pipe_kernel.egraph_classes,
            },
        },
        "phase_times": kernel_report.runner.phase_times,
        "phase_times_large": large_report.runner.phase_times,
        # per-rule saturation profile of the benchmark kernel, so future
        # regressions can be pinned on a specific rule
        "rule_stats": {
            name: stats.as_dict()
            for name, stats in kernel_report.runner.rule_stats.items()
        },
        # what adaptive scheduling buys on the large workload: anytime
        # early stopping vs the fixed-budget default (same source, same
        # limits), as a cost ratio and a wall-clock speedup
        "scheduling": {
            "anytime_vs_default_cost_ratio": (
                anytime_report.extracted_cost / large_report.extracted_cost
                if large_report.extracted_cost else float("inf")
            ),
            "anytime_vs_default_iterations": [
                anytime_report.runner.num_iterations,
                large_report.runner.num_iterations,
            ],
            "speedup_pipeline_anytime": (
                results["saturation_large"] / results["pipeline_anytime"]
                if results["pipeline_anytime"] > 0 else float("inf")
            ),
        },
        # thread vs process executor scaling on the full figure-sweep
        # pipeline workload (cold, uncached — every backend does identical
        # work).  Threads document the GIL ceiling of CPU-bound pipeline
        # batches; processes pay a pool-startup cost and then scale with
        # cores — which is why the session forwards its disk cache tier to
        # process fleets.
        "executors": {
            "workload_runs": len(sweep),
            "jobs": executor_jobs,
            "seconds": executor_seconds,
            "speedup_threads": (
                executor_seconds["serial"] / executor_seconds["threads"]
                if executor_seconds["threads"] > 0 else float("inf")
            ),
            "speedup_processes": (
                executor_seconds["serial"] / executor_seconds["processes"]
                if executor_seconds["processes"] > 0 else float("inf")
            ),
        },
        # hit/miss counters behind the repeated-workload rows, and the
        # speedups the session architecture buys on them
        "cache": {
            "session": cached_session.cache.stats.as_dict(),
            "extraction_memo": memo.stats_dict(),
            "speedup_extraction_memoized": (
                results["extraction"] / results["extraction_memoized"]
                if results["extraction_memoized"] > 0 else float("inf")
            ),
            "speedup_pipeline_variants": (
                results["pipeline_variants_cold"] / results["pipeline_variants_cached"]
                if results["pipeline_variants_cached"] > 0 else float("inf")
            ),
        },
    }

    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"wrote {args.output}")
    for stage, seconds in results.items():
        print(f"  {stage:24s} {1e3 * seconds:8.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
