"""Figure 4 — SPEC ACCEL speedups (OpenACC + OpenMP) on the A100-PCIE-40GB."""

from repro.experiments import figure4


def test_figure4_spec_speedups(benchmark, settings):
    results = benchmark(figure4.run, settings=settings)
    print("\nFigure 4 — SPEC ACCEL speedups on A100-PCIE-40GB")
    print(figure4.format_report(results))

    gcc_acc = {c.benchmark: c for c in results["gcc/acc"]}
    nvhpc_acc = {c.benchmark: c for c in results["nvhpc/acc"]}
    clang_omp = {c.benchmark: c for c in results["clang/omp"]}

    # olbm: CSE alone already wins (paper: 1.32x-1.38x across compilers)
    assert gcc_acc["olbm"].speedup("cse") > 1.2
    assert nvhpc_acc["olbm"].speedup("cse") > 1.1
    # csp / bt: bulk load dominates on GCC (paper: ~2x)
    assert gcc_acc["csp"].speedup("accsat") > 1.5
    assert gcc_acc["bt"].speedup("accsat") > 1.5
    # pbt on Clang gains from bulk load (paper: up to 4.84x)
    assert clang_omp["pbt"].speedup("cse+bulk") >= clang_omp["pbt"].speedup("cse")
