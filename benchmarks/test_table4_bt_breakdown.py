"""Table IV — top-kernel breakdown of NPB-BT (time, instructions, memory
utilisation, registers, occupancy per variant)."""

from repro.experiments import table4


def test_table4_bt_breakdown(benchmark, settings):
    rows = benchmark(table4.run, settings)
    print("\nTable IV — NPB-BT kernel breakdown")
    print(table4.format_table(rows))

    def pick(compiler, kernel, variant):
        return next(
            r for r in rows
            if r["compiler"] == compiler and r["kernel"] == kernel and r["variant"] == variant
        )

    original = pick("nvhpc", "bt_jacobian_z", "original")
    accsat = pick("nvhpc", "bt_jacobian_z", "accsat")
    # bulk load trades registers/occupancy for memory throughput (Table IV:
    # +103 registers, occupancy drops, memory utilisation rises)
    assert accsat["registers"] > original["registers"]
    assert accsat["occupancy"] <= original["occupancy"] + 1e-9
    assert accsat["memory_utilization"] > original["memory_utilization"]
    assert accsat["time_per_launch_ms"] < original["time_per_launch_ms"]
