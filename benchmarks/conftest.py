"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through the
real pipeline + GPU model; ``pytest benchmarks/ --benchmark-only`` runs them
all and prints the regenerated rows/series alongside the timing data.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.experiments.common import EvaluationSettings


@pytest.fixture(scope="session")
def settings():
    """Reduced saturation limits so the whole harness stays fast."""

    return EvaluationSettings(node_limit=1500, iter_limit=3, time_limit=3.0)
