"""Table III — SPEC ACCEL description and original execution times."""

from repro.experiments import table3


def test_table3_spec_original(benchmark, settings):
    rows = benchmark(table3.run, settings)
    assert len(rows) == 7
    print("\nTable III — SPEC ACCEL benchmarks (modelled original times)")
    print(table3.format_table(rows))
    by_name = {row["name"]: row for row in rows}
    # the immature `kernels` support makes GCC's OpenACC originals far slower
    # than NVHPC's for the CFD benchmarks (bt: 130 s vs 3 s in the paper)
    assert by_name["bt"]["acc_model_gcc"] > 2.0 * by_name["bt"]["acc_model_nvhpc"]
    assert by_name["csp"]["acc_model_gcc"] > by_name["csp"]["acc_model_nvhpc"]
