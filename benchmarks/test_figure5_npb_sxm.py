"""Figure 5 — NPB speedups on the A100-SXM4-80GB."""

from repro.experiments import figure2, figure5
from repro.gpusim import A100_PCIE_40GB


def test_figure5_npb_sxm(benchmark, settings):
    results = benchmark(figure5.run, settings)
    print("\nFigure 5 — NPB speedups on A100-SXM4-80GB")
    print(figure5.format_report(results))

    pcie = figure2.run(gpu=A100_PCIE_40GB, settings=settings)
    sxm_bt = {c.benchmark: c for c in results["nvhpc"]}["BT"]
    pcie_bt = {c.benchmark: c for c in pcie["nvhpc"]}["BT"]

    # the faster memory system lowers absolute time (paper: +5.79% on NVHPC)
    assert sxm_bt.total_time["original"] < pcie_bt.total_time["original"]
    # ACCSAT still wins on the SXM part (paper: 1.25x on NVHPC, 2.31x on GCC)
    assert sxm_bt.speedup("accsat") > 1.05
    gcc_bt = {c.benchmark: c for c in results["gcc"]}["BT"]
    assert gcc_bt.speedup("accsat") > sxm_bt.speedup("accsat")
