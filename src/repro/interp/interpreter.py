"""Tree-walking interpreter for the C subset.

Semantics follow C where it matters for the kernels: integer division
truncates toward zero, integer variables stay integers, ``&&``/``||``
short-circuit, and the math intrinsics (``sqrt``, ``exp``, ``pow``, ...)
map onto :mod:`math`.  Loops are bounded by ``max_iterations`` so that a
malformed kernel cannot hang the test suite.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.frontend import cast as C
from repro.interp.values import CBreak, CContinue, CReturn, Environment

__all__ = ["InterpreterError", "Interpreter", "execute", "evaluate_expression"]

Scalar = Union[int, float]


class InterpreterError(RuntimeError):
    """Raised for constructs outside the supported subset or runtime errors."""


#: Math intrinsics available to kernels.
_MATH_FUNCTIONS: Dict[str, Callable[..., float]] = {
    "sqrt": math.sqrt,
    "sqrtf": math.sqrt,
    "fabs": abs,
    "fabsf": abs,
    "abs": abs,
    "exp": math.exp,
    "expf": math.exp,
    "log": math.log,
    "logf": math.log,
    "log2": math.log2,
    "log10": math.log10,
    "pow": math.pow,
    "powf": math.pow,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "floor": math.floor,
    "ceil": math.ceil,
    "fmin": min,
    "fmax": max,
    "min": min,
    "max": max,
    "fma": lambda x, y, z: x * y + z,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "hypot": math.hypot,
    "atan": math.atan,
    "atan2": math.atan2,
}

_INT_TYPES = ("int", "long", "short", "unsigned", "size_t", "int32_t", "int64_t",
              "uint32_t", "uint64_t", "char", "bool", "_Bool", "ssize_t")


def _is_int_type(type_name: str) -> bool:
    words = type_name.replace("*", " ").split()
    return any(word in _INT_TYPES for word in words) and "double" not in words \
        and "float" not in words


class Interpreter:
    """Execute statements of the C subset against an :class:`Environment`."""

    def __init__(self, env: Environment, max_iterations: int = 10_000_000) -> None:
        self.env = env
        self.max_iterations = max_iterations
        self._iterations = 0

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def execute(self, stmt: C.Stmt) -> None:
        """Execute one statement."""

        if isinstance(stmt, C.Block):
            for inner in stmt.stmts:
                self.execute(inner)
            return
        if isinstance(stmt, C.Pragma):
            if stmt.stmt is not None:
                self.execute(stmt.stmt)
            return
        if isinstance(stmt, C.Decl):
            value: Scalar = 0
            if stmt.init is not None:
                value = self.eval(stmt.init)
            if stmt.array_dims:
                dims = tuple(int(self.eval(d)) for d in stmt.array_dims)
                dtype = np.int64 if _is_int_type(stmt.type_name) else np.float64
                self.env.arrays[stmt.name] = np.zeros(dims, dtype=dtype)
                return
            if _is_int_type(stmt.type_name):
                value = int(value)
            else:
                value = float(value)
            self.env.scalars[stmt.name] = value
            return
        if isinstance(stmt, C.ExprStmt):
            self.eval(stmt.expr)
            return
        if isinstance(stmt, C.If):
            if self._truth(self.eval(stmt.cond)):
                self.execute(stmt.then)
            elif stmt.otherwise is not None:
                self.execute(stmt.otherwise)
            return
        if isinstance(stmt, C.For):
            self._execute_for(stmt)
            return
        if isinstance(stmt, C.While):
            while self._truth(self.eval(stmt.cond)):
                self._tick()
                try:
                    self.execute(stmt.body)
                except CBreak:
                    break
                except CContinue:
                    continue
            return
        if isinstance(stmt, C.DoWhile):
            while True:
                self._tick()
                try:
                    self.execute(stmt.body)
                except CBreak:
                    break
                except CContinue:
                    pass
                if not self._truth(self.eval(stmt.cond)):
                    break
            return
        if isinstance(stmt, C.Return):
            raise CReturn(self.eval(stmt.value) if stmt.value is not None else None)
        if isinstance(stmt, C.Break):
            raise CBreak()
        if isinstance(stmt, C.Continue):
            raise CContinue()
        raise InterpreterError(f"cannot execute statement {type(stmt).__name__}")

    def _execute_for(self, stmt: C.For) -> None:
        if stmt.init is not None:
            self.execute(stmt.init)
        while stmt.cond is None or self._truth(self.eval(stmt.cond)):
            self._tick()
            try:
                self.execute(stmt.body)
            except CBreak:
                break
            except CContinue:
                pass
            if stmt.step is not None:
                self.eval(stmt.step)
        else:  # pragma: no cover - loop always exits via condition/break
            pass

    def _tick(self) -> None:
        self._iterations += 1
        if self._iterations > self.max_iterations:
            raise InterpreterError(
                f"iteration budget exceeded ({self.max_iterations})"
            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval(self, expr: C.Expr) -> Scalar:
        """Evaluate an expression and return its value."""

        if isinstance(expr, C.Number):
            return expr.value
        if isinstance(expr, C.Ident):
            return self.env.read_scalar(expr.name)
        if isinstance(expr, C.Member):
            return self._read_lvalue(expr)
        if isinstance(expr, C.ArraySub):
            return self._read_lvalue(expr)
        if isinstance(expr, C.UnaryOp):
            return self._eval_unary(expr)
        if isinstance(expr, C.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, C.Ternary):
            if self._truth(self.eval(expr.cond)):
                return self.eval(expr.then)
            return self.eval(expr.otherwise)
        if isinstance(expr, C.Call):
            return self._eval_call(expr)
        if isinstance(expr, C.Cast):
            value = self.eval(expr.operand)
            if _is_int_type(expr.type_name):
                return int(value)
            return float(value)
        if isinstance(expr, C.Assign):
            return self._eval_assign(expr)
        if isinstance(expr, C.StringLit):
            raise InterpreterError("string literals have no scalar value")
        raise InterpreterError(f"cannot evaluate expression {type(expr).__name__}")

    # -- lvalues --------------------------------------------------------

    def _lvalue_path(self, expr: C.Expr):
        """Resolve an lvalue to (kind, ...) where kind is 'scalar' or 'array'."""

        if isinstance(expr, C.Ident):
            return ("scalar", expr.name)
        if isinstance(expr, C.Member):
            if isinstance(expr.base, C.ArraySub):
                # array-of-structs access such as kValues[i].Kx: modelled as
                # a struct-of-arrays named "kValues.Kx"
                base_path = self._lvalue_path(expr.base)
                _, name, indices = base_path
                return ("array", f"{name}.{expr.field_name}", indices)
            base = self._member_name(expr)
            return ("scalar", base)
        if isinstance(expr, C.ArraySub):
            indices = []
            node = expr
            while isinstance(node, C.ArraySub):
                indices.append(int(self.eval(node.index)))
                node = node.base
            indices.reverse()
            if isinstance(node, C.Ident):
                name = node.name
            elif isinstance(node, C.Member):
                name = self._member_name(node)
            else:
                raise InterpreterError(
                    f"unsupported array base {type(node).__name__}"
                )
            return ("array", name, tuple(indices))
        if isinstance(expr, C.UnaryOp) and expr.op == "*" and not expr.postfix:
            # *p — model a pointer as a 1-element array named p
            if isinstance(expr.operand, C.Ident):
                return ("array", expr.operand.name, (0,))
        raise InterpreterError(f"unsupported lvalue {type(expr).__name__}")

    def _member_name(self, expr: C.Member) -> str:
        parts = []
        node: C.Expr = expr
        while isinstance(node, C.Member):
            parts.append(node.field_name)
            node = node.base
        if not isinstance(node, C.Ident):
            raise InterpreterError("unsupported member base")
        parts.append(node.name)
        return ".".join(reversed(parts))

    def _read_lvalue(self, expr: C.Expr) -> Scalar:
        path = self._lvalue_path(expr)
        if path[0] == "scalar":
            return self.env.read_scalar(path[1])
        _, name, indices = path
        array = self.env.read_array(name)
        value = array[indices]
        return int(value) if np.issubdtype(array.dtype, np.integer) else float(value)

    def _write_lvalue(self, expr: C.Expr, value: Scalar) -> None:
        path = self._lvalue_path(expr)
        if path[0] == "scalar":
            name = path[1]
            old = self.env.scalars.get(name)
            if isinstance(old, int) and not isinstance(old, bool) and isinstance(value, float):
                # keep ints integral only if the value is integral, matching
                # what assignment to an int variable does in C (truncation)
                value = int(value)
            self.env.scalars[name] = value
            return
        _, name, indices = path
        array = self.env.read_array(name)
        try:
            array[indices] = value
        except IndexError as exc:
            raise InterpreterError(f"index {indices} out of bounds for {name!r}") from exc

    # -- operators -------------------------------------------------------

    def _eval_unary(self, expr: C.UnaryOp) -> Scalar:
        if expr.op in ("++", "--"):
            old = self._read_lvalue(expr.operand)
            new = old + 1 if expr.op == "++" else old - 1
            self._write_lvalue(expr.operand, new)
            return old if expr.postfix else new
        if expr.op == "*" and not expr.postfix:
            return self._read_lvalue(expr)
        value = self.eval(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return 0 if self._truth(value) else 1
        if expr.op == "~":
            return ~int(value)
        if expr.op == "&":
            raise InterpreterError("address-of is not supported by the interpreter")
        raise InterpreterError(f"unsupported unary operator {expr.op}")

    def _eval_binop(self, expr: C.BinOp) -> Scalar:
        op = expr.op
        if op == "&&":
            return 1 if self._truth(self.eval(expr.lhs)) and self._truth(self.eval(expr.rhs)) else 0
        if op == "||":
            return 1 if self._truth(self.eval(expr.lhs)) or self._truth(self.eval(expr.rhs)) else 0
        if op == ",":
            self.eval(expr.lhs)
            return self.eval(expr.rhs)
        lhs = self.eval(expr.lhs)
        rhs = self.eval(expr.rhs)
        return _apply_binop(op, lhs, rhs)

    def _eval_call(self, expr: C.Call) -> Scalar:
        if not isinstance(expr.func, C.Ident):
            raise InterpreterError("indirect calls are not supported")
        name = expr.func.name
        fn = _MATH_FUNCTIONS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown function {name!r}")
        args = [self.eval(a) for a in expr.args]
        return fn(*args)

    def _eval_assign(self, expr: C.Assign) -> Scalar:
        value = self.eval(expr.value)
        if expr.op != "=":
            old = self._read_lvalue(expr.target)
            value = _apply_binop(expr.op[:-1], old, value)
        self._write_lvalue(expr.target, value)
        return value

    @staticmethod
    def _truth(value: Scalar) -> bool:
        return bool(value)


def _apply_binop(op: str, lhs: Scalar, rhs: Scalar) -> Scalar:
    both_int = isinstance(lhs, int) and isinstance(rhs, int)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if both_int:
            if rhs == 0:
                raise InterpreterError("integer division by zero")
            quotient = abs(lhs) // abs(rhs)
            return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        if rhs == 0:
            return math.inf if lhs > 0 else (-math.inf if lhs < 0 else math.nan)
        return lhs / rhs
    if op == "%":
        if rhs == 0:
            raise InterpreterError("modulo by zero")
        return int(math.fmod(int(lhs), int(rhs)))
    if op == "<":
        return int(lhs < rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<<":
        return int(lhs) << int(rhs)
    if op == ">>":
        return int(lhs) >> int(rhs)
    if op == "&":
        return int(lhs) & int(rhs)
    if op == "|":
        return int(lhs) | int(rhs)
    if op == "^":
        return int(lhs) ^ int(rhs)
    raise InterpreterError(f"unsupported binary operator {op}")


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def execute(stmt: C.Stmt, env: Environment, max_iterations: int = 10_000_000) -> Environment:
    """Execute *stmt* against *env* (mutated in place and returned)."""

    Interpreter(env, max_iterations).execute(stmt)
    return env


def evaluate_expression(expr: C.Expr, env: Optional[Environment] = None) -> Scalar:
    """Evaluate a standalone expression."""

    return Interpreter(env or Environment()).eval(expr)
