"""Runtime values and environments for the reference interpreter."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["Environment", "CBreak", "CContinue", "CReturn"]

Scalar = Union[int, float]


class CBreak(Exception):
    """Signals a ``break`` statement."""


class CContinue(Exception):
    """Signals a ``continue`` statement."""


class CReturn(Exception):
    """Signals a ``return`` statement (carries the returned value)."""

    def __init__(self, value: Optional[Scalar] = None) -> None:
        super().__init__(value)
        self.value = value


@dataclass
class Environment:
    """Scalar variables and arrays visible to a kernel.

    Arrays are NumPy arrays indexed with C-style row-major subscripts.
    Struct-member scalars are stored under their printed name (``p.x``);
    struct-of-array members under ``name.field`` in :attr:`arrays`.
    """

    scalars: Dict[str, Scalar] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "Environment":
        """A deep copy (arrays are copied, not aliased)."""

        return Environment(
            scalars=dict(self.scalars),
            arrays={name: np.array(arr, copy=True) for name, arr in self.arrays.items()},
        )

    def read_scalar(self, name: str) -> Scalar:
        try:
            return self.scalars[name]
        except KeyError:
            raise KeyError(f"undefined scalar variable {name!r}") from None

    def read_array(self, name: str) -> np.ndarray:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"undefined array {name!r}") from None

    def allclose(self, other: "Environment", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """True if every scalar and array matches within tolerance."""

        if set(self.arrays) != set(other.arrays):
            return False
        for name, array in self.arrays.items():
            if not np.allclose(array, other.arrays[name], rtol=rtol, atol=atol, equal_nan=True):
                return False
        common = set(self.scalars) & set(other.scalars)
        for name in common:
            a, b = self.scalars[name], other.scalars[name]
            if isinstance(a, float) or isinstance(b, float):
                if not np.isclose(a, b, rtol=rtol, atol=atol, equal_nan=True):
                    return False
            elif a != b:
                return False
        return True

    def max_difference(self, other: "Environment") -> float:
        """Largest absolute elementwise difference across shared arrays."""

        worst = 0.0
        for name in set(self.arrays) & set(other.arrays):
            diff = np.abs(self.arrays[name] - other.arrays[name])
            if diff.size:
                worst = max(worst, float(np.nanmax(diff)))
        for name in set(self.scalars) & set(other.scalars):
            try:
                worst = max(worst, abs(float(self.scalars[name]) - float(other.scalars[name])))
            except (TypeError, ValueError):  # pragma: no cover - defensive
                continue
        return worst
