"""Reference interpreter for the C subset.

The interpreter gives the reproduction an executable semantics: the test
suite runs the *original* and the *optimized* kernel on identical random
inputs and checks that every array and scalar agrees (within floating-point
tolerance — reassociation and FMA contraction legitimately change the last
few ulps, exactly as ``-ffast-math``/``-gpu=fastmath`` do in the paper's
experimental setup).
"""

from repro.interp.values import Environment, CBreak, CContinue, CReturn
from repro.interp.interpreter import InterpreterError, Interpreter, evaluate_expression, execute
from repro.interp.verify import (
    VerificationResult,
    make_random_environment,
    infer_kernel_inputs,
    verify_equivalence,
)

__all__ = [
    "CBreak",
    "CContinue",
    "CReturn",
    "Environment",
    "Interpreter",
    "InterpreterError",
    "VerificationResult",
    "evaluate_expression",
    "execute",
    "infer_kernel_inputs",
    "make_random_environment",
    "verify_equivalence",
]
