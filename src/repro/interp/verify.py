"""Semantic-equivalence checking between original and optimized kernels.

This is the reproduction's stand-in for "the benchmarks still validate"
in the paper: the optimized kernel must compute the same values as the
original one.  :func:`verify_equivalence` executes both on identical random
environments and compares every array and scalar within a floating-point
tolerance (reassociation and FMA formation change results in the last ulps,
exactly like the ``-ffast-math`` / ``-gpu=fastmath`` flags used in §VII).

:func:`make_random_environment` builds a plausible random input for a
kernel by analysing how each name is used: loop bounds become small
integers, index-like scalars become valid indices, everything else becomes
a random double, and arrays are sized from the observed subscript ranks and
literal indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

import numpy as np

from repro.frontend import cast as C
from repro.interp.interpreter import Interpreter
from repro.interp.values import Environment

__all__ = [
    "KernelInputs",
    "VerificationResult",
    "infer_kernel_inputs",
    "make_random_environment",
    "verify_equivalence",
]


@dataclass
class KernelInputs:
    """What a kernel reads from its surrounding context."""

    #: array name -> (rank, minimum extent per dimension)
    arrays: Dict[str, Tuple[int, Tuple[int, ...]]] = field(default_factory=dict)
    #: free scalar names (not declared inside the kernel)
    scalars: Set[str] = field(default_factory=set)
    #: names used as loop bounds or in index arithmetic (should be integers)
    integer_like: Set[str] = field(default_factory=set)


def _array_access_chains(node: C.Node):
    """Yield (base name, [index exprs]) for every outermost subscript chain."""

    def full_chain(expr: C.ArraySub):
        indices = []
        base = expr
        while isinstance(base, C.ArraySub):
            indices.append(base.index)
            base = base.base
        indices.reverse()
        name: Optional[str] = None
        if isinstance(base, C.Ident):
            name = base.name
        elif isinstance(base, C.Member) and isinstance(base.base, C.Ident):
            name = f"{base.base.name}.{base.field_name}"
        return name, indices

    seen_subs: Set[int] = set()
    for n in C.walk(node):
        if isinstance(n, C.ArraySub) and id(n) not in seen_subs:
            # only the outermost ArraySub of a chain
            for inner in C.walk(n):
                if isinstance(inner, C.ArraySub) and inner is not n:
                    seen_subs.add(id(inner))
            name, indices = full_chain(n)
            if name is not None:
                yield n, name, indices
        elif isinstance(n, C.Member) and isinstance(n.base, C.ArraySub):
            name, indices = full_chain(n.base)
            if name is not None:
                yield n, f"{name}.{n.field_name}", indices


def infer_kernel_inputs(node: C.Node) -> KernelInputs:
    """Infer the arrays and free scalars a kernel statement uses."""

    inputs = KernelInputs()
    declared: Set[str] = set()
    for n in C.walk(node):
        if isinstance(n, C.Decl):
            declared.add(n.name)

    member_array_bases: Set[str] = set()

    for _, name, indices in _array_access_chains(node):
        rank = len(indices)
        extents = list(inputs.arrays.get(name, (rank, (0,) * rank))[1])
        if len(extents) < rank:
            extents = list(extents) + [0] * (rank - len(extents))
        for position, index in enumerate(indices):
            if isinstance(index, C.Number) and not index.is_float:
                extents[position] = max(extents[position], int(index.value) + 1)
            for inner in C.walk(index):
                if isinstance(inner, C.Ident):
                    inputs.integer_like.add(inner.name)
        inputs.arrays[name] = (max(rank, inputs.arrays.get(name, (0, ()))[0]), tuple(extents))
        if "." in name:
            member_array_bases.add(name.split(".", 1)[0])

    # loop bounds and index arithmetic are integer-like
    for n in C.walk(node):
        if isinstance(n, C.For):
            for part in (n.init, n.cond, n.step):
                if part is None:
                    continue
                for inner in C.walk(part):
                    if isinstance(inner, C.Ident):
                        inputs.integer_like.add(inner.name)
        elif isinstance(n, (C.While, C.DoWhile)):
            for inner in C.walk(n.cond):
                if isinstance(inner, C.Ident):
                    inputs.integer_like.add(inner.name)

    array_names = {name.split(".", 1)[0] for name in inputs.arrays} | set(inputs.arrays)
    math_names = {"sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "fmin", "fmax",
                  "min", "max", "fma", "floor", "ceil", "abs", "rsqrt", "hypot",
                  "tan", "atan", "atan2", "sqrtf", "powf", "expf", "logf", "fabsf"}
    for n in C.walk(node):
        if isinstance(n, C.Ident):
            name = n.name
            if name in declared or name in array_names or name in math_names:
                continue
            if name in member_array_bases:
                continue
            inputs.scalars.add(name)
    inputs.scalars -= set(inputs.arrays)
    return inputs


def make_random_environment(
    node: C.Node,
    rng: Optional[np.random.Generator] = None,
    extent: int = 4,
    scalar_range: float = 2.0,
) -> Environment:
    """Build a random but valid :class:`Environment` for a kernel statement."""

    rng = rng or np.random.default_rng(0)
    inputs = infer_kernel_inputs(node)
    env = Environment()

    # Index expressions may add two bound-like scalars (e.g. ``base + j``) and
    # apply small constant offsets (``i + 2``), so arrays get 2*extent + 4
    # elements per dimension; literal subscripts can push a dimension higher.
    safe_extent = 2 * extent + 4
    for name, (rank, min_extents) in inputs.arrays.items():
        dims = tuple(max(safe_extent, me) for me in (min_extents or (0,) * rank))
        if len(dims) < rank:
            dims = dims + (safe_extent,) * (rank - len(dims))
        env.arrays[name] = rng.uniform(-scalar_range, scalar_range, size=dims)

    for name in sorted(inputs.scalars):
        if name in inputs.integer_like:
            env.scalars[name] = int(extent)
        else:
            env.scalars[name] = float(rng.uniform(-scalar_range, scalar_range))
    return env


@dataclass
class VerificationResult:
    """Outcome of an equivalence check."""

    passed: bool
    trials: int
    max_difference: float = 0.0
    message: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def verify_equivalence(
    original: C.Stmt,
    optimized: C.Stmt,
    env: Optional[Environment] = None,
    trials: int = 3,
    rtol: float = 1e-6,
    atol: float = 1e-9,
    extent: int = 4,
    max_iterations: int = 2_000_000,
    seed: int = 0,
) -> VerificationResult:
    """Execute both kernels on identical inputs and compare the results."""

    worst = 0.0
    for trial in range(trials):
        rng = np.random.default_rng(seed + trial)
        base_env = env.copy() if env is not None else make_random_environment(original, rng, extent)
        env_a = base_env.copy()
        env_b = base_env.copy()
        Interpreter(env_a, max_iterations).execute(original)
        Interpreter(env_b, max_iterations).execute(optimized)
        worst = max(worst, env_a.max_difference(env_b))
        if not env_a.allclose(env_b, rtol=rtol, atol=atol):
            return VerificationResult(
                False, trial + 1, worst,
                f"mismatch on trial {trial}: max difference {worst:.3e}",
            )
    return VerificationResult(True, trials, worst, "ok")
