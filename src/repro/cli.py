"""Command-line interface: the ``accsat`` tool.

The paper ships ``accsat`` as a wrapper around a normal C-compiler
invocation (``accsat nvc -O3 kernel.c``).  Offline we cannot invoke NVHPC /
GCC / Clang, so the reproduction's CLI focuses on the part the paper's tool
actually owns: reading OpenACC/OpenMP C, optimizing every kernel, and
writing the saturated source (plus an optional JSON report).  When the
first positional argument looks like a compiler name it is accepted and
recorded in the report for fidelity with the original command line, but no
compiler is spawned.

Examples::

    accsat kernel.c -o kernel.sat.c
    accsat --variant cse+bulk --report report.json nvc kernel.c
    accsat --emit-report-only --variant accsat kernel.c
    accsat --trace trace.json kernel.c

``accsat serve`` is the service mode: the input files become jobs of a
concurrent :class:`~repro.service.OptimizationService` (duplicate inputs
coalesce onto one pipeline run), per-iteration saturation progress can be
streamed with ``--stream``, and the run ends with a service-stats summary::

    accsat serve --workers 4 --anytime kernels/*.c
    accsat serve --workers 8 --cache-dir /tmp/cache --report stats.json a.c a.c b.c
    accsat serve --executor process --workers 2 --cache-dir /tmp/cache kernels/*.c
    accsat serve --trace trace.json --report stats.json kernels/*.c

``--executor process`` runs each job in a supervised worker *process*
instead of a thread: a worker that crashes or hangs is detected, its
orphaned job is requeued through the retry path, and the pool respawns.

``--trace FILE`` (both modes) writes a structured trace of the run: a
JSONL span/event log at FILE (validated by ``benchmarks/check_trace.py``)
plus a Chrome trace-event file next to it (``FILE`` ->
``FILE.chrome.json``, loadable in chrome://tracing or Perfetto).  In
serve mode the trace covers the full job lifecycle — queued, attempts,
retries, degradation, injected faults — with worker spans collected
across the process boundary; ``--report`` additionally embeds the
unified ``MetricsRegistry.snapshot()`` under ``"metrics"``.  Tracing is
strictly observational: outputs are byte-identical to an untraced run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.egraph.runner import RunnerLimits
from repro.egraph.schedule import make_scheduler
from repro.saturator import SaturatorConfig, Variant
from repro.session import DiskCache, OptimizationSession

__all__ = ["build_arg_parser", "build_serve_parser", "main", "serve_main"]

_KNOWN_COMPILERS = {"nvc", "nvcc", "gcc", "cc", "clang", "icc", "pgcc"}


def _add_config_options(parser: argparse.ArgumentParser) -> None:
    """Pipeline-configuration options shared by the optimize and serve modes."""

    parser.add_argument(
        "--variant",
        default="accsat",
        help="generated-code variant: cse, cse+sat, cse+bulk, accsat (default)",
    )
    parser.add_argument(
        "--ruleset",
        default="default",
        help="rewrite rule set: default, extended, fma-only, reassoc-only, none",
    )
    parser.add_argument(
        "--extraction",
        default="dag-greedy",
        choices=["dag-greedy", "tree", "ilp"],
        help="extraction method (default: dag-greedy)",
    )
    parser.add_argument("--node-limit", type=int, default=10_000,
                        help="e-node limit for saturation (default 10000)")
    parser.add_argument("--iter-limit", type=int, default=10,
                        help="iteration limit for saturation (default 10)")
    parser.add_argument("--time-limit", type=float, default=10.0,
                        help="saturation time limit in seconds (default 10)")
    parser.add_argument(
        "--scheduler",
        default="simple",
        help="rule scheduler: simple (default), backoff[:MATCH_LIMIT[:BAN_LENGTH]] "
             "or match-budget[:BUDGET]",
    )
    parser.add_argument(
        "--anytime",
        action="store_true",
        help="extract in-loop every iteration and stop saturating once the "
             "extracted cost plateaus (see --plateau-patience)",
    )
    parser.add_argument(
        "--plateau-patience", type=int, default=3,
        help="with --anytime: consecutive non-improving extractions before "
             "stopping (default 3)",
    )


def _config_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> SaturatorConfig:
    """Validate the shared options and build the :class:`SaturatorConfig`."""

    try:
        variant = Variant.from_name(args.variant)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        make_scheduler(args.scheduler)  # fail fast on a bad spelling
    except ValueError as exc:
        parser.error(str(exc))
    if args.plateau_patience < 1:
        parser.error("--plateau-patience must be at least 1")
    return SaturatorConfig(
        variant=variant,
        ruleset=args.ruleset,
        extraction=args.extraction,
        limits=RunnerLimits(args.node_limit, args.iter_limit, args.time_limit),
        scheduler=args.scheduler,
        anytime_extraction=args.anytime,
        plateau_patience=args.plateau_patience,
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accsat",
        description="Equality-saturation optimizer for OpenACC/OpenMP C kernels "
                    "(ACC Saturator reproduction).",
    )
    parser.add_argument(
        "inputs",
        nargs="+",
        help="input C file(s); an optional leading compiler name (nvc/gcc/clang) "
             "is accepted and ignored",
    )
    parser.add_argument("-o", "--output", help="output file (default: <input>.sat.c)")
    _add_config_options(parser)
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="optimize input files in parallel with N workers (default 1)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        help="batch executor backing --jobs (default: threads when jobs > 1)",
    )
    parser.add_argument(
        "--cache-dir",
        help="content-addressed artifact cache directory; re-runs over "
             "unchanged source+configuration reuse the cached result",
    )
    parser.add_argument("--report", help="write a JSON report of per-kernel statistics")
    parser.add_argument(
        "--emit-report-only",
        action="store_true",
        help="print the per-kernel report to stdout instead of writing code",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the summary line")
    parser.add_argument(
        "--trace",
        help="write a structured trace of the run: a JSONL span/event log "
             "at FILE plus a Chrome trace-event file (chrome://tracing / "
             "Perfetto) next to it; tracing is observational only — outputs "
             "are byte-identical to an untraced run.  Forces the files "
             "through an in-process serial executor so every span lands in "
             "one stream",
    )
    return parser


def _split_inputs(inputs: Sequence[str]) -> tuple[Optional[str], List[Path]]:
    """Separate an optional leading compiler name from the input files."""

    compiler: Optional[str] = None
    files: List[Path] = []
    for index, item in enumerate(inputs):
        if index == 0 and item in _KNOWN_COMPILERS:
            compiler = item
            continue
        files.append(Path(item))
    return compiler, files


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    compiler, files = _split_inputs(args.inputs)
    if not files:
        parser.error("no input files given")

    config = _config_from_args(parser, args)
    variant = config.variant

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    executor_kind = args.executor or ("threads" if args.jobs > 1 else "serial")
    session = OptimizationSession(
        config=config,
        cache=DiskCache(args.cache_dir) if args.cache_dir else None,
        executor=f"{executor_kind}:{args.jobs}",
    )

    overall_report = {
        "compiler": compiler,
        "variant": variant.value,
        "files": [],
    }

    exit_code = 0
    readable: List[Path] = []
    sources: List[str] = []
    for path in files:
        if not path.exists():
            print(f"accsat: error: no such file: {path}", file=sys.stderr)
            exit_code = 1
            continue
        readable.append(path)
        sources.append(path.read_text())

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()

    if tracer is None:
        # the independent per-file sessions run through the executor;
        # outputs are written back in input order either way
        results = session.run_many(
            [(source, path.stem) for source, path in zip(sources, readable)]
        )
    else:
        # traced runs go file-by-file in this process: a tracer cannot
        # follow run_many into a process pool, and the whole point of the
        # trace is one coherent span stream.  Results (and cache effects)
        # are identical to the executor path.
        results = []
        for source, path in zip(sources, readable):
            with tracer.span("file", input=str(path)) as file_span:
                results.append(
                    session.run(
                        source, name_prefix=path.stem,
                        tracer=tracer, trace_parent=file_span.span_id,
                    )
                )

    for path, result in zip(readable, results):
        file_report = {
            "input": str(path),
            "kernels": [k.as_dict() for k in result.kernels],
            "ssa_codegen_time": result.total_ssa_codegen_time,
            "saturation_time": result.total_saturation_time,
        }
        overall_report["files"].append(file_report)

        if args.emit_report_only:
            continue

        output = Path(args.output) if args.output else path.with_suffix(".sat.c")
        output.write_text(result.code)
        if not args.quiet:
            print(
                f"accsat: {path} -> {output} "
                f"({len(result.kernels)} kernel(s), variant={variant.value})"
            )

    if session.cache is not None:
        overall_report["cache"] = session.cache.stats.as_dict()

    if args.report:
        Path(args.report).write_text(json.dumps(overall_report, indent=2))
    if tracer is not None:
        from repro.obs import write_trace_files

        jsonl_path, chrome_path = write_trace_files(
            tracer.records(), args.trace,
            meta={"mode": "optimize", "variant": variant.value},
        )
        if not args.quiet:
            print(f"accsat: trace -> {jsonl_path} (+ {chrome_path})")
    if args.emit_report_only:
        json.dump(overall_report, sys.stdout, indent=2)
        print()
    return exit_code


# ---------------------------------------------------------------------------
# service mode: ``accsat serve``
# ---------------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accsat serve",
        description="Optimize input files through the concurrent optimization "
                    "service: duplicate inputs coalesce onto one pipeline run, "
                    "progress streams per saturation iteration, and the run "
                    "ends with a service-stats summary.",
    )
    parser.add_argument("inputs", nargs="+", help="input C file(s); duplicates allowed")
    _add_config_options(parser)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="worker threads of the service (default 4)",
    )
    parser.add_argument(
        "--executor", default="thread", choices=["thread", "process"],
        help="worker backend: 'thread' runs jobs on worker threads in this "
             "process; 'process' runs each job in a supervised worker process "
             "that survives crashes — a dead worker is respawned and its "
             "orphaned job retried (default: thread)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="disable in-flight request coalescing (every submission runs)",
    )
    parser.add_argument(
        "--cache-dir",
        help="content-addressed artifact cache directory shared by the workers "
             "(default: an in-memory cache for this run)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="print a line per saturation iteration as jobs progress",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="per-job deadline in seconds from submission: a job still "
             "queued past it fails, a running one stops saturating at the "
             "next iteration boundary and returns its best anytime snapshot "
             "as a degraded result (enable --anytime for that fallback)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None,
        help="bound the number of queued jobs (default: unbounded); a full "
             "queue applies --overload-policy to new submissions",
    )
    parser.add_argument(
        "--overload-policy", default="block",
        choices=["block", "reject", "shed", "shed-oldest-lowest-priority"],
        help="what a full queue does to submit: block until space frees, "
             "reject the newcomer, or shed the worst queued job — lowest "
             "priority first, newest as the tie-break (default: block)",
    )
    parser.add_argument(
        "--retries", type=int, default=2,
        help="transient-failure retries per job, with capped exponential "
             "backoff (default 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="overall deadline in seconds (default: wait for every job)",
    )
    parser.add_argument("--report", help="write a JSON report (per-job + service stats)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write .sat.c outputs (report/stats only)")
    parser.add_argument("--quiet", action="store_true", help="suppress per-job lines")
    parser.add_argument(
        "--trace",
        help="write a structured trace of the service run: a JSONL "
             "span/event log at FILE (job/attempt/stage/iteration spans, "
             "retry/shed/fault events, worker spans collected across the "
             "process boundary) plus a Chrome trace-event file next to it; "
             "observational only — outputs are byte-identical to an "
             "untraced run",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``accsat serve`` service mode."""

    from repro.service import (
        JobState,
        OptimizationService,
        ServiceOverloadedError,
    )
    from repro.session import DiskCache, MemoryCache, TieredCache

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    config = _config_from_args(parser, args)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.cache_dir:
        cache = TieredCache(memory=MemoryCache(), disk=DiskCache(args.cache_dir))
    else:
        cache = MemoryCache()

    paths = [Path(item) for item in args.inputs]
    missing = [path for path in paths if not path.exists()]
    for path in missing:
        print(f"accsat serve: error: no such file: {path}", file=sys.stderr)
    paths = [path for path in paths if path.exists()]

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    service = OptimizationService(
        config=config, cache=cache, workers=args.workers,
        executor=args.executor,
        coalesce=not args.no_coalesce,
        max_queue=args.max_queue,
        overload_policy=args.overload_policy,
        max_retries=args.retries,
        tracer=tracer,
    )
    exit_code = 1 if missing else 0
    service.start()
    handles = []
    submitted_paths = []
    for path in paths:
        try:
            handle = service.submit(
                path.read_text(), priority=0, name_prefix=path.stem,
                deadline=args.deadline,
            )
        except ServiceOverloadedError as error:
            print(f"accsat serve: {path} -> rejected: {error}", file=sys.stderr)
            exit_code = 1
            continue
        handles.append(handle)
        submitted_paths.append(path)
    paths = submitted_paths
    deadline_exceeded = False
    if args.stream:
        try:
            for path, handle in zip(paths, handles):
                for event in handle.stream(timeout=args.timeout):
                    cost = (
                        "-" if event.extracted_cost is None
                        else f"{event.extracted_cost:.1f}"
                    )
                    print(
                        f"accsat serve: {path} iter={event.iteration} "
                        f"nodes={event.egraph_nodes} cost={cost}"
                    )
        except TimeoutError:
            deadline_exceeded = True
    if not deadline_exceeded and not service.join(args.timeout):
        deadline_exceeded = True
    if deadline_exceeded:
        print("accsat serve: error: deadline exceeded", file=sys.stderr)
        # don't wait for in-flight pipelines: the workers are daemon
        # threads, cancelling the queue is all a bounded exit needs
        service.stop(wait=False, cancel_pending=True)
        return 1
    service.stop(wait=True)

    # the legacy "service"/"cache" keys stay for stable consumers; the
    # "metrics" document is the full registry snapshot (same counters plus
    # fault-injection counts, phase-time histograms, per-rule counters and
    # the tracer's own bookkeeping), deterministically key-sorted
    report = {"files": [], "service": service.stats.snapshot(),
              "cache": service.session.cache.stats.as_dict(),
              "metrics": service.metrics.snapshot()}
    for path, handle in zip(paths, handles):
        entry = {"input": str(path), "state": handle.state.value,
                 "coalesced": handle.coalesced, "from_cache": handle.from_cache}
        if handle.state is JobState.DONE:
            result = handle.result()
            entry["kernels"] = [k.as_dict() for k in result.kernels]
            entry["degraded"] = result.degraded
            if not args.no_write:
                output = path.with_suffix(".sat.c")
                output.write_text(result.code)
                entry["output"] = str(output)
            if not args.quiet:
                print(
                    f"accsat serve: {path} -> done "
                    f"({len(result.kernels)} kernel(s)"
                    f"{', degraded (deadline)' if result.degraded else ''}"
                    f"{', coalesced' if handle.coalesced else ''}"
                    f"{', cache hit' if handle.from_cache else ''})"
                )
        else:
            entry["error"] = repr(handle.error) if handle.error else None
            exit_code = 1
            if not args.quiet:
                print(f"accsat serve: {path} -> {handle.state.value}: "
                      f"{handle.error}", file=sys.stderr)
        report["files"].append(entry)

    if not args.quiet:
        stats = report["service"]
        print(
            "accsat serve: stats "
            f"submitted={stats['submitted']} runs={stats['pipeline_runs']} "
            f"coalesced={stats['coalesced']} cache_hits={stats['cache_hits']} "
            f"failed={stats['failed']} degraded={stats['degraded']} "
            f"retried={stats['retried']} rejected={stats['rejected']} "
            f"shed={stats['shed']}"
        )
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2))
    if tracer is not None:
        from repro.obs import write_trace_files

        jsonl_path, chrome_path = write_trace_files(
            tracer.records(), args.trace,
            meta={"mode": "serve", "executor": args.executor,
                  "workers": args.workers},
        )
        if not args.quiet:
            print(f"accsat serve: trace -> {jsonl_path} (+ {chrome_path})")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
