"""Cost models used by extraction (paper §V-B)."""

from repro.cost.model import (
    AccSaturatorCostModel,
    CostModel,
    CostWeights,
    DEFAULT_COST_MODEL,
    OpClass,
    classify_op,
)

__all__ = [
    "AccSaturatorCostModel",
    "CostModel",
    "CostWeights",
    "DEFAULT_COST_MODEL",
    "OpClass",
    "classify_op",
]
