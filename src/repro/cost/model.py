"""ACC Saturator's cost model.

Paper §V-B: *"constant numbers pose no cost, each input variable or φ counts
as 1, all computational operations except division and modular arithmetic
count as 10, and each memory access, division, modular arithmetic, or
function call counts as 100."*

The weights are configurable (:class:`CostWeights`) so that the ablation
benchmarks can study the sensitivity of extraction to the cost assignment,
which the paper flags as future work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.egraph.egraph import ENode

__all__ = [
    "OpClass",
    "CostWeights",
    "CostModel",
    "AccSaturatorCostModel",
    "DEFAULT_COST_MODEL",
    "classify_op",
]


class OpClass(enum.Enum):
    """Coarse operation classes distinguished by the paper's cost model."""

    CONSTANT = "constant"
    VARIABLE = "variable"
    PHI = "phi"
    COMPUTE = "compute"
    EXPENSIVE = "expensive"  # memory access, division, modulo, call
    STRUCTURAL = "structural"  # casts and other zero-compute wrappers


#: Operators considered plain computation (cost 10 by default).
_COMPUTE_OPS = frozenset(
    {"+", "-", "*", "neg", "fma", "<", ">", "<=", ">=", "==", "!=",
     "&&", "||", "!", "&", "|", "^", "<<", ">>", "~", "min", "max",
     "ternary"}
)

#: Operators priced as expensive (cost 100 by default).
_EXPENSIVE_OPS = frozenset({"load", "store", "/", "%", "call"})

#: Operators that only change the view of a value.
_STRUCTURAL_OPS = frozenset({"cast", "member", "addr", "deref"})

#: φ-style operators introduced by the SSA builder.
_PHI_OPS = frozenset({"phi", "phi-loop"})


def classify_op(enode: ENode) -> OpClass:
    """Classify an e-node according to the paper's cost categories."""

    op = enode.op
    if op == "num":
        return OpClass.CONSTANT
    if op == "sym":
        return OpClass.VARIABLE
    if op in _PHI_OPS:
        return OpClass.PHI
    if op in _EXPENSIVE_OPS:
        return OpClass.EXPENSIVE
    if op in _STRUCTURAL_OPS:
        return OpClass.STRUCTURAL
    if op in _COMPUTE_OPS:
        return OpClass.COMPUTE
    # Unknown operators are treated as plain computation so that new rules
    # never make extraction blow up.
    return OpClass.COMPUTE


@dataclass(frozen=True)
class CostWeights:
    """Per-class cost weights (defaults are the paper's values)."""

    constant: float = 0.0
    variable: float = 1.0
    phi: float = 1.0
    compute: float = 10.0
    expensive: float = 100.0
    structural: float = 0.0

    def of(self, op_class: OpClass) -> float:
        # OpClass values are the field names, so this is a direct lookup
        # (building a dict per call showed up in extraction profiles).
        return getattr(self, op_class.value)


class CostModel:
    """Base cost model: price one e-node (children are priced separately)."""

    def __init__(self, weights: CostWeights | None = None) -> None:
        self._weights = weights or CostWeights()
        #: op -> cost memo (the classification depends only on the operator,
        #: and extraction prices the same operators millions of times).
        self._op_cost: dict = {}

    @property
    def weights(self) -> CostWeights:
        return self._weights

    @weights.setter
    def weights(self, value: CostWeights) -> None:
        # invalidate the per-op memo, or re-priced models would keep
        # serving costs computed under the old weights
        self._weights = value
        self._op_cost.clear()

    def enode_cost(self, enode: ENode) -> float:
        """Cost contribution of *enode* itself."""

        cost = self._op_cost.get(enode.op)
        if cost is None:
            cost = self._weights.of(classify_op(enode))
            self._op_cost[enode.op] = cost
        return cost

    def term_cost(self, term) -> float:
        """DAG-unaware cost of a whole term (every node counted)."""

        from repro.egraph.language import Term

        assert isinstance(term, Term)
        total = self.enode_cost(ENode(term.op, (), term.payload))
        for child in term.children:
            total += self.term_cost(child)
        return total

    def term_dag_cost(self, term) -> float:
        """Cost of a term with structurally identical subterms counted once."""

        from repro.egraph.language import Term

        assert isinstance(term, Term)
        seen: set = set()
        total = 0.0

        def visit(t: Term) -> None:
            nonlocal total
            if t in seen:
                return
            seen.add(t)
            total += self.enode_cost(ENode(t.op, (), t.payload))
            for child in t.children:
                visit(child)

        visit(term)
        return total


class AccSaturatorCostModel(CostModel):
    """The exact model of the paper (kept as a named class for clarity)."""


#: Shared default instance.
DEFAULT_COST_MODEL = AccSaturatorCostModel()
