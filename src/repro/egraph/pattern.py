"""Patterns and e-matching.

A pattern is a term whose leaves may be *pattern variables* (spelled ``?x``
in the textual syntax).  E-matching finds, for a given e-class, every
substitution of pattern variables to e-class ids such that the pattern is
represented in the class.  This is the search half of a rewrite rule.

The textual syntax accepted by :func:`parse_pattern` is a tiny s-expression
language, e.g. the FMA1 rule of the paper (Table I) is written::

    (+ ?a (* ?b ?c))   ->   (fma ?a ?b ?c)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.language import Term

__all__ = ["PatternVar", "Pattern", "parse_pattern", "Substitution"]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable, e.g. ``?a``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A substitution maps pattern-variable names to e-class ids.
Substitution = Dict[str, int]

PatternNode = Union["Pattern", PatternVar]


@dataclass(frozen=True)
class Pattern:
    """A pattern term: an operator applied to sub-patterns or variables."""

    op: str
    children: Tuple[PatternNode, ...] = ()
    payload: object = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_term(term: Term) -> "Pattern":
        """Lift a ground term into a (variable-free) pattern."""

        return Pattern(
            term.op,
            tuple(Pattern.from_term(c) for c in term.children),
            term.payload,
        )

    def variables(self) -> List[str]:
        """Names of the pattern variables, in first-occurrence order."""

        names: List[str] = []

        def visit(node: PatternNode) -> None:
            if isinstance(node, PatternVar):
                if node.name not in names:
                    names.append(node.name)
                return
            for child in node.children:
                visit(child)

        visit(self)
        return names

    # ------------------------------------------------------------------
    # E-matching
    # ------------------------------------------------------------------

    def match_class(self, egraph: EGraph, eclass_id: int) -> Iterator[Substitution]:
        """Yield every substitution under which this pattern is in the class."""

        yield from _match_pattern(egraph, self, egraph.find(eclass_id), {})

    def search(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Search the whole e-graph; returns ``(eclass_id, substitution)`` pairs."""

        matches: List[Tuple[int, Substitution]] = []
        for eclass in list(egraph.eclasses()):
            for subst in self.match_class(egraph, eclass.id):
                matches.append((eclass.id, subst))
        return matches

    # ------------------------------------------------------------------
    # Instantiation (used by the applier half of rewrites)
    # ------------------------------------------------------------------

    def instantiate(self, egraph: EGraph, subst: Substitution) -> int:
        """Add this pattern to the e-graph under *subst*; return the class id."""

        if self.op == "?" and len(self.children) == 1 and isinstance(self.children[0], PatternVar):
            # a bare-variable right-hand side (e.g. the `(+ ?a 0) => ?a`
            # identity): the result is simply the bound class
            return egraph.find(subst[self.children[0].name])
        child_ids: List[int] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                child_ids.append(subst[child.name])
            else:
                child_ids.append(child.instantiate(egraph, subst))
        return egraph.add(ENode(self.op, tuple(child_ids), self.payload))

    def to_term(self, bindings: Dict[str, Term]) -> Term:
        """Instantiate into a plain term given variable-to-term bindings."""

        children: List[Term] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                children.append(bindings[child.name])
            else:
                children.append(child.to_term(bindings))
        return Term(self.op, tuple(children), self.payload)

    def __str__(self) -> str:
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            if self.op == "num":
                return repr(self.payload)
            if self.op == "sym":
                return str(self.payload)
            return f"({label})"
        return f"({label} {' '.join(str(c) for c in self.children)})"


def _match_pattern(
    egraph: EGraph,
    pattern: PatternNode,
    eclass_id: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    """Backtracking e-matcher."""

    eclass_id = egraph.find(eclass_id)

    if isinstance(pattern, PatternVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[pattern.name] = eclass_id
            yield new_subst
        elif egraph.find(bound) == eclass_id:
            yield subst
        return

    for enode in egraph.nodes_of(eclass_id):
        if enode.op != pattern.op:
            continue
        if pattern.payload is not None and enode.payload != pattern.payload:
            continue
        if len(enode.children) != len(pattern.children):
            continue
        yield from _match_children(egraph, pattern.children, enode.children, 0, subst)


def _match_children(
    egraph: EGraph,
    patterns: Sequence[PatternNode],
    child_ids: Sequence[int],
    index: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    if index == len(patterns):
        yield subst
        return
    for new_subst in _match_pattern(egraph, patterns[index], child_ids[index], subst):
        yield from _match_children(egraph, patterns, child_ids, index + 1, new_subst)


# ---------------------------------------------------------------------------
# Textual pattern syntax
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")


def parse_pattern(text: str) -> Pattern:
    """Parse the s-expression pattern syntax.

    Leaves: ``?x`` is a pattern variable, a number literal is a ``num``
    term, and any other atom is a ``sym`` leaf.  ``(op child...)`` builds an
    operator node; ``call:sqrt`` style atoms set the payload.
    """

    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise ValueError("empty pattern")
    pos = 0

    def parse_node() -> PatternNode:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        if token == "(":
            head = tokens[pos]
            pos += 1
            op, _, payload = head.partition(":")
            children: List[PatternNode] = []
            while tokens[pos] != ")":
                children.append(parse_node())
            pos += 1  # consume ")"
            return Pattern(op, tuple(children), payload or None)
        if token == ")":
            raise ValueError("unexpected ')' in pattern")
        return _parse_atom(token)

    node = parse_node()
    if pos != len(tokens):
        raise ValueError(f"trailing tokens in pattern: {tokens[pos:]}")
    if isinstance(node, PatternVar):
        return Pattern("?", (node,))  # degenerate single-variable pattern
    return node


def _parse_atom(token: str) -> PatternNode:
    if token.startswith("?"):
        return PatternVar(token[1:])
    try:
        if "." in token or "e" in token.lower():
            return Pattern("num", (), float(token))
        return Pattern("num", (), int(token))
    except ValueError:
        return Pattern("sym", (), token)
