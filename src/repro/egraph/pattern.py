"""Patterns, compiled patterns, and op-indexed e-matching.

A pattern is a term whose leaves may be *pattern variables* (spelled ``?x``
in the textual syntax).  E-matching finds, for a given e-class, every
substitution of pattern variables to e-class ids such that the pattern is
represented in the class.  This is the search half of a rewrite rule.

The textual syntax accepted by :func:`parse_pattern` is a tiny s-expression
language, e.g. the FMA1 rule of the paper (Table I) is written::

    (+ ?a (* ?b ?c))   ->   (fma ?a ?b ?c)

Two matching engines coexist:

* the **naive reference matcher** (:meth:`Pattern.search_naive`,
  :func:`_match_pattern`) — a backtracking generator that re-walks the
  pattern dataclass tree against every e-class, through the ENode boundary
  views.  It is kept as the executable specification the fast engine is
  tested against.
* the **compiled matcher** (:class:`CompiledPattern`) — each pattern is
  lowered once into a specialised Python function that indexes the
  e-graph's interned arena directly.  A call-time prologue resolves the
  pattern's operator names and payload constants to the graph's interned
  ids (a pattern op the graph never interned cannot match anywhere, so the
  function returns immediately); the inner loops then walk per-class
  ``buckets_by_op_id`` buckets of raw key tuples — child ids are
  ``key[i]`` index reads, arity is ``len(key)``, payload guards are
  integer membership tests.  No attribute lookups or node objects survive
  into the match path.  ``CompiledPattern.search`` optionally takes a
  ``since`` version stamp and then skips classes untouched since that
  stamp — the incremental half of the engine (see
  :meth:`repro.egraph.egraph.EGraph.rebuild` for how *touched* stamps are
  propagated).

:func:`compile_pattern` memoises the lowering, and :func:`parse_pattern`
memoises parsing, so building a ruleset repeatedly (as benchmark loops do)
costs one compilation total per distinct pattern.  The compiled functions
are graph-agnostic: interned ids are resolved per call, so one compiled
pattern serves every e-graph in the process.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.egraph.egraph import EGraph, ENode
from repro.egraph.language import Term

__all__ = [
    "PatternVar",
    "Pattern",
    "CompiledPattern",
    "compile_pattern",
    "parse_pattern",
    "Substitution",
]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable, e.g. ``?a``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A substitution maps pattern-variable names to e-class ids.
Substitution = Dict[str, int]

PatternNode = Union["Pattern", PatternVar]


@dataclass(frozen=True)
class Pattern:
    """A pattern term: an operator applied to sub-patterns or variables."""

    op: str
    children: Tuple[PatternNode, ...] = ()
    payload: object = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_term(term: Term) -> "Pattern":
        """Lift a ground term into a (variable-free) pattern."""

        return Pattern(
            term.op,
            tuple(Pattern.from_term(c) for c in term.children),
            term.payload,
        )

    def variables(self) -> List[str]:
        """Names of the pattern variables, in first-occurrence order."""

        names: List[str] = []

        def visit(node: PatternNode) -> None:
            if isinstance(node, PatternVar):
                if node.name not in names:
                    names.append(node.name)
                return
            for child in node.children:
                visit(child)

        visit(self)
        return names

    # ------------------------------------------------------------------
    # E-matching
    # ------------------------------------------------------------------

    def compile(self) -> "CompiledPattern":
        """The (memoised) compiled form of this pattern."""

        return compile_pattern(self)

    def match_class(self, egraph: EGraph, eclass_id: int) -> Iterator[Substitution]:
        """Yield every substitution under which this pattern is in the class."""

        yield from _match_pattern(egraph, self, egraph.find(eclass_id), {})

    def search(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Search the whole e-graph; returns ``(eclass_id, substitution)`` pairs.

        Uses the compiled, op-indexed engine; :meth:`search_naive` is the
        slow reference implementation.
        """

        return compile_pattern(self).search(egraph)

    def search_naive(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Reference search: backtracking generator over every e-class."""

        matches: List[Tuple[int, Substitution]] = []
        for eclass in list(egraph.eclasses()):
            for subst in self.match_class(egraph, eclass.id):
                matches.append((eclass.id, subst))
        return matches

    # ------------------------------------------------------------------
    # Instantiation (used by the applier half of rewrites)
    # ------------------------------------------------------------------

    def instantiate(self, egraph: EGraph, subst: Substitution) -> int:
        """Add this pattern to the e-graph under *subst*; return the class id."""

        if self.op == "?" and len(self.children) == 1 and isinstance(self.children[0], PatternVar):
            # a bare-variable right-hand side (e.g. the `(+ ?a 0) => ?a`
            # identity): the result is simply the bound class
            return egraph.find(subst[self.children[0].name])
        child_ids: List[int] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                child_ids.append(subst[child.name])
            else:
                child_ids.append(child.instantiate(egraph, subst))
        return egraph.add(ENode(self.op, tuple(child_ids), self.payload))

    def to_term(self, bindings: Dict[str, Term]) -> Term:
        """Instantiate into a plain term given variable-to-term bindings."""

        children: List[Term] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                children.append(bindings[child.name])
            else:
                children.append(child.to_term(bindings))
        return Term(self.op, tuple(children), self.payload)

    def __str__(self) -> str:
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            if self.op == "num":
                return repr(self.payload)
            if self.op == "sym":
                return str(self.payload)
            return f"({label})"
        return f"({label} {' '.join(str(c) for c in self.children)})"


# ---------------------------------------------------------------------------
# Compiled patterns
# ---------------------------------------------------------------------------


class _MatcherCodegen:
    """Lower one pattern into a specialised Python search function.

    The generated function resolves every operator / payload constant of
    the pattern to the target graph's interned ids in a short prologue
    (returning immediately when the graph has never interned one of them),
    then runs one ``for`` loop per operator node of the pattern over the
    candidate class's ``buckets_by_op_id`` bucket of raw key tuples.
    Arity and payload pre-filters are inline integer guards, child class
    ids are direct ``key[i]`` reads, and pattern variables bind to plain
    locals (a repeated variable becomes an ``!=`` guard).  No interpreter
    dispatch, node objects, or per-binding dict copies survive into the
    hot loop; a substitution dict is only built when a complete match is
    emitted.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.lines: List[str] = []
        self.consts: Dict[str, object] = {}
        self.slots: Dict[str, str] = {}
        self.counter = 0
        self.order: List[str] = pattern.variables()
        self.pattern = pattern
        #: op name -> prologue local holding its interned id.
        self.op_locals: Dict[str, str] = {}
        #: (payload type name, payload) -> prologue local holding its
        #: matching-id tuple.
        self.payload_locals: Dict[tuple, str] = {}
        self.prologue: List[str] = []

    def _name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _const(self, value: object) -> str:
        name = f"_k{len(self.consts)}"
        self.consts[name] = value
        return name

    def _op_local(self, op: str) -> str:
        """Prologue local for the interned id of *op* (early-out if absent)."""

        local = self.op_locals.get(op)
        if local is None:
            local = f"_o{len(self.op_locals)}"
            self.op_locals[op] = local
            self.prologue.append(f"{local} = _opid({self._const(op)})")
            self.prologue.append(f"if {local} is None: return")
        return local

    def _payload_local(self, payload: object) -> str:
        """Prologue local for the ids matching *payload* (early-out if none).

        Payload guards mirror the object engine's plain ``!=`` check —
        type-insensitive — so the ids of every ``==``-equal interned
        payload are accepted (``EGraph.payload_ids_matching``).
        """

        memo_key = (type(payload).__name__, payload)
        local = self.payload_locals.get(memo_key)
        if local is None:
            local = f"_p{len(self.payload_locals)}"
            self.payload_locals[memo_key] = local
            self.prologue.append(f"{local} = _pids({self._const(payload)})")
            self.prologue.append(f"if not {local}: return")
        return local

    def _emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _emit_canon(self, depth: int, target: str, expr: str) -> None:
        """Assign the canonical id of *expr* to *target*.

        Child ids in arena keys are canonical whenever search runs on a
        rebuilt graph (the runner always does), so the emitted code checks
        the union-find parent array inline and only pays the ``find`` call
        on a stale id.
        """

        self._emit(depth, f"{target} = {expr}")
        self._emit(depth, f"if parent[{target}] != {target}: {target} = find({target})")

    def _emit_seq(self, items: List[Tuple[PatternNode, str, bool]], depth: int) -> None:
        """Emit matching code for *items* (node, class-id expression, canonical)."""

        if not items:
            subst = ", ".join(f"{name!r}: {self.slots[name]}" for name in self.order)
            self._emit(depth, f"append((cid, {{{subst}}}))")
            return
        (node, expr, is_canonical), rest = items[0], items[1:]
        if isinstance(node, PatternVar):
            bound = self.slots.get(node.name)
            if bound is None:
                var = self._name("v")
                self.slots[node.name] = var
                if is_canonical:
                    self._emit(depth, f"{var} = {expr}")
                else:
                    self._emit_canon(depth, var, expr)
            else:
                if is_canonical:
                    self._emit(depth, f"if {bound} != {expr}: continue")
                else:
                    tmp = self._name("t")
                    self._emit_canon(depth, tmp, expr)
                    self._emit(depth, f"if {bound} != {tmp}: continue")
            self._emit_seq(rest, depth)
            return

        if is_canonical:
            cls_expr = expr
        else:
            cls_expr = self._name("c")
            self._emit_canon(depth, cls_expr, expr)
        key = self._name("n")
        self._emit(depth, f"for {key} in buckets({cls_expr}, {self._op_local(node.op)}):")
        depth += 1
        self._emit(depth, f"if len({key}) != {2 + len(node.children)}: continue")
        if node.payload is not None:
            self._emit(
                depth,
                f"if {key}[1] not in {self._payload_local(node.payload)}: continue",
            )
        child_items = [
            (child, f"{key}[{i + 2}]", False) for i, child in enumerate(node.children)
        ]
        self._emit_seq(child_items + rest, depth)

    def build(self):
        self._emit_seq([(self.pattern, "cid", True)], 2)
        body = self.lines
        self.lines = []
        self._emit(0, "def _search(eg, candidates, out):")
        self._emit(1, "_opid = eg._op_ids.get")
        self._emit(1, "_pids = eg.payload_ids_matching")
        for line in self.prologue:
            self._emit(1, line)
        self._emit(1, "find = eg.uf.find")
        self._emit(1, "parent = eg.uf._parent")
        self._emit(1, "buckets = eg.buckets_by_op_id")
        self._emit(1, "append = out.append")
        self._emit(1, "for cid in candidates:")
        self.lines.extend(body)
        namespace: Dict[str, object] = {"len": len}
        namespace.update(self.consts)
        exec("\n".join(self.lines), namespace)  # noqa: S102 - trusted codegen
        return namespace["_search"]


#: Process-wide sequence for instantiator identity (indexes the per-graph
#: resolved-constant cache ``EGraph._inst_consts``).
_INST_SEQ = iter(range(1 << 62)).__next__


class _InstantiatorCodegen:
    """Lower a right-hand-side pattern into a specialised builder function.

    Emits a statement sequence mirroring the recursive instantiation order
    (children left-to-right, bottom-up) with the arena's hashcons **hit
    path inlined**: per node, build the ``(op_id, payload_id, child...)``
    key, canonicalise the child ids only if one went stale (an inline
    parent-array check — a sibling's add can merge a child away via
    constant folding), probe ``eg.hashcons`` directly, and only fall back
    to ``eg.add_key`` on a miss.  Saturation overwhelmingly re-derives
    nodes that already exist, so the common per-node cost is one tuple
    build plus one dict probe, with no function call.  The pattern's
    operator/payload ids are interned once per (graph, pattern) and cached
    in ``eg._inst_consts`` (interned ids are append-only, so the cache
    never goes stale), making the per-call prologue two attribute binds
    and one dict probe.
    """

    def __init__(self) -> None:
        self.const_values: List[object] = []   # op names / payloads, in order
        self.const_kinds: List[str] = []       # "op" | "payload"
        self.id_locals: Dict[tuple, str] = {}
        self.body: List[str] = []
        self.var_locals: Dict[str, str] = {}
        self.counter = 0

    def _id_local(self, kind: str, value: object) -> str:
        memo_key = (kind, type(value).__name__, value)
        local = self.id_locals.get(memo_key)
        if local is None:
            local = f"_i{len(self.id_locals)}"
            self.id_locals[memo_key] = local
            self.const_values.append(value)
            self.const_kinds.append(kind)
        return local

    def _name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _node(self, node: PatternNode) -> str:
        """Emit statements computing *node*'s class id; return its local."""

        if isinstance(node, PatternVar):
            local = self.var_locals.get(node.name)
            if local is None:
                local = self._name("_s")
                self.var_locals[node.name] = local
                self.body.append(f"{local} = subst[{node.name!r}]")
            return local
        child_vars = [self._node(child) for child in node.children]
        key = self._name("_t")
        value = self._name("_v")
        payload_expr = (
            "0" if node.payload is None else self._id_local("payload", node.payload)
        )
        parts = [self._id_local("op", node.op), payload_expr]
        parts.extend(child_vars)
        self.body.append(f"{key} = ({', '.join(parts)},)")
        if child_vars:
            stale = " or ".join(f"parent[{v}] != {v}" for v in child_vars)
            canon = ", ".join(f"find({v})" for v in child_vars)
            self.body.append(f"if {stale}:")
            self.body.append("    find = eg.uf.find")
            self.body.append(f"    {key} = ({', '.join(parts[:2])}, {canon},)")
        self.body.append(f"{value} = hc({key})")
        self.body.append(f"if {value} is None: {value} = eg.add_key({key})")
        self.body.append(
            f"elif parent[{value}] != {value}: {value} = eg.uf.find({value})"
        )
        return value

    def build(self, pattern: Pattern):
        result = self._node(pattern)
        seq = _INST_SEQ()
        unpack = ", ".join(f"_i{i}" for i in range(len(self.id_locals)))
        lines = [
            "def _instantiate(eg, subst):",
            "    hc = eg.hashcons.get",
            "    parent = eg.uf._parent",
            f"    _ids = eg._inst_consts.get({seq})",
            "    if _ids is None:",
            "        _ids = _resolve(eg)",
            f"        eg._inst_consts[{seq}] = _ids",
        ]
        if unpack:
            lines.append(f"    {unpack}{',' if len(self.id_locals) == 1 else ''} = _ids")
        lines.extend(f"    {line}" for line in self.body)
        lines.append(f"    return {result}")

        kinds = tuple(self.const_kinds)
        values = tuple(self.const_values)

        def _resolve(eg) -> tuple:
            return tuple(
                eg._intern_op(value) if kind == "op" else eg._intern_payload(value)
                for kind, value in zip(kinds, values)
            )

        namespace: Dict[str, object] = {"_resolve": _resolve}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        return namespace["_instantiate"]


class CompiledPattern:
    """A pattern lowered into specialised match/instantiate functions."""

    __slots__ = ("pattern", "vars", "root_op", "_fn", "_inst", "_bare_var")

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.vars: Tuple[str, ...] = tuple(pattern.variables())
        self.root_op = pattern.op
        self._fn = _MatcherCodegen(pattern).build()
        # a bare-variable pattern `?x` parses as ("?" ?x); its instantiation
        # is just the bound class
        self._bare_var: Optional[str] = None
        if (
            pattern.op == "?"
            and len(pattern.children) == 1
            and isinstance(pattern.children[0], PatternVar)
        ):
            self._bare_var = pattern.children[0].name
            self._inst = None
        else:
            self._inst = _InstantiatorCodegen().build(pattern)

    def instantiate(self, egraph: EGraph, subst: Substitution) -> int:
        """Add the pattern under *subst*; returns the e-class id."""

        if self._bare_var is not None:
            return egraph.find(subst[self._bare_var])
        return self._inst(egraph, subst)

    def match_class(self, egraph: EGraph, eclass_id: int) -> List[Substitution]:
        """All substitutions under which the pattern is in the class."""

        out: List[Tuple[int, Substitution]] = []
        self._fn(egraph, (egraph.find(eclass_id),), out)
        return [subst for _, subst in out]

    def search(
        self, egraph: EGraph, since: Optional[int] = None
    ) -> List[Tuple[int, Substitution]]:
        """Search the e-graph; returns ``(eclass_id, substitution)`` pairs.

        Root candidates come from the e-graph's op-index, so only classes
        containing the root operator are visited.  When *since* is given,
        classes whose ``touched`` stamp is ``<= since`` are skipped — sound
        because :meth:`EGraph.rebuild` propagates touches upward from every
        mutated class (matches rooted at a skipped class are exactly the
        matches found by the previous scan).
        """

        matches: List[Tuple[int, Substitution]] = []
        candidates = egraph.classes_with_op(self.root_op)
        if not candidates:
            return matches
        if since is not None:
            classes = egraph.classes
            candidates = [c for c in candidates if classes[c].touched > since]
        # class-id order == creation order, matching the naive matcher's
        # iteration over the classes dict (keeps runs deterministic)
        self._fn(egraph, sorted(candidates), matches)
        return matches


@lru_cache(maxsize=None)
def compile_pattern(pattern: Pattern) -> CompiledPattern:
    """Lower *pattern* to its compiled form (memoised per distinct pattern)."""

    return CompiledPattern(pattern)


# ---------------------------------------------------------------------------
# Naive reference matcher
# ---------------------------------------------------------------------------


def _match_pattern(
    egraph: EGraph,
    pattern: PatternNode,
    eclass_id: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    """Backtracking e-matcher (reference implementation).

    The substitution dict is copied only when a *new* variable is bound;
    an already-bound variable is checked against the canonical class id
    and the incoming dict is yielded as-is.
    """

    eclass_id = egraph.find(eclass_id)

    if isinstance(pattern, PatternVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[pattern.name] = eclass_id
            yield new_subst
        elif bound == eclass_id or egraph.find(bound) == eclass_id:
            yield subst
        return

    for enode in egraph.nodes_of(eclass_id):
        if enode.op != pattern.op:
            continue
        if pattern.payload is not None and enode.payload != pattern.payload:
            continue
        if len(enode.children) != len(pattern.children):
            continue
        yield from _match_children(egraph, pattern.children, enode.children, 0, subst)


def _match_children(
    egraph: EGraph,
    patterns: Sequence[PatternNode],
    child_ids: Sequence[int],
    index: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    if index == len(patterns):
        yield subst
        return
    for new_subst in _match_pattern(egraph, patterns[index], child_ids[index], subst):
        yield from _match_children(egraph, patterns, child_ids, index + 1, new_subst)


# ---------------------------------------------------------------------------
# Textual pattern syntax
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")


@lru_cache(maxsize=1024)
def parse_pattern(text: str) -> Pattern:
    """Parse the s-expression pattern syntax.

    Leaves: ``?x`` is a pattern variable, a number literal is a ``num``
    term, and any other atom is a ``sym`` leaf.  ``(op child...)`` builds an
    operator node; ``call:sqrt`` style atoms set the payload.

    Patterns are immutable, so parses are memoised — rulesets rebuilt in a
    loop reuse both the pattern objects and their compiled programs.
    """

    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise ValueError("empty pattern")
    pos = 0

    def parse_node() -> PatternNode:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        if token == "(":
            head = tokens[pos]
            pos += 1
            op, _, payload = head.partition(":")
            children: List[PatternNode] = []
            while tokens[pos] != ")":
                children.append(parse_node())
            pos += 1  # consume ")"
            return Pattern(op, tuple(children), payload or None)
        if token == ")":
            raise ValueError("unexpected ')' in pattern")
        return _parse_atom(token)

    node = parse_node()
    if pos != len(tokens):
        raise ValueError(f"trailing tokens in pattern: {tokens[pos:]}")
    if isinstance(node, PatternVar):
        return Pattern("?", (node,))  # degenerate single-variable pattern
    return node


def _parse_atom(token: str) -> PatternNode:
    if token.startswith("?"):
        return PatternVar(token[1:])
    try:
        if "." in token or "e" in token.lower():
            return Pattern("num", (), float(token))
        return Pattern("num", (), int(token))
    except ValueError:
        return Pattern("sym", (), token)
