"""Patterns, compiled patterns, and op-indexed e-matching.

A pattern is a term whose leaves may be *pattern variables* (spelled ``?x``
in the textual syntax).  E-matching finds, for a given e-class, every
substitution of pattern variables to e-class ids such that the pattern is
represented in the class.  This is the search half of a rewrite rule.

The textual syntax accepted by :func:`parse_pattern` is a tiny s-expression
language, e.g. the FMA1 rule of the paper (Table I) is written::

    (+ ?a (* ?b ?c))   ->   (fma ?a ?b ?c)

Three matching engines coexist:

* the **naive reference matcher** (:meth:`Pattern.search_naive`,
  :func:`_match_pattern`) — a backtracking generator that re-walks the
  pattern dataclass tree against every e-class, through the ENode boundary
  views.  It is kept as the executable specification the fast engine is
  tested against.
* the **compiled matcher** (:class:`CompiledPattern`) — each pattern is
  lowered once into a specialised Python function that indexes the
  e-graph's interned arena directly.  A call-time prologue resolves the
  pattern's operator names and payload constants to the graph's interned
  ids (a pattern op the graph never interned cannot match anywhere, so the
  function returns immediately); the inner loops then walk per-class
  ``buckets_by_op_id`` buckets of raw key tuples — child ids are
  ``key[i]`` index reads, arity is ``len(key)``, payload guards are
  integer membership tests.  No attribute lookups or node objects survive
  into the match path.  ``CompiledPattern.search`` optionally takes a
  ``since`` version stamp and then skips classes untouched since that
  stamp — the incremental half of the engine (see
  :meth:`repro.egraph.egraph.EGraph.rebuild` for how *touched* stamps are
  propagated).

* the **relational matcher** (PR 7) — when numpy is available (see
  :mod:`repro.egraph.columns`), a pattern with two or more operator nodes
  is executed as a *join* over the e-graph's columnar store instead of a
  nested scan: each operator node becomes an *atom* whose relation is the
  per-op column slice filtered by arity/payload, and shared variables
  (plus the parent-child links of the pattern tree) become hash-join keys
  (encoded into int64 and resolved by sort + ``searchsorted``).  The join
  plan is deterministic: the root atom leads (it carries the ``since``
  touched-filter), then greedily the smallest remaining connected
  relation, ties broken by op id then pre-order atom index.  Join results
  are ordered by lexsorting ``(root class id, rank_0, .., rank_k)`` where
  ``rank_i`` is atom *i*'s position inside its class's deterministic
  :meth:`~repro.egraph.egraph.EGraph.buckets_by_op_id` bucket order —
  which reproduces the compiled matcher's nested-loop emission order
  exactly (two results agreeing on all earlier ranks chose identical
  rows, hence atom *i* draws from the same bucket, where rank order *is*
  iteration order).  Trivial (single-atom) patterns, graphs without
  numpy, and ``REPRO_NO_NUMPY=1`` runs fall back to the compiled
  matchers; both backends produce identical match lists.

Internally matches flow as flat **rows** ``(root_class_id, v0, v1, ..)``
with variable values in :meth:`Pattern.variables` order (what
``search_rows`` returns and the runner's apply loop consumes); the public
``search``/``match_class`` APIs wrap them into the historical
``(class id, substitution dict)`` form in the same order.

:func:`compile_pattern` memoises the lowering, and :func:`parse_pattern`
memoises parsing, so building a ruleset repeatedly (as benchmark loops do)
costs one compilation total per distinct pattern.  The compiled functions
are graph-agnostic: interned ids are resolved per call, so one compiled
pattern serves every e-graph in the process.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.egraph import columns
from repro.egraph.egraph import EGraph, ENode
from repro.egraph.language import Term

__all__ = [
    "PatternVar",
    "Pattern",
    "CompiledPattern",
    "compile_pattern",
    "compile_row_applier",
    "compile_row_instantiator",
    "compile_rhs_plan",
    "rhs_pure_partition",
    "parse_pattern",
    "Substitution",
]


@dataclass(frozen=True)
class PatternVar:
    """A pattern variable, e.g. ``?a``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A substitution maps pattern-variable names to e-class ids.
Substitution = Dict[str, int]

PatternNode = Union["Pattern", PatternVar]


@dataclass(frozen=True)
class Pattern:
    """A pattern term: an operator applied to sub-patterns or variables."""

    op: str
    children: Tuple[PatternNode, ...] = ()
    payload: object = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_term(term: Term) -> "Pattern":
        """Lift a ground term into a (variable-free) pattern."""

        return Pattern(
            term.op,
            tuple(Pattern.from_term(c) for c in term.children),
            term.payload,
        )

    def variables(self) -> List[str]:
        """Names of the pattern variables, in first-occurrence order."""

        names: List[str] = []

        def visit(node: PatternNode) -> None:
            if isinstance(node, PatternVar):
                if node.name not in names:
                    names.append(node.name)
                return
            for child in node.children:
                visit(child)

        visit(self)
        return names

    # ------------------------------------------------------------------
    # E-matching
    # ------------------------------------------------------------------

    def compile(self) -> "CompiledPattern":
        """The (memoised) compiled form of this pattern."""

        return compile_pattern(self)

    def match_class(self, egraph: EGraph, eclass_id: int) -> Iterator[Substitution]:
        """Yield every substitution under which this pattern is in the class."""

        yield from _match_pattern(egraph, self, egraph.find(eclass_id), {})

    def search(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Search the whole e-graph; returns ``(eclass_id, substitution)`` pairs.

        Uses the compiled, op-indexed engine; :meth:`search_naive` is the
        slow reference implementation.
        """

        return compile_pattern(self).search(egraph)

    def search_naive(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Reference search: backtracking generator over every e-class."""

        matches: List[Tuple[int, Substitution]] = []
        for eclass in list(egraph.eclasses()):
            for subst in self.match_class(egraph, eclass.id):
                matches.append((eclass.id, subst))
        return matches

    # ------------------------------------------------------------------
    # Instantiation (used by the applier half of rewrites)
    # ------------------------------------------------------------------

    def instantiate(self, egraph: EGraph, subst: Substitution) -> int:
        """Add this pattern to the e-graph under *subst*; return the class id."""

        if self.op == "?" and len(self.children) == 1 and isinstance(self.children[0], PatternVar):
            # a bare-variable right-hand side (e.g. the `(+ ?a 0) => ?a`
            # identity): the result is simply the bound class
            return egraph.find(subst[self.children[0].name])
        child_ids: List[int] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                child_ids.append(subst[child.name])
            else:
                child_ids.append(child.instantiate(egraph, subst))
        return egraph.add(ENode(self.op, tuple(child_ids), self.payload))

    def to_term(self, bindings: Dict[str, Term]) -> Term:
        """Instantiate into a plain term given variable-to-term bindings."""

        children: List[Term] = []
        for child in self.children:
            if isinstance(child, PatternVar):
                children.append(bindings[child.name])
            else:
                children.append(child.to_term(bindings))
        return Term(self.op, tuple(children), self.payload)

    def __str__(self) -> str:
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            if self.op == "num":
                return repr(self.payload)
            if self.op == "sym":
                return str(self.payload)
            return f"({label})"
        return f"({label} {' '.join(str(c) for c in self.children)})"


# ---------------------------------------------------------------------------
# Compiled patterns
# ---------------------------------------------------------------------------


class _MatcherCodegen:
    """Lower one pattern into a specialised Python search function.

    The generated function resolves every operator / payload constant of
    the pattern to the target graph's interned ids in a short prologue
    (returning immediately when the graph has never interned one of them),
    then runs one ``for`` loop per operator node of the pattern over the
    candidate class's ``buckets_by_op_id`` bucket of raw key tuples.
    Arity and payload pre-filters are inline integer guards, child class
    ids are direct ``key[i]`` reads, and pattern variables bind to plain
    locals (a repeated variable becomes an ``!=`` guard).  No interpreter
    dispatch, node objects, or per-binding dict copies survive into the
    hot loop; a complete match is emitted as a flat ``(cid, v0, v1, ..)``
    row tuple (variable values in :meth:`Pattern.variables` order) — no
    dict is built at all on the match path.
    """

    def __init__(self, pattern: Pattern) -> None:
        self.lines: List[str] = []
        self.consts: Dict[str, object] = {}
        self.slots: Dict[str, str] = {}
        self.counter = 0
        self.order: List[str] = pattern.variables()
        self.pattern = pattern
        #: op name -> prologue local holding its interned id.
        self.op_locals: Dict[str, str] = {}
        #: (payload type name, payload) -> prologue local holding its
        #: matching-id tuple.
        self.payload_locals: Dict[tuple, str] = {}
        self.prologue: List[str] = []

    def _name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _const(self, value: object) -> str:
        name = f"_k{len(self.consts)}"
        self.consts[name] = value
        return name

    def _op_local(self, op: str) -> str:
        """Prologue local for the interned id of *op* (early-out if absent)."""

        local = self.op_locals.get(op)
        if local is None:
            local = f"_o{len(self.op_locals)}"
            self.op_locals[op] = local
            self.prologue.append(f"{local} = _opid({self._const(op)})")
            self.prologue.append(f"if {local} is None: return")
        return local

    def _payload_local(self, payload: object) -> str:
        """Prologue local for the ids matching *payload* (early-out if none).

        Payload guards mirror the object engine's plain ``!=`` check —
        type-insensitive — so the ids of every ``==``-equal interned
        payload are accepted (``EGraph.payload_ids_matching``).
        """

        memo_key = (type(payload).__name__, payload)
        local = self.payload_locals.get(memo_key)
        if local is None:
            local = f"_p{len(self.payload_locals)}"
            self.payload_locals[memo_key] = local
            self.prologue.append(f"{local} = _pids({self._const(payload)})")
            self.prologue.append(f"if not {local}: return")
        return local

    def _emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _emit_canon(self, depth: int, target: str, expr: str) -> None:
        """Assign the canonical id of *expr* to *target*.

        Child ids in arena keys are canonical whenever search runs on a
        rebuilt graph (the runner always does), so the emitted code checks
        the union-find parent array inline and only pays the ``find`` call
        on a stale id.
        """

        self._emit(depth, f"{target} = {expr}")
        self._emit(depth, f"if parent[{target}] != {target}: {target} = find({target})")

    def _emit_seq(self, items: List[Tuple[PatternNode, str, bool]], depth: int) -> None:
        """Emit matching code for *items* (node, class-id expression, canonical)."""

        if not items:
            # emit a flat row tuple (cid, v0, v1, ..) in variables() order;
            # the public search()/match_class() wrappers rebuild dicts
            row = ", ".join(["cid"] + [self.slots[name] for name in self.order])
            self._emit(depth, f"append(({row},))")
            return
        (node, expr, is_canonical), rest = items[0], items[1:]
        if isinstance(node, PatternVar):
            bound = self.slots.get(node.name)
            if bound is None:
                var = self._name("v")
                self.slots[node.name] = var
                if is_canonical:
                    self._emit(depth, f"{var} = {expr}")
                else:
                    self._emit_canon(depth, var, expr)
            else:
                if is_canonical:
                    self._emit(depth, f"if {bound} != {expr}: continue")
                else:
                    tmp = self._name("t")
                    self._emit_canon(depth, tmp, expr)
                    self._emit(depth, f"if {bound} != {tmp}: continue")
            self._emit_seq(rest, depth)
            return

        if is_canonical:
            cls_expr = expr
        else:
            cls_expr = self._name("c")
            self._emit_canon(depth, cls_expr, expr)
        key = self._name("n")
        # inline buckets_by_op_id's cache-hit path: candidate/child class
        # ids are canonical on a rebuilt graph, so the classes dict hits
        # directly, and the per-op grouping is version-fresh after the
        # first probe of the phase — only the miss pays a method call
        cls_obj = self._name("g")
        self._emit(depth, f"{cls_obj} = classes_get({cls_expr})")
        self._emit(depth, f"if {cls_obj} is None: {cls_obj} = classes[find({cls_expr})]")
        self._emit(
            depth,
            f"if {cls_obj}._by_op_version != {cls_obj}.version: _regroup({cls_obj})",
        )
        self._emit(
            depth,
            f"for {key} in {cls_obj}._by_op.get({self._op_local(node.op)}, _ET):",
        )
        depth += 1
        self._emit(depth, f"if len({key}) != {2 + len(node.children)}: continue")
        if node.payload is not None:
            self._emit(
                depth,
                f"if {key}[1] not in {self._payload_local(node.payload)}: continue",
            )
        child_items = [
            (child, f"{key}[{i + 2}]", False) for i, child in enumerate(node.children)
        ]
        self._emit_seq(child_items + rest, depth)

    def build(self):
        self._emit_seq([(self.pattern, "cid", True)], 2)
        body = self.lines
        self.lines = []
        self._emit(0, "def _search(eg, candidates, out):")
        self._emit(1, "_opid = eg._op_ids.get")
        self._emit(1, "_pids = eg.payload_ids_matching")
        for line in self.prologue:
            self._emit(1, line)
        self._emit(1, "find = eg.uf.find")
        self._emit(1, "parent = eg.uf._parent")
        self._emit(1, "classes = eg.classes")
        self._emit(1, "classes_get = classes.get")
        self._emit(1, "_regroup = eg._rebuild_by_op")
        self._emit(1, "append = out.append")
        self._emit(1, "for cid in candidates:")
        self.lines.extend(body)
        namespace: Dict[str, object] = {"len": len, "_ET": ()}
        namespace.update(self.consts)
        exec("\n".join(self.lines), namespace)  # noqa: S102 - trusted codegen
        return namespace["_search"]


#: Process-wide sequence for instantiator identity (indexes the per-graph
#: resolved-constant cache ``EGraph._inst_consts``).
_INST_SEQ = iter(range(1 << 62)).__next__


class _InstantiatorCodegen:
    """Lower a right-hand-side pattern into a specialised builder function.

    Emits a statement sequence mirroring the recursive instantiation order
    (children left-to-right, bottom-up) with the arena's hashcons **hit
    path inlined**: per node, build the ``(op_id, payload_id, child...)``
    key, canonicalise the child ids only if one went stale (an inline
    parent-array check — a sibling's add can merge a child away via
    constant folding), probe ``eg.hashcons`` directly, and only fall back
    to ``eg.add_key`` on a miss.  Saturation overwhelmingly re-derives
    nodes that already exist, so the common per-node cost is one tuple
    build plus one dict probe, with no function call.  The pattern's
    operator/payload ids are interned once per (graph, pattern) and cached
    in ``eg._inst_consts`` (interned ids are append-only, so the cache
    never goes stale), making the per-call prologue two attribute binds
    and one dict probe.

    With *positions* given (variable name -> index into a flat match
    row), the generated builder reads its bindings positionally —
    ``subst[3]`` instead of ``subst['a']`` — so the runner's row pipeline
    never materialises substitution dicts (see
    :func:`compile_row_instantiator`).
    """

    def __init__(self, positions: Optional[Dict[str, int]] = None) -> None:
        self.const_values: List[object] = []   # op names / payloads, in order
        self.const_kinds: List[str] = []       # "op" | "payload"
        self.id_locals: Dict[tuple, str] = {}
        self.body: List[str] = []
        self.var_locals: Dict[str, str] = {}
        self.counter = 0
        self.positions = positions

    def _id_local(self, kind: str, value: object) -> str:
        memo_key = (kind, type(value).__name__, value)
        local = self.id_locals.get(memo_key)
        if local is None:
            local = f"_i{len(self.id_locals)}"
            self.id_locals[memo_key] = local
            self.const_values.append(value)
            self.const_kinds.append(kind)
        return local

    def _name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _node(self, node: PatternNode) -> str:
        """Emit statements computing *node*'s class id; return its local."""

        if isinstance(node, PatternVar):
            local = self.var_locals.get(node.name)
            if local is None:
                local = self._name("_s")
                self.var_locals[node.name] = local
                if self.positions is None:
                    self.body.append(f"{local} = subst[{node.name!r}]")
                else:
                    self.body.append(f"{local} = subst[{self.positions[node.name]}]")
            return local
        child_vars = [self._node(child) for child in node.children]
        key = self._name("_t")
        value = self._name("_v")
        payload_expr = (
            "0" if node.payload is None else self._id_local("payload", node.payload)
        )
        parts = [self._id_local("op", node.op), payload_expr]
        parts.extend(child_vars)
        self.body.append(f"{key} = ({', '.join(parts)},)")
        if child_vars:
            stale = " or ".join(f"parent[{v}] != {v}" for v in child_vars)
            canon = ", ".join(f"find({v})" for v in child_vars)
            self.body.append(f"if {stale}:")
            self.body.append("    find = eg.uf.find")
            self.body.append(f"    {key} = ({', '.join(parts[:2])}, {canon},)")
        self.body.append(f"{value} = hc({key})")
        # the key is canonical (inline child re-canonicalisation above) and
        # just missed the probe — take the arena's dedicated miss entry
        self.body.append(f"if {value} is None: {value} = eg._add_canon_miss({key})")
        self.body.append(
            f"elif parent[{value}] != {value}: {value} = eg.uf.find({value})"
        )
        return value

    def _prologue(self, name: str, args: str) -> List[str]:
        seq = _INST_SEQ()
        unpack = ", ".join(f"_i{i}" for i in range(len(self.id_locals)))
        lines = [
            f"def {name}(eg, {args}):",
            "    hc = eg.hashcons.get",
            "    parent = eg.uf._parent",
            f"    _ids = eg._inst_consts.get({seq})",
            "    if _ids is None:",
            "        _ids = _resolve(eg)",
            f"        eg._inst_consts[{seq}] = _ids",
        ]
        if unpack:
            lines.append(f"    {unpack}{',' if len(self.id_locals) == 1 else ''} = _ids")
        return lines

    def _compile(self, lines: List[str], name: str):
        kinds = tuple(self.const_kinds)
        values = tuple(self.const_values)

        def _resolve(eg) -> tuple:
            return tuple(
                eg._intern_op(value) if kind == "op" else eg._intern_payload(value)
                for kind, value in zip(kinds, values)
            )

        namespace: Dict[str, object] = {"_resolve": _resolve}
        exec("\n".join(lines), namespace)  # noqa: S102 - trusted codegen
        return namespace[name]

    def build(self, pattern: Pattern):
        result = self._node(pattern)
        lines = self._prologue("_instantiate", "subst")
        lines.extend(f"    {line}" for line in self.body)
        lines.append(f"    return {result}")
        return self._compile(lines, "_instantiate")

    def build_batch(self, pattern: Pattern):
        """Batched applier: instantiate + merge over a whole row list.

        Generates the :meth:`build` body inside a ``for`` loop over match
        rows, with the per-call prologue (hashcons/parent binds, interned
        id resolution) hoisted out — one function call per *batch* instead
        of one per match.  The loop epilogue is exactly
        ``Rewrite.apply``'s hit path: canonicalise both sides with the
        inline parent-array check and count the merges performed.  All
        bound locals (the parent list, the hashcons dict) are mutated in
        place by adds/merges, so hoisting the binds cannot change what the
        loop observes.
        """

        result = self._node(pattern)
        lines = self._prologue("_apply_rows", "rows")
        lines += [
            "    find = eg.uf.find",
            "    merge_roots = eg.merge_roots",
            "    applied = 0",
            "    for subst in rows:",
        ]
        lines.extend(f"        {line}" for line in self.body)
        lines += [
            f"        ra = {result}",
            "        if parent[ra] != ra: ra = find(ra)",
            "        rb = subst[0]",
            "        if parent[rb] != rb: rb = find(rb)",
            "        if ra != rb:",
            "            merge_roots(ra, rb)",
            "            applied += 1",
            "    return applied",
        ]
        return self._compile(lines, "_apply_rows")


# ---------------------------------------------------------------------------
# Relational (join-based) matching engine
# ---------------------------------------------------------------------------


class _Atom:
    """One operator node of a flattened pattern.

    ``class_var`` names the variable bound to the atom's e-class id
    (synthetic — ``\\x00``-prefixed — except nowhere: pattern variables can
    only occur in child slots); ``child_vars`` name the variables bound to
    its child slots, one per child, real pattern variables and synthetic
    link variables mixed.  A synthetic variable appears exactly twice: as a
    parent's child slot and as the child atom's ``class_var`` — these links
    plus repeated real variables are the join's equality constraints.
    """

    __slots__ = ("index", "op", "payload", "nchildren", "class_var", "child_vars")

    def __init__(self, index: int, op: str, payload: object, nchildren: int,
                 class_var: str) -> None:
        self.index = index
        self.op = op
        self.payload = payload
        self.nchildren = nchildren
        self.class_var = class_var
        self.child_vars: List[str] = []


def _flatten_pattern(pattern: Pattern) -> List[_Atom]:
    """Flatten *pattern* into atoms in the compiled matcher's loop order.

    The compiled codegen opens one bucket loop per operator node in
    depth-first pre-order (a nested operator child's loop opens inside its
    parent's, before any later sibling's); atom indices reproduce exactly
    that nesting order, which is what makes the rank-vector sort of
    :func:`_relational_search` equal the nested loops' emission order.
    """

    atoms: List[_Atom] = []
    counter = iter(range(1 << 30))

    def visit(node: Pattern, class_var: str) -> None:
        atom = _Atom(len(atoms), node.op, node.payload, len(node.children), class_var)
        atoms.append(atom)
        nested: List[Tuple[Pattern, str]] = []
        for child in node.children:
            if isinstance(child, PatternVar):
                atom.child_vars.append(child.name)
            else:
                link = f"\x00{next(counter)}"
                atom.child_vars.append(link)
                nested.append((child, link))
        for child, link in nested:
            visit(child, link)

    visit(pattern, "\x00cid")
    return atoms


def _vec_find(parent, ids):
    """Canonical ids of *ids* under the *parent* array (gather to fixpoint).

    Equivalent to mapping ``uf.find`` but vectorised; terminates because
    every gather moves ids strictly up the union-find forest.
    """

    np = columns.np
    out = parent[ids]
    while True:
        nxt = parent[out]
        if np.array_equal(nxt, out):
            return out
        out = nxt


#: Cache-miss sentinel (None is a meaningful cached value: empty relation).
_NO_REL = object()


def _build_relation(eg: EGraph, op_id: int, nchildren: int, pids, rows=None):
    """The column relation of one atom, or None when it is empty.

    Rows are the *live* hashcons entries with operator *op_id*, exactly
    *nchildren* children, and (when *pids* is given) payload id in *pids*
    — the compiled matcher's arity/payload guards as column masks.  When
    *rows* is given it replaces the op-index scan: the relation is built
    over exactly that (already alive-filtered) row slice — the delta-join
    entry point, where *rows* comes from ``rows_touched_since``.  Because
    touch stamps are per-class, a delta slice always contains *complete*
    class groups, so the within-class ranks computed here equal the full
    relation's ranks for the same rows.  The result maps:

    * ``cls`` — canonical e-class id per row,
    * ``child`` — canonical child class ids, one int64 array per slot,
    * ``rank`` — the row's position within its class's deterministic
      per-op bucket order (:meth:`EGraph.buckets_by_op_id`): rows are
      lexsorted by ``(cls, raw child ids.., payload rank)``, which is the
      bucket comparator ``(key[2:], (str(payload), type))`` restricted to
      this relation's fixed arity — so ranks of filtered rows preserve
      their relative bucket order, and
    * ``n`` — the row count (the planner's size measure).

    Join keys and emitted bindings use the *canonical* columns; the rank
    sort uses the *raw* child spellings, because bucket order is defined
    over the stored key tuples.
    """

    np = columns.np
    store = eg.store
    if rows is None:
        rows = store.op_rows(op_id)
        if rows is None or not len(rows):
            return None
        alive = columns.as_uint8(store.alive)
        mask = alive[rows] != 0
    elif not len(rows):
        return None
    else:
        mask = np.ones(len(rows), dtype=bool)
    nchild = columns.as_int64(store.nchild)
    mask &= nchild[rows] == nchildren
    pid_col = columns.as_int64(store.payload)[rows]
    if pids is not None:
        pmask = np.zeros(len(rows), dtype=bool)
        for pid in pids:
            pmask |= pid_col == pid
        mask &= pmask
    keep = np.flatnonzero(mask)
    n = len(keep)
    if not n:
        return None
    rows = rows[keep]
    pid_col = pid_col[keep]
    parent = eg._np_parent()
    cls = _vec_find(parent, columns.as_int64(store.cls)[rows])
    raw = tuple(columns.as_int64(store.child[i])[rows] for i in range(nchildren))
    canon = tuple(_vec_find(parent, col) for col in raw)
    prank = columns.as_int64(eg._payload_ranks())[pid_col]
    # np.lexsort: last key is primary -> (cls, child0.., prank) priority
    order = np.lexsort((prank,) + raw[::-1] + (cls,))
    sorted_cls = cls[order]
    starts = np.zeros(n, dtype=np.int64)
    if n > 1:
        idx = np.arange(1, n, dtype=np.int64)
        starts[1:] = np.where(sorted_cls[1:] != sorted_cls[:-1], idx, 0)
        starts = np.maximum.accumulate(starts)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64) - starts
    return {"cls": cls, "child": canon, "rank": rank, "n": n}


def _pattern_relation(eg: EGraph, atom: _Atom, op_id: int, pids):
    """Memoised :func:`_build_relation` (cache lives on the e-graph).

    Keyed by ``(op id, arity, payload ids)`` so rules sharing an atom
    shape share one relation per search phase; the whole cache is dropped
    whenever the graph's ``(version, interned-key count, store epoch)``
    stamp moves (:meth:`EGraph._live_relation_cache`).
    """

    cache = eg._live_relation_cache()
    key = (op_id, atom.nchildren, pids)
    rel = cache.get(key, _NO_REL)
    if rel is _NO_REL:
        rel = _build_relation(eg, op_id, atom.nchildren, pids)
        cache[key] = rel
    return rel


def _pattern_delta_relation(eg: EGraph, atom: _Atom, op_id: int, pids, since):
    """The *delta* relation of one atom: rows of classes touched > *since*.

    The semi-naive half of :func:`_pattern_relation` — rows come from the
    store's touch-stamp column (``rows_touched_since``) instead of the
    full op index, so steady-state incremental searches slice out only the
    recently-touched fraction of each relation.  Cached next to the full
    relations, additionally keyed by *since* (one search phase typically
    probes many rules at the same stamp).
    """

    cache = eg._live_relation_cache()
    key = (op_id, atom.nchildren, pids, since)
    rel = cache.get(key, _NO_REL)
    if rel is _NO_REL:
        rows = eg.rows_touched_since(op_id, since)
        if rows is None or not len(rows):
            rel = None
        else:
            rel = _build_relation(eg, op_id, atom.nchildren, pids, rows=rows)
        cache[key] = rel
    return rel


def _atom_columns(atom: _Atom, rel):
    """(variable -> column) map of *rel* plus the intra-atom equality mask.

    A variable repeated inside a single atom (e.g. ``(* ?a ?a)``) yields a
    column-equality mask; the first occurrence's column represents it.
    """

    cols = {atom.class_var: rel["cls"]}
    mask = None
    for i, var in enumerate(atom.child_vars):
        col = rel["child"][i]
        prev = cols.get(var)
        if prev is None:
            cols[var] = col
        else:
            eq = prev == col
            mask = eq if mask is None else mask & eq
    return cols, mask


def _relational_search(
    cp: "CompiledPattern", eg: EGraph, since: Optional[int]
) -> Optional[List[tuple]]:
    """Execute *cp* as a join over the columnar store.

    Returns flat ``(cid, v0, v1, ..)`` rows in exactly the compiled
    matcher's order, or None when the int64 join-key encoding could
    overflow (caller falls back to the scan engine).

    Plan: the root atom leads; on an incremental (``since``) search it is
    the semi-naive *delta* relation — only rows of classes touched after
    the stamp, sliced straight off the store's touch column — while every
    other atom joins against its full relation.  (Upward touch
    propagation makes the root-delta join alone exactly the incremental
    result: any match with an untouched root has all-untouched atoms and
    was emitted by the previous search.)  Then greedily the smallest
    remaining relation among atoms connected to the bound variables, ties
    broken by ``(size, op id, pre-order atom index)`` — never by hash
    order.  Each step is a sort-based hash join
    on the shared variables, encoded into a single int64 per row by Horner
    evaluation in base ``len(parent) + 1`` (class ids are < the base, so
    the encoding is injective; the caller is told to fall back when
    ``base ** nkeys`` approaches 2**62).

    Result order: joins track, per atom, the matched row's bucket rank;
    the final lexsort by ``(root cid, rank_0, .., rank_{m-1})`` (atoms in
    pre-order) reproduces the nested loops' emission order — two results
    equal on all earlier ranks picked identical rows, so atom *i* draws
    from the same bucket, where rank order is iteration order.
    """

    np = columns.np
    atoms = cp._atoms
    rels = []
    for ai, atom in enumerate(atoms):
        op_id = eg._op_ids.get(atom.op)
        if op_id is None:
            return []
        if atom.payload is not None:
            pids = eg.payload_ids_matching(atom.payload)
            if not pids:
                return []
        else:
            pids = None
        if ai == 0 and since is not None:
            rel = _pattern_delta_relation(eg, atom, op_id, pids, since)
        else:
            rel = _pattern_relation(eg, atom, op_id, pids)
        if rel is None:
            return []
        rels.append((atom, op_id, rel))

    base = len(eg.uf._parent) + 1

    # seed the state from the root atom's relation (the delta relation on
    # incremental searches — its ranks equal the full relation's, see
    # _build_relation, so the final rank lexsort is unaffected)
    atom, _, rel = rels[0]
    cols, mask = _atom_columns(atom, rel)
    if mask is not None:
        keep = np.flatnonzero(mask)
        state = {var: col[keep] for var, col in cols.items()}
        ranks = {0: rel["rank"][keep]}
    else:
        state = dict(cols)
        ranks = {0: rel["rank"]}
    if not len(state[atom.class_var]):
        return []

    remaining = list(range(1, len(atoms)))
    while remaining:
        best = None
        for ai in remaining:
            cand_atom, cand_op, cand_rel = rels[ai]
            if cand_atom.class_var not in state and not any(
                v in state for v in cand_atom.child_vars
            ):
                continue
            cand = (cand_rel["n"], cand_op, ai)
            if best is None or cand < best:
                best = cand
        # the atom graph is a tree linked by synthetic variables, so some
        # remaining atom is always connected once the root is bound
        ai = best[2]
        remaining.remove(ai)
        atom, _, rel = rels[ai]
        cols, mask = _atom_columns(atom, rel)
        if mask is not None:
            keep = np.flatnonzero(mask)
            cols = {var: col[keep] for var, col in cols.items()}
            arank = rel["rank"][keep]
        else:
            arank = rel["rank"]

        # shared variables in deterministic (class var, child slots) order
        shared = []
        for var in (atom.class_var, *atom.child_vars):
            if var in state and var not in shared:
                shared.append(var)
        if base ** len(shared) >= 2 ** 62:
            return None
        rcode = cols[shared[0]]
        scode = state[shared[0]]
        for var in shared[1:]:
            rcode = rcode * base + cols[var]
            scode = scode * base + state[var]
        order = np.argsort(rcode, kind="stable")
        rsorted = rcode[order]
        left = np.searchsorted(rsorted, scode, side="left")
        counts = np.searchsorted(rsorted, scode, side="right") - left
        total = int(counts.sum())
        if not total:
            return []
        out_s = np.repeat(np.arange(len(scode), dtype=np.int64), counts)
        offsets = (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(counts) - counts, counts)
            + np.repeat(left, counts)
        )
        out_r = order[offsets]
        state = {var: col[out_s] for var, col in state.items()}
        ranks = {i: r[out_s] for i, r in ranks.items()}
        for var, col in cols.items():
            if var not in state:
                state[var] = col[out_r]
        ranks[ai] = arank[out_r]

    cid = state[atoms[0].class_var]
    n = len(cid)
    if not n:
        return []
    m = len(atoms)
    order = np.lexsort(tuple(ranks[i] for i in range(m - 1, -1, -1)) + (cid,))
    mat = np.empty((n, 1 + len(cp.vars)), dtype=np.int64)
    mat[:, 0] = cid[order]
    for j, name in enumerate(cp.vars):
        mat[:, j + 1] = state[name][order]
    # a lazy facade: tuples materialise only if a consumer asks for them —
    # the batched applier reads the matrix directly (columns.RowBatch)
    return columns.RowBatch(mat)


class CompiledPattern:
    """A pattern lowered into specialised match/instantiate functions."""

    __slots__ = (
        "pattern", "vars", "root_op", "_fn", "_inst", "_bare_var", "_atoms",
        "_hetero", "_to_subst",
    )

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self.vars: Tuple[str, ...] = tuple(pattern.variables())
        self.root_op = pattern.op
        self._fn = _MatcherCodegen(pattern).build()
        # row -> substitution dict as a generated dict literal: an order of
        # magnitude cheaper per match than dict(zip(names, row[1:])), and
        # the dict-returning search()/match_class() APIs are themselves
        # benchmark rows (rule_search) and the guarded-rule path
        body = ", ".join(
            f"{name!r}: row[{i + 1}]" for i, name in enumerate(self.vars)
        )
        self._to_subst = eval(f"lambda row: {{{body}}}")
        # a bare-variable pattern `?x` parses as ("?" ?x); its instantiation
        # is just the bound class
        self._bare_var: Optional[str] = None
        self._hetero = False
        if (
            pattern.op == "?"
            and len(pattern.children) == 1
            and isinstance(pattern.children[0], PatternVar)
        ):
            self._bare_var = pattern.children[0].name
            self._inst = None
            self._atoms = None
        else:
            self._inst = _InstantiatorCodegen().build(pattern)
            atoms = _flatten_pattern(pattern)
            # every operator pattern runs on the relational engine — a
            # single-atom "join" is just the (delta) relation slice itself,
            # already in emission order, with no scan-side per-class loop
            self._atoms = atoms if atoms else None
            if self._atoms is not None:
                # heterogeneous = atoms draw from >= 2 distinct relations
                # (inter-relation selectivity prunes work the scan must do)
                shapes = {
                    (a.op, a.nchildren, str(a.payload), type(a.payload).__name__)
                    for a in self._atoms
                }
                self._hetero = len(shapes) >= 2

    def instantiate(self, egraph: EGraph, subst: Substitution) -> int:
        """Add the pattern under *subst*; returns the e-class id."""

        if self._bare_var is not None:
            return egraph.find(subst[self._bare_var])
        return self._inst(egraph, subst)

    def match_class(self, egraph: EGraph, eclass_id: int) -> List[Substitution]:
        """All substitutions under which the pattern is in the class."""

        out: List[tuple] = []
        self._fn(egraph, (egraph.find(eclass_id),), out)
        return [self._to_subst(row) for row in out]

    def search_rows(
        self,
        egraph: EGraph,
        since: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[tuple]:
        """Search the e-graph; returns flat ``(eclass_id, v0, v1, ..)`` rows.

        Variable values follow :attr:`vars` order.  Rows are what the
        runner's apply loop consumes (together with the positional
        instantiators) — no per-match dict is built.

        *backend* selects the engine: ``None`` auto-selects — the
        relational join for heterogeneous multi-atom patterns under
        numpy (where inter-relation selectivity prunes work the scan
        must do), full and incremental alike (the semi-naive delta join
        restricts the root relation to recently-touched rows, so the
        incremental join stays delta-bound); the compiled scan otherwise
        (trivial patterns, self-join-only patterns — whose incremental
        scans are already delta-bound via the touched filter and carry
        none of the join's per-call relation overhead — and fallback
        builds); ``"join"`` forces the relational engine (raises when
        unavailable — bench/test hook); ``"scan"`` forces the compiled
        matcher.  Both engines return the identical row list, so backend
        choice can never alter outcomes — only wall-clock.

        When *since* is given, classes whose ``touched`` stamp is
        ``<= since`` are skipped — sound because :meth:`EGraph.rebuild`
        propagates touches upward from every mutated class (matches rooted
        at a skipped class are exactly the matches found by the previous
        scan).  The relational engine serves the same contract with a
        delta join: its leading (root) relation is built over the store's
        touch-stamp column (:func:`_pattern_delta_relation`).
        """

        if self._atoms is not None and columns.HAVE_NUMPY:
            if backend != "scan":
                rows = _relational_search(self, egraph, since)
                if rows is not None:
                    return rows
                # join-key overflow guard tripped: int64 encoding would not
                # be injective on this graph, use the scan engine instead
                if backend == "join":
                    raise RuntimeError(
                        "join backend unavailable: join-key encoding overflow"
                    )
        elif backend == "join":
            raise RuntimeError(
                "join backend unavailable: trivial pattern or numpy inactive"
            )

        matches: List[tuple] = []
        candidates = egraph.classes_with_op(self.root_op)
        if not candidates:
            return matches
        if since is not None:
            # the flat touched mirror makes this a single array read per
            # candidate (vs. a dict lookup plus attribute load)
            touched = egraph._class_touched
            candidates = [c for c in candidates if touched[c] > since]
        # class-id order == creation order, matching the naive matcher's
        # iteration over the classes dict (keeps runs deterministic)
        self._fn(egraph, sorted(candidates), matches)
        return matches

    def search(
        self, egraph: EGraph, since: Optional[int] = None
    ) -> List[Tuple[int, Substitution]]:
        """Search the e-graph; returns ``(eclass_id, substitution)`` pairs.

        Root candidates come from the e-graph's op-index, so only classes
        containing the root operator are visited.  This is the historical
        dict-based API — a thin wrapper over :meth:`search_rows`.
        """

        to_subst = self._to_subst
        return [
            (row[0], to_subst(row)) for row in self.search_rows(egraph, since)
        ]

    def join_plan(
        self, egraph: EGraph, since: Optional[int] = None
    ) -> Optional[List[Tuple[int, str, int]]]:
        """The relational engine's join order on *egraph*, for introspection.

        Returns ``(atom index, op name, relation size)`` triples in the
        order the join would execute them, or None when the pattern would
        run on the scan engine.  With *since*, the root atom's size is its
        *delta* relation's (the plan the incremental search runs).  The
        plan depends only on deterministic inputs (relation sizes,
        interned op ids, pre-order atom indices), never on hash iteration
        order — the determinism test asserts this across
        ``PYTHONHASHSEED`` values.
        """

        if self._atoms is None or not columns.HAVE_NUMPY:
            return None
        sizes: List[int] = []
        op_ids: List[int] = []
        for ai, atom in enumerate(self._atoms):
            op_id = egraph._op_ids.get(atom.op)
            if atom.payload is not None:
                pids = egraph.payload_ids_matching(atom.payload)
            else:
                pids = None
            if op_id is None or (atom.payload is not None and not pids):
                rel = None
            elif ai == 0 and since is not None:
                rel = _pattern_delta_relation(egraph, atom, op_id, pids, since)
            else:
                rel = _pattern_relation(egraph, atom, op_id, pids)
            sizes.append(0 if rel is None else rel["n"])
            op_ids.append(-1 if op_id is None else op_id)
        atoms = self._atoms
        plan = [(0, atoms[0].op, sizes[0])]
        bound = {atoms[0].class_var}
        bound.update(atoms[0].child_vars)
        remaining = list(range(1, len(atoms)))
        while remaining:
            best = None
            for ai in remaining:
                atom = atoms[ai]
                if atom.class_var not in bound and not any(
                    v in bound for v in atom.child_vars
                ):
                    continue
                cand = (sizes[ai], op_ids[ai], ai)
                if best is None or cand < best:
                    best = cand
            ai = best[2]
            remaining.remove(ai)
            plan.append((ai, atoms[ai].op, sizes[ai]))
            bound.add(atoms[ai].class_var)
            bound.update(atoms[ai].child_vars)
        return plan


@lru_cache(maxsize=None)
def compile_pattern(pattern: Pattern) -> CompiledPattern:
    """Lower *pattern* to its compiled form (memoised per distinct pattern)."""

    return CompiledPattern(pattern)


@lru_cache(maxsize=None)
def compile_row_instantiator(pattern: Pattern, lhs_vars: Tuple[str, ...]):
    """Instantiator for *pattern* reading bindings from a flat match row.

    *lhs_vars* is the searcher's :attr:`CompiledPattern.vars` tuple; the
    returned builder takes ``(egraph, row)`` where ``row`` is a
    ``(cid, v0, v1, ..)`` tuple from ``search_rows`` and reads each
    variable at its row position — the rows pipeline's replacement for
    dict-based :meth:`CompiledPattern.instantiate`.  Requires every
    variable of *pattern* to occur in *lhs_vars* (callers check; a KeyError
    here would otherwise surface at compile time, not apply time).
    """

    positions = {name: i + 1 for i, name in enumerate(lhs_vars)}
    return _InstantiatorCodegen(positions).build(pattern)


@lru_cache(maxsize=None)
def compile_row_applier(pattern: Pattern, lhs_vars: Tuple[str, ...]):
    """Batched applier for *pattern* over a whole list of match rows.

    Same contract as :func:`compile_row_instantiator`, but the returned
    function takes ``(egraph, rows)`` and performs the full instantiate +
    canonicalise + merge loop of :meth:`Rewrite.apply_rows` in one call,
    returning the number of unions made.  Hoisting the per-match prologue
    out of the loop is worth a few hundred nanoseconds per match — the
    apply phase processes tens of thousands of (mostly redundant) matches
    per saturation run.
    """

    positions = {name: i + 1 for i, name in enumerate(lhs_vars)}
    return _InstantiatorCodegen(positions).build_batch(pattern)


@lru_cache(maxsize=None)
def compile_rhs_plan(pattern: Pattern, lhs_vars: Tuple[str, ...]):
    """Probe plan of a pattern applier for the vectorised purity prepass.

    Flattens *pattern* into a postorder node list; each node is
    ``(op name, payload, child refs)`` where a ref is ``(0, row column)``
    for a searcher variable (1-based — row column 0 is the matched class)
    or ``(1, node index)`` for an inner node's result.  Returns
    ``(nodes, root ref)``.  The plan drives :func:`rhs_pure_partition`:
    probing every node of every match row against the columnar hashcons
    index in one vector pass per node.
    """

    positions = {name: i + 1 for i, name in enumerate(lhs_vars)}
    nodes: List[tuple] = []

    def walk(node: PatternNode):
        if isinstance(node, PatternVar):
            return (0, positions[node.name])
        refs = tuple(walk(child) for child in node.children)
        nodes.append((node.op, node.payload, refs))
        return (1, len(nodes) - 1)

    root = walk(pattern)
    return tuple(nodes), root


def rhs_pure_partition(eg: EGraph, plan, mat):
    """Partition the match rows of *mat* by what applying each would do.

    *mat* is the whole batch as an int64 matrix (handed over by the join
    engine or converted once per apply call).  Evaluates *plan* bottom-up
    over the rows with vectorised hashcons probes
    (:meth:`EGraph._probe_index`) — no graph mutation.  Returns
    ``(status, ra, rb, proof)`` aligned with *mat*:

    * status 0 — **pure**: every RHS node already interned and the final
      merge would be a no-op (``ra == rb``).  Applying such a row touches
      nothing — not the hashcons, not the union-find, not the node count —
      so the batched applier skips it outright.
    * status 1 — **merge**: every node interned but ``ra != rb``; ``ra``
      holds the canonical instantiation root to merge with the row's
      canonicalised matched class ``rb``.
    * status 2 — **opaque**: some probe missed; the row must run the
      scalar applier (its adds and analysis hooks must fire in row order).

    ``proof`` is an ``n x k`` int64 matrix holding, per row, every
    canonical class id the verdict depended on: the canonicalised probe
    children, each node's hashcons hit, and the two roots.  A verdict
    stays exact across later *adds* (the hashcons only gains keys —
    existing entries and the union-find are untouched) and across later
    *unions that don't move any of the row's proof ids*: a union can only
    change the row's reference behaviour by re-rooting one of the ids its
    probes or final merge read, and a re-rooted id is exactly one whose
    entry stops being a union-find root.  The batched applier exploits
    this to revalidate verdicts with one gather instead of re-probing.

    Returns None when a probe index would overflow its int64 encoding —
    the caller falls back to the scalar loop.
    """

    np = columns.np
    nodes, root = plan
    # fully-compressed roots: every canonicalisation is one gather
    roots = eg._np_roots()
    n = len(mat)
    alive = np.ones(n, dtype=bool)
    vals: List[object] = []
    proof_cols: List[object] = []
    payload_ids = eg._payload_ids
    zeros = None
    for op_name, payload, refs in nodes:
        op_id = eg._op_ids.get(op_name)
        pid = (
            0
            if payload is None
            else payload_ids.get((type(payload).__name__, payload))
        )
        index = (
            None
            if op_id is None or pid is None
            else eg._probe_index(op_id, pid, len(refs))
        )
        if index is False:
            return None
        if index is None:
            # shape absent from the graph: every (still-alive) row misses
            alive[:] = False
            if zeros is None:
                zeros = np.zeros(n, dtype=np.int64)
            vals.append(zeros)
            continue
        codes, pvals, base = index
        cand = np.zeros(n, dtype=np.int64)
        inbase = None
        for kind, r in refs:
            col = mat[:, r] if kind == 0 else vals[r]
            child = roots[col] if kind == 0 else col
            if kind == 0:
                proof_cols.append(child)
            # the index is a sub-snapshot: a child class allocated after
            # it was built breaks the Horner injectivity, so such rows
            # must read as misses (conservatively opaque), never as
            # accidental code collisions
            ok = child < base
            inbase = ok if inbase is None else (inbase & ok)
            cand = cand * base + child
        pos = np.searchsorted(codes, cand)
        pos_safe = np.minimum(pos, len(codes) - 1)
        hit = codes[pos_safe] == cand
        if inbase is not None:
            hit &= inbase
        alive &= hit
        found = roots[np.where(hit, pvals[pos_safe], 0)]
        proof_cols.append(found)
        vals.append(found)
    kind, r = root
    ra = roots[mat[:, r]] if kind == 0 else vals[r]
    rb = roots[mat[:, 0]]
    proof_cols.append(ra)
    proof_cols.append(rb)
    status = np.where(alive, np.where(ra == rb, 0, 1), 2).astype(np.int8)
    proof = np.column_stack(proof_cols)
    return status, ra, rb, proof


# ---------------------------------------------------------------------------
# Naive reference matcher
# ---------------------------------------------------------------------------


def _match_pattern(
    egraph: EGraph,
    pattern: PatternNode,
    eclass_id: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    """Backtracking e-matcher (reference implementation).

    The substitution dict is copied only when a *new* variable is bound;
    an already-bound variable is checked against the canonical class id
    and the incoming dict is yielded as-is.
    """

    eclass_id = egraph.find(eclass_id)

    if isinstance(pattern, PatternVar):
        bound = subst.get(pattern.name)
        if bound is None:
            new_subst = dict(subst)
            new_subst[pattern.name] = eclass_id
            yield new_subst
        elif bound == eclass_id or egraph.find(bound) == eclass_id:
            yield subst
        return

    for enode in egraph.nodes_of(eclass_id):
        if enode.op != pattern.op:
            continue
        if pattern.payload is not None and enode.payload != pattern.payload:
            continue
        if len(enode.children) != len(pattern.children):
            continue
        yield from _match_children(egraph, pattern.children, enode.children, 0, subst)


def _match_children(
    egraph: EGraph,
    patterns: Sequence[PatternNode],
    child_ids: Sequence[int],
    index: int,
    subst: Substitution,
) -> Iterator[Substitution]:
    if index == len(patterns):
        yield subst
        return
    for new_subst in _match_pattern(egraph, patterns[index], child_ids[index], subst):
        yield from _match_children(egraph, patterns, child_ids, index + 1, new_subst)


# ---------------------------------------------------------------------------
# Textual pattern syntax
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\(|\)|[^\s()]+")


@lru_cache(maxsize=1024)
def parse_pattern(text: str) -> Pattern:
    """Parse the s-expression pattern syntax.

    Leaves: ``?x`` is a pattern variable, a number literal is a ``num``
    term, and any other atom is a ``sym`` leaf.  ``(op child...)`` builds an
    operator node; ``call:sqrt`` style atoms set the payload.

    Patterns are immutable, so parses are memoised — rulesets rebuilt in a
    loop reuse both the pattern objects and their compiled programs.
    """

    tokens = _TOKEN_RE.findall(text)
    if not tokens:
        raise ValueError("empty pattern")
    pos = 0

    def parse_node() -> PatternNode:
        nonlocal pos
        token = tokens[pos]
        pos += 1
        if token == "(":
            head = tokens[pos]
            pos += 1
            op, _, payload = head.partition(":")
            children: List[PatternNode] = []
            while tokens[pos] != ")":
                children.append(parse_node())
            pos += 1  # consume ")"
            return Pattern(op, tuple(children), payload or None)
        if token == ")":
            raise ValueError("unexpected ')' in pattern")
        return _parse_atom(token)

    node = parse_node()
    if pos != len(tokens):
        raise ValueError(f"trailing tokens in pattern: {tokens[pos:]}")
    if isinstance(node, PatternVar):
        return Pattern("?", (node,))  # degenerate single-variable pattern
    return node


def _parse_atom(token: str) -> PatternNode:
    if token.startswith("?"):
        return PatternVar(token[1:])
    try:
        if "." in token or "e" in token.lower():
            return Pattern("num", (), float(token))
        return Pattern("num", (), int(token))
    except ValueError:
        return Pattern("sym", (), token)
