"""Extraction of optimal terms from a saturated e-graph.

The paper extracts "the lowest-cost expression that contains all the
e-classes of assignments ... with common e-classes being counted only once"
using linear programming (CBC).  This module provides three extractors:

* :class:`TreeExtractor` — classic bottom-up dynamic programming minimising
  *tree* cost (shared sub-expressions counted every time).  Cheap; used as
  a building block and as a baseline in the ablation benchmarks.
* :class:`DagExtractor` — the default: per-class choices from the tree
  extractor, costed as a DAG (each selected e-class counted once), which is
  the paper's common-subexpression-aware objective under a greedy choice.
* :class:`ILPExtractor` — the exact formulation as a 0/1 integer program
  solved with ``scipy.optimize.milp``, standing in for the paper's CBC
  solver.  Cycle freedom is enforced with topological-level variables.

All three return an :class:`ExtractionResult`, which carries the selected
e-node per e-class, per-root terms, and the DAG cost of the selection.

The tree DP and the DAG local search run over the e-graph's **interned
node keys** (``(op_id, payload_id, *child_ids)`` int tuples) rather than
:class:`ENode` objects: tables key on dense class ids, per-key costs and
deterministic tie-break orders are memoized per state, and ENode views are
only materialised at the boundary — once per *selected* node when the
:class:`ExtractionResult` is assembled (its public ``choices`` stay
ENode-valued for code generation and serialisation).

Repeated extraction from the *same* e-graph — re-extracting between runner
iterations, comparing extractors, or the repeated-variant workloads of the
experiment harness — can share an :class:`ExtractionMemo`.  The memo keeps
the tree extractor's DP table alive between calls and refreshes it
*incrementally*: only classes whose ``touched`` stamp advanced since the
table was computed (plus their transitive dependents, via the worklist)
are recomputed, which the e-graph's upward touch propagation makes sound.
It also caches whole :class:`ExtractionResult` objects per (method, roots)
while the e-graph version is unchanged.  Memoized extraction is exact: it
returns byte-identical selections to a cold run (the DP fixpoint and its
deterministic tie-breaks do not depend on what was reused).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

try:  # soft dependency: only the ILP extractor needs numpy (via scipy)
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None  # type: ignore[assignment]

from repro.egraph import columns
from repro.egraph.egraph import EGraph, ENode, NodeKey
from repro.egraph.language import Term

__all__ = [
    "CostFunction",
    "ExtractionError",
    "ExtractionMemo",
    "ExtractionResult",
    "TreeExtractor",
    "DagExtractor",
    "ILPExtractor",
    "extract_best",
    "resolve_result",
]


class ExtractionError(RuntimeError):
    """Raised when no finite-cost selection exists for the requested roots."""


class CostFunction(Protocol):
    """Anything that can price a single e-node (children not included)."""

    def enode_cost(self, enode: ENode) -> float:  # pragma: no cover - protocol
        ...


@dataclass
class ExtractionResult:
    """The outcome of extraction."""

    #: Chosen e-node for every e-class reachable from the roots.
    choices: Dict[int, ENode]
    #: Extracted term per requested root e-class (same order as the request).
    terms: Dict[int, Term]
    #: DAG cost of the selection (shared e-classes counted once).
    dag_cost: float
    #: Wall-clock time spent extracting.
    elapsed: float = 0.0
    #: Extractor name ("tree", "dag-greedy", "ilp").
    method: str = ""

    def term_for(self, root: int) -> Term:
        return self.terms[root]

    def reachable_classes(self) -> Set[int]:
        return set(self.choices)


# ---------------------------------------------------------------------------
# Tree extraction (bottom-up fixpoint over interned keys)
# ---------------------------------------------------------------------------


class _DPState:
    """The tree extractor's dynamic-programming state, reusable across runs.

    ``best`` maps every finite-cost (canonical) e-class id to its
    ``(tree cost, chosen key)`` entry; ``class_nodes`` and ``dependents``
    are the indexed view of the e-graph the worklist relaxation runs over —
    all keyed on dense class ids and flat key tuples, with per-key costs
    and tie-break orders memoized in the state.  :meth:`build` computes the
    state from scratch; :meth:`refresh` updates it after the e-graph
    changed, re-indexing and re-relaxing only classes touched since the
    given version stamp.
    """

    __slots__ = (
        "best",
        "tie",
        "class_nodes",
        "dependents",
        "_cost_cache",
        "_order_cache",
        "_egraph",
    )

    def __init__(self, egraph: EGraph) -> None:
        self._egraph = egraph
        self.best: Dict[int, Tuple[float, NodeKey]] = {}
        self.tie: Dict[int, Tuple[int, int, tuple]] = {}
        self.class_nodes: Dict[
            int, List[Tuple[NodeKey, float, Tuple[int, ...], int, int]]
        ] = {}
        self.dependents: Dict[int, Set[int]] = {}
        #: key -> enode_cost(view(key)); valid while the cost key is fixed
        #: (the memo rebinds the whole state when it changes).
        self._cost_cache: Dict[NodeKey, float] = {}
        #: key -> deterministic tie-break order (see :func:`_key_order_of`).
        self._order_cache: Dict[NodeKey, tuple] = {}

    @staticmethod
    def build(egraph: EGraph, cost_function: CostFunction) -> "_DPState":
        state = _DPState(egraph)
        state._index(egraph, cost_function, (cls.id for cls in egraph.eclasses()))
        state._relax(set(state.class_nodes))
        return state

    def key_cost(self, key: NodeKey, cost_function: CostFunction) -> float:
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = cost_function.enode_cost(self._egraph._view(key))
            self._cost_cache[key] = cost
        return cost

    def key_order(self, key: NodeKey) -> tuple:
        """Deterministic tie-break order of *key* (memoized).

        Identical ordering to the historical ENode-based key
        ``(op, str(payload), children)``, so arena extraction reproduces
        the object core's selections bit for bit.
        """

        order = self._order_cache.get(key)
        if order is None:
            eg = self._egraph
            order = (eg.op_names[key[0]], eg._payload_sort[key[1]][0], key[2:])
            self._order_cache[key] = order
        return order

    def refresh(self, egraph: EGraph, cost_function: CostFunction, since: int) -> int:
        """Incorporate every e-graph change after version *since*.

        Returns the number of classes that had to be re-indexed.  Sound
        because :meth:`EGraph.rebuild` propagates ``touched`` stamps from
        every mutated class up through the parent lists: any class whose
        best entry could have changed — its node set grew, it absorbed a
        merge, or a descendant did — carries ``touched > since``.  Entries
        of untouched classes are reused as-is, and the worklist re-relaxes
        the invalidated region to the same fixpoint a cold build reaches
        (costs and tie-breaks are intrinsic to the class, so the result is
        identical).
        """

        find = egraph.uf.find
        if columns.HAVE_NUMPY:
            # batched over the flat touched/alive mirrors; ascending class
            # id order equals the classes-dict iteration order (classes are
            # created with ascending ids and deletions never reorder)
            cnp = columns.np
            touched = columns.as_int64(egraph._class_touched)
            alive = columns.as_uint8(egraph._class_alive)
            stale_mask = (touched > since) & (alive != 0)
            invalid = cnp.flatnonzero(stale_mask).tolist()
            invalid_set = set(invalid)
            # evict memo entries over touched-row slices: gather the drop
            # set in two vector ops (touched-or-dead via the mask, merged
            # away via the compressed roots) instead of a scalar find per
            # retained entry.  The drop *set* — and therefore the surviving
            # dict state — is exactly the scalar loop's.
            roots = egraph._np_roots()
            for table in (self.best, self.class_nodes):
                if not table:
                    continue
                cids = cnp.fromiter(table.keys(), dtype=cnp.int64, count=len(table))
                drop = stale_mask[cids] | (roots[cids] != cids)
                if table is self.best:
                    for cid in cids[drop].tolist():
                        del self.best[cid]
                        del self.tie[cid]
                else:
                    for cid in cids[drop].tolist():
                        del table[cid]
        else:
            invalid = [cls.id for cls in egraph.eclasses() if cls.touched > since]
            invalid_set = set(invalid)
            for cid in list(self.best):
                if cid in invalid_set or find(cid) != cid:
                    del self.best[cid]
                    del self.tie[cid]
            for cid in list(self.class_nodes):
                if cid in invalid_set or find(cid) != cid:
                    del self.class_nodes[cid]
        self._index(egraph, cost_function, invalid)
        self._relax(invalid_set)
        return len(invalid)

    # -- internals -----------------------------------------------------------

    def _index(self, egraph: EGraph, cost_function: CostFunction, cids) -> None:
        """(Re)build ``class_nodes`` entries and dependent edges for *cids*."""

        find = egraph.uf.find
        parent = egraph.uf._parent
        dependents = self.dependents
        classes = egraph.classes
        cost_cache = self._cost_cache
        enode_cost = cost_function.enode_cost
        view = egraph._view
        for cid in cids:
            cls = classes.get(cid)
            if cls is None:
                cls = classes[find(cid)]
            entries = []
            for key in cls.keys:
                children: Tuple[int, ...] = key[2:]
                # post-rebuild keys are canonical; only re-find on the
                # (rare) stale spelling (inlined UnionFind.is_root)
                for c in children:
                    if parent[c] != c:
                        children = tuple([find(x) for x in children])
                        break
                cost = cost_cache.get(key)
                if cost is None:
                    cost = enode_cost(view(key))
                    cost_cache[key] = cost
                # arity 0/1/2 dominate the operator vocabulary: handle them
                # without allocating a set per key
                n = len(children)
                if n == 0:
                    entries.append((key, cost, children, 0, 0))
                    continue
                if n == 1:
                    a = children[0]
                    entries.append((key, cost, children, 1 if a == cid else 0, 1))
                    deps = dependents.get(a)
                    if deps is None:
                        dependents[a] = {cid}
                    else:
                        deps.add(cid)
                    continue
                if n == 2:
                    a, b = children
                    self_ref = 1 if (a == cid or b == cid) else 0
                    entries.append(
                        (key, cost, children, self_ref, 1 if a == b else 2)
                    )
                    deps = dependents.get(a)
                    if deps is None:
                        dependents[a] = {cid}
                    else:
                        deps.add(cid)
                    if b != a:
                        deps = dependents.get(b)
                        if deps is None:
                            dependents[b] = {cid}
                        else:
                            deps.add(cid)
                    continue
                child_set = set(children)
                entries.append(
                    (
                        key,
                        cost,
                        children,
                        1 if cid in child_set else 0,
                        len(child_set),
                    )
                )
                for child in child_set:
                    dependents.setdefault(child, set()).add(cid)
            self.class_nodes[cid] = entries

    def _relax(self, pending: Set[int]) -> None:
        # Worklist relaxation instead of repeated whole-graph passes: when a
        # class's best cost improves, only the classes whose e-nodes point at
        # it are re-evaluated — O(edges) re-evaluations instead of
        # O(passes * nodes).
        #
        # Equal-cost ties are broken by, in order: not referencing the
        # node's own class (a self-referential choice cannot be
        # reconstructed as a term), fewer *distinct* child classes (more
        # sharing, which the DAG objective rewards — e.g. prefer
        # ``(+ x x)`` over an equal-tree-cost chain), then the
        # deterministic key order.
        best = self.best
        tie = self.tie
        class_nodes = self.class_nodes
        dependents = self.dependents
        key_order = self.key_order
        while pending:
            cid = pending.pop()
            nodes = class_nodes.get(cid)
            if nodes is None:
                # a stale dependent edge to a class merged away
                continue
            entry: Optional[Tuple[float, NodeKey]] = None
            entry_tie: Optional[Tuple[int, int, tuple]] = None
            for key, base_cost, children, self_ref, n_distinct in nodes:
                total = base_cost
                feasible = True
                for child in children:
                    child_best = best.get(child)
                    if child_best is None:
                        feasible = False
                        break
                    total += child_best[0]
                if not feasible:
                    continue
                if entry is None or total < entry[0]:
                    entry = (total, key)
                    entry_tie = (self_ref, n_distinct, key_order(key))
                elif total == entry[0]:
                    cand_tie = (self_ref, n_distinct, key_order(key))
                    if cand_tie < entry_tie:
                        entry = (total, key)
                        entry_tie = cand_tie
            if entry is None:
                continue
            current = best.get(cid)
            if current is None or entry[0] < current[0] or (
                entry[0] == current[0] and entry_tie < tie[cid]
            ):
                improved_cost = current is None or entry[0] < current[0]
                best[cid] = entry
                tie[cid] = entry_tie
                if improved_cost:
                    # tie-break-only changes don't alter this class's cost,
                    # so parents need no re-evaluation
                    pending.update(dependents.get(cid, ()))


class _SameObject:
    """Equality-by-identity wrapper that keeps its referent alive.

    Used for memo cost keys of models without declared weights: holding a
    strong reference guarantees a recycled ``id`` can never masquerade as
    the original cost function.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object) -> None:
        self.obj = obj

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SameObject) and other.obj is self.obj

    def __hash__(self) -> int:
        return object.__hash__(self.obj)


def _cost_key(cost_function: CostFunction) -> tuple:
    """Identity of a cost assignment, for memo-validity checks.

    Weighted cost models compare by (class, weights); anything else is
    trusted only against the very same object, so a memo can never serve
    costs computed under a different pricing.
    """

    weights = getattr(cost_function, "weights", None)
    if weights is not None:
        return (type(cost_function).__qualname__, weights)
    return (type(cost_function).__qualname__, _SameObject(cost_function))


class ExtractionMemo:
    """Shared extraction state for repeated runs over one e-graph.

    Pass the same memo to successive :class:`TreeExtractor` /
    :class:`DagExtractor` constructions (or :func:`extract_best` calls) to
    reuse the DP table across them.  The memo re-binds automatically when
    it sees a different e-graph or cost assignment, refreshes the table
    incrementally when the bound e-graph changed (see
    :meth:`_DPState.refresh`), and additionally caches whole
    :class:`ExtractionResult` objects per (method, roots) at a fixed
    e-graph version.  Not safe for concurrent use from multiple threads.
    """

    def __init__(self) -> None:
        self._egraph: Optional[EGraph] = None
        self._cost_key: Optional[tuple] = None
        self._state: Optional[_DPState] = None
        #: e-graph version at which ``_state`` was last brought up to date.
        self._state_version: int = -1
        #: (method, roots) -> (e-graph version, result)
        self._results: Dict[tuple, Tuple[int, ExtractionResult]] = {}
        # -- counters (surfaced via stats_dict) ---------------------------
        self.full_builds: int = 0
        self.refreshes: int = 0
        self.reused_classes: int = 0
        self.recomputed_classes: int = 0
        self.result_hits: int = 0
        self.result_misses: int = 0

    # -- DP-table level -----------------------------------------------------

    def refresh(self, egraph: EGraph, cost_function: CostFunction) -> int:
        """Bring the DP table up to date with *egraph*; returns #recomputed.

        The in-loop entry point for anytime extraction: call it at an
        iteration boundary (after ``rebuild``, never mid-phase — the
        incremental refresh reads canonical class ids and touched stamps)
        and the table is ready for O(changed-region) extractions.  A plain
        :func:`extract_best` with this memo performs the same refresh
        implicitly; this method exists for callers that want the refresh
        cost surfaced separately from the extraction proper.
        """

        before = self.recomputed_classes
        self.table_for(egraph, cost_function)
        return self.recomputed_classes - before

    def table_for(self, egraph: EGraph, cost_function: CostFunction) -> _DPState:
        """The up-to-date DP state for *egraph* under *cost_function*."""

        key = _cost_key(cost_function)
        if self._egraph is not egraph or self._cost_key != key:
            self._bind(egraph, key)
        if self._state is None:
            self._state = _DPState.build(egraph, cost_function)
            self._state_version = egraph.version
            self.full_builds += 1
            self.recomputed_classes += len(self._state.class_nodes)
        elif self._state_version != egraph.version:
            before = len(self._state.best)
            recomputed = self._state.refresh(
                egraph, cost_function, self._state_version
            )
            self._state_version = egraph.version
            self.refreshes += 1
            self.recomputed_classes += recomputed
            self.reused_classes += max(0, before - recomputed)
        else:
            self.reused_classes += len(self._state.best)
        return self._state

    # -- result level --------------------------------------------------------

    @staticmethod
    def _result_key(method: str, roots: Sequence[int], time_limit: float) -> tuple:
        # only the ILP solver is budget-sensitive: two budgets may yield
        # different (both valid) solutions, so they must not share a slot
        return (method, tuple(roots), time_limit if method == "ilp" else None)

    def cached_result(
        self,
        egraph: EGraph,
        cost_function: CostFunction,
        method: str,
        roots: Sequence[int],
        time_limit: float = 0.0,
    ) -> Optional[ExtractionResult]:
        if self._egraph is not egraph or self._cost_key != _cost_key(cost_function):
            self.result_misses += 1
            return None
        entry = self._results.get(self._result_key(method, roots, time_limit))
        if entry is not None and entry[0] == egraph.version:
            self.result_hits += 1
            return entry[1]
        self.result_misses += 1
        return None

    def store_result(
        self,
        egraph: EGraph,
        cost_function: CostFunction,
        method: str,
        roots: Sequence[int],
        result: ExtractionResult,
        time_limit: float = 0.0,
    ) -> None:
        key = _cost_key(cost_function)
        if self._egraph is not egraph or self._cost_key != key:
            self._bind(egraph, key)
        self._results[self._result_key(method, roots, time_limit)] = (
            egraph.version, result,
        )

    # -- introspection -------------------------------------------------------

    def stats_dict(self) -> Dict[str, int]:
        return {
            "full_builds": self.full_builds,
            "refreshes": self.refreshes,
            "reused_classes": self.reused_classes,
            "recomputed_classes": self.recomputed_classes,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
        }

    # -- internals -----------------------------------------------------------

    def _bind(self, egraph: EGraph, key: tuple) -> None:
        self._egraph = egraph
        self._cost_key = key
        self._state = None
        self._state_version = -1
        self._results = {}


class TreeExtractor:
    """Minimise tree cost per e-class by fixpoint dynamic programming.

    With a *memo*, the DP table is borrowed from (and kept inside) the
    memo so repeated extractions of the same e-graph skip straight to the
    incremental refresh; without one, the table is computed from scratch
    and discarded with the extractor.

    A memo-backed extractor *aliases* the memo's live table: after the
    e-graph changes and a newer memoized extraction refreshes the memo,
    queries on the older extractor reflect the refreshed state.  Extract
    (or read ``best_cost``/``best_node``) before triggering the next
    refresh — or use a memo-less extractor for a stable snapshot.
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction,
        memo: Optional[ExtractionMemo] = None,
    ) -> None:
        self.egraph = egraph
        self.cost_function = cost_function
        self.memo = memo
        self._state: Optional[_DPState] = None
        self._best: Dict[int, Tuple[float, NodeKey]] = {}
        self._computed = False

    # -- fixpoint ------------------------------------------------------------

    def _compute(self) -> None:
        if self._computed:
            return
        if self.memo is not None:
            state = self.memo.table_for(self.egraph, self.cost_function)
        else:
            state = _DPState.build(self.egraph, self.cost_function)
        self._state = state
        self._best = state.best
        self._computed = True

    # -- public API -----------------------------------------------------------

    def best_cost(self, eclass_id: int) -> float:
        """Minimum tree cost of the class containing *eclass_id*."""

        self._compute()
        entry = self._best.get(self.egraph.find(eclass_id))
        if entry is None:
            raise ExtractionError(f"no finite-cost term for e-class {eclass_id}")
        return entry[0]

    def best_key(self, eclass_id: int) -> NodeKey:
        """The chosen interned node key of the class containing *eclass_id*."""

        self._compute()
        entry = self._best.get(self.egraph.find(eclass_id))
        if entry is None:
            raise ExtractionError(f"no finite-cost term for e-class {eclass_id}")
        return entry[1]

    def best_node(self, eclass_id: int) -> ENode:
        """The chosen e-node of the class containing *eclass_id* (view)."""

        return self.egraph._view(self.best_key(eclass_id))

    def extract_term(self, eclass_id: int) -> Term:
        """Reconstruct the minimum-tree-cost term of the class."""

        key = self.best_key(eclass_id)
        children = tuple(self.extract_term(key[i]) for i in range(2, len(key)))
        egraph = self.egraph
        return Term(egraph.op_names[key[0]], children, egraph.payloads[key[1]])

    def extract(self, roots: Sequence[int]) -> ExtractionResult:
        """Extract all roots using per-class tree-optimal choices."""

        start = time.perf_counter()
        self._compute()
        terms: Dict[int, Term] = {}
        for root in roots:
            terms[root] = self.extract_term(root)
            terms[self.egraph.find(root)] = terms[root]
        reachable = _reachable_from_keys(self.egraph, roots, self.best_key)
        choices = {cid: self.best_key(cid) for cid in reachable}
        cost = _dag_cost_keys(self._state, choices, self.cost_function)
        view = self.egraph._view
        return ExtractionResult(
            {cid: view(key) for cid, key in choices.items()},
            terms,
            cost,
            time.perf_counter() - start,
            "tree",
        )


#: e-node -> tie-break key for the ENode-based (boundary) extractors.  The
#: key involves str(payload); e-nodes are value-hashed, so one cache serves
#: every extractor and e-graph in the process.  Cleared wholesale when it
#: grows past the (generous) bound rather than tracking LRU order.
_NODE_ORDER_KEYS: Dict[ENode, tuple] = {}
_NODE_ORDER_KEYS_LIMIT = 1 << 20


def _node_order_key(enode: ENode) -> tuple:
    """Deterministic tie-break so extraction is reproducible."""

    key = _NODE_ORDER_KEYS.get(enode)
    if key is None:
        if len(_NODE_ORDER_KEYS) >= _NODE_ORDER_KEYS_LIMIT:
            _NODE_ORDER_KEYS.clear()
        key = (enode.op, str(enode.payload), enode.children)
        _NODE_ORDER_KEYS[enode] = key
    return key


def _reachable_from_keys(
    egraph: EGraph, roots: Sequence[int], key_of
) -> Set[int]:
    """Classes reachable from the roots through the selected node keys."""

    seen: Set[int] = set()
    find = egraph.uf.find
    stack = [find(r) for r in roots]
    while stack:
        cid = stack.pop()
        if cid in seen:
            continue
        seen.add(cid)
        key = key_of(cid)
        for i in range(2, len(key)):
            stack.append(find(key[i]))
    return seen


def _reachable_from(
    egraph: EGraph, roots: Sequence[int], choice_of
) -> Set[int]:
    """Classes reachable from the roots through the selected e-nodes."""

    seen: Set[int] = set()
    stack = [egraph.find(r) for r in roots]
    while stack:
        cid = stack.pop()
        if cid in seen:
            continue
        seen.add(cid)
        node = choice_of(cid)
        for child in node.children:
            stack.append(egraph.find(child))
    return seen


def _dag_cost(choices: Dict[int, ENode], cost_function: CostFunction) -> float:
    """Sum of selected e-node costs, each e-class counted once."""

    return float(sum(cost_function.enode_cost(n) for n in choices.values()))


def _dag_cost_keys(
    state: _DPState, choices: Dict[int, NodeKey], cost_function: CostFunction
) -> float:
    """DAG cost of a key-level selection (per-key costs from the state)."""

    key_cost = state.key_cost
    return float(sum(key_cost(key, cost_function) for key in choices.values()))


# ---------------------------------------------------------------------------
# Greedy DAG extraction
# ---------------------------------------------------------------------------


class DagExtractor:
    """Greedy DAG extraction: tree-optimal per-class choices, DAG-costed.

    This matches the paper's objective (common e-classes counted once) under
    a greedy per-class choice; the exact optimum is available from
    :class:`ILPExtractor` and the two are compared in the ablation bench.
    The improvement search runs entirely over interned keys.
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction,
        memo: Optional[ExtractionMemo] = None,
    ) -> None:
        self.egraph = egraph
        self.cost_function = cost_function
        self._tree = TreeExtractor(egraph, cost_function, memo)

    def extract(self, roots: Sequence[int]) -> ExtractionResult:
        start = time.perf_counter()
        original_roots = list(roots)
        roots = [self.egraph.find(r) for r in roots]

        tree = self._tree
        reachable = _reachable_from_keys(self.egraph, roots, tree.best_key)
        choices: Dict[int, NodeKey] = {
            cid: tree.best_key(cid) for cid in reachable
        }

        self._improve_dag(roots, choices)

        # Re-derive reachability after improvement and drop unused classes.
        reachable = _reachable_from_keys(self.egraph, roots, lambda c: choices[c])
        choices = {cid: choices[cid] for cid in reachable}

        view = self.egraph._view
        node_choices = {cid: view(key) for cid, key in choices.items()}
        terms: Dict[int, Term] = {}
        memo: Dict[int, Term] = {}
        for original, root in zip(original_roots, roots):
            term = _term_from_choices(self.egraph, node_choices, root, memo)
            terms[root] = term
            terms[original] = term
        cost = _dag_cost_keys(tree._state, choices, self.cost_function)
        return ExtractionResult(
            node_choices, terms, cost, time.perf_counter() - start, "dag-greedy"
        )

    # -- DAG-aware local search ----------------------------------------------

    def _tree_level(self, cid: int, cache: Dict[int, int]) -> int:
        """Topological level of *cid* in the tree-best selection.

        Levels strictly decrease along tree-best edges, so restricting a
        candidate node's children to lower levels than its class keeps any
        selection built from them acyclic.
        """

        cached = cache.get(cid)
        if cached is not None:
            return cached
        find = self.egraph.uf.find
        tree_best = self._tree._best
        stack = [(cid, False)]
        in_progress: Set[int] = set()
        while stack:
            current, expanded = stack.pop()
            if expanded:
                key = tree_best[current][1]
                lv = 0
                for i in range(2, len(key)):
                    lv = max(lv, cache[find(key[i])])
                cache[current] = lv + 1
                in_progress.discard(current)
                continue
            if current in cache:
                continue
            if current in in_progress:
                raise ExtractionError(
                    f"cyclic tree-best selection through e-class {current}"
                )
            entry = tree_best.get(current)
            if entry is None:
                raise ExtractionError(f"no finite-cost term for e-class {current}")
            in_progress.add(current)
            stack.append((current, True))
            key = entry[1]
            for i in range(2, len(key)):
                c = find(key[i])
                if c not in cache:
                    stack.append((c, False))
        return cache[cid]

    def _improve_dag(
        self, roots: Sequence[int], choices: Dict[int, NodeKey], max_passes: int = 8
    ) -> None:
        """Savings-aware local search over the selected DAG (in place).

        The per-class tree-optimal selection is blind to sharing: an
        equal-tree-cost node can pull in a chain of classes used nowhere
        else while an alternative reuses classes the selection already
        pays for (the paper's CSE objective).  Starting from the greedy
        selection, repeatedly switch one class's choice when the *DAG*
        cost strictly improves — newly required classes are priced at
        their tree-best cost (an upper bound on their real marginal cost)
        and classes that become unreachable are credited via a
        reference-count cascade.  Every commit strictly decreases the DAG
        cost, and the tree-level guard keeps the selection acyclic, so the
        search terminates.
        """

        egraph = self.egraph
        find = egraph.uf.find
        parent = egraph.uf._parent
        state = self._tree._state
        key_order = state.key_order
        # every key this search touches (class members, tree-best choices)
        # was priced by the DP build, so cost lookups are direct indexing
        cost_of = state._cost_cache.__getitem__
        # the graph does not mutate during the local search, so canonical
        # child sets can be memoized per key for the whole call
        ch_memo: Dict[NodeKey, frozenset] = {}

        def children_of(key: NodeKey) -> frozenset:
            result = ch_memo.get(key)
            if result is None:
                tail = key[2:]
                # selection keys are canonical after rebuild; skip find()
                # unless a child id is stale (inlined UnionFind.is_root)
                for c in tail:
                    if parent[c] != c:
                        result = frozenset(find(x) for x in tail)
                        break
                else:
                    result = frozenset(tail)
                ch_memo[key] = result
            return result

        tree_best = self._tree._best
        levels: Dict[int, int] = {}

        protected = set(roots)
        refs: Dict[int, int] = {cid: 0 for cid in choices}
        for key in choices.values():
            for ch in children_of(key):
                refs[ch] = refs.get(ch, 0) + 1

        #: None = full sweep; afterwards only classes whose selection
        #: neighbourhood changed in the previous pass are revisited.
        dirty: Optional[Set[int]] = None
        for _ in range(max_passes):
            changed_classes: Set[int] = set()
            if dirty is None:
                order = sorted(choices)
            else:
                order = sorted(c for c in dirty if c in choices)
            for cid in order:
                if cid not in choices:
                    continue  # dropped by an earlier cascade this pass
                current = choices[cid]
                cls_keys = egraph.keys_of(cid)
                if len(cls_keys) == 1:
                    # the current choice is the only node: no candidate can
                    # exist, so skip the releasable-cost cascade outright
                    continue
                try:
                    class_level = self._tree_level(cid, levels)
                except ExtractionError:
                    continue
                cur_cost = cost_of(current)
                cur_children = children_of(current)
                # Candidate-independent upper bound on the releasable cost:
                # cascade as if every current child lost its reference.
                # Excluding a candidate's reused children or counting its
                # new references only shrinks the real figure, so any
                # candidate with cost(cand) - cur_cost >= freed_ub can
                # never produce a negative delta (added_cost >= 0) and is
                # rejected before the per-candidate simulation.
                freed_ub = 0.0
                # the cascade can only free anything if some direct child
                # loses its last reference; checking that first avoids the
                # per-class dict/set allocations in the common no-op case
                # (the check is exactly the cascade's first level)
                releasable = False
                for ch in cur_children:
                    if (
                        refs.get(ch, 0) <= 1
                        and ch not in protected
                        and ch in choices
                    ):
                        releasable = True
                        break
                if releasable:
                    ub_dec: Dict[int, int] = {}
                    ub_removed: Set[int] = set()
                    process = list(cur_children)
                    for ch in process:
                        ub_dec[ch] = ub_dec.get(ch, 0) + 1
                    while process:
                        c = process.pop()
                        if c in ub_removed or c in protected or c not in choices:
                            continue
                        if refs.get(c, 0) - ub_dec.get(c, 0) > 0:
                            continue
                        ub_removed.add(c)
                        removed_key = choices[c]
                        freed_ub += cost_of(removed_key)
                        for gc in children_of(removed_key):
                            ub_dec[gc] = ub_dec.get(gc, 0) + 1
                            process.append(gc)
                threshold = cur_cost + freed_ub - 1e-9
                candidates = [
                    k
                    for k in cls_keys
                    if k != current and cost_of(k) < threshold
                ]
                if not candidates:
                    continue
                best = None
                if len(candidates) > 1:
                    candidates.sort(key=key_order)
                commit_bar = -1e-9  # tightens to the best delta as commits land
                for cand in candidates:
                    cand_children = children_of(cand)
                    if cid in cand_children:
                        continue
                    if cand_children == cur_children:
                        # same child set (commuted/reassociated spelling
                        # over the same classes — the common case in a
                        # saturated class): no class is added or freed, so
                        # the exact delta is the node-cost difference and
                        # the cascade simulation is a no-op.  The tree-level
                        # guard also holds trivially (the children already
                        # support the current choice at this level).
                        delta = cost_of(cand) - cur_cost
                        if delta < commit_bar:
                            best = (delta, cand, [], {}, {}, [])
                            commit_bar = delta
                        continue
                    # Branch-and-bound: delta = cost(cand) - cur_cost +
                    # added_cost - freed, with freed <= freed_ub and
                    # added_cost at least the node costs of cand's direct
                    # children outside the selection (the closure only adds
                    # more).  The commit rule is strictly-less-than, so a
                    # candidate whose lower bound reaches the bar can never
                    # displace the best — skip its cascade simulation.
                    added_lb = 0.0
                    feasible = True
                    for ch in cand_children:
                        if ch not in choices:
                            entry = tree_best.get(ch)
                            if entry is None:
                                feasible = False
                                break
                            added_lb += cost_of(entry[1])
                    if not feasible:
                        continue
                    if cost_of(cand) - cur_cost + added_lb - freed_ub >= commit_bar:
                        continue
                    try:
                        if any(
                            self._tree_level(ch, levels) >= class_level
                            for ch in cand_children
                        ):
                            continue
                    except ExtractionError:
                        continue

                    # classes the switch newly requires: closure over the
                    # tree-best choices of classes outside the selection
                    added: List[int] = []
                    added_set: Set[int] = set()
                    added_cost = 0.0
                    feasible = True
                    stack = [ch for ch in cand_children if ch not in choices]
                    while stack:
                        c = stack.pop()
                        if c in added_set or c in choices:
                            continue
                        entry = tree_best.get(c)
                        if entry is None:
                            feasible = False
                            break
                        added_set.add(c)
                        added.append(c)
                        added_cost += cost_of(entry[1])
                        entry_key = entry[1]
                        for i in range(2, len(entry_key)):
                            g = find(entry_key[i])
                            if g not in choices and g not in added_set:
                                stack.append(g)
                    if not feasible:
                        continue

                    # simulate the reference-count shift of the switch:
                    # +1 for classes cand newly references (and references
                    # made by added classes), -1 cascade from classes only
                    # the current choice needed
                    inc: Dict[int, int] = {}
                    for ch in cand_children - cur_children:
                        inc[ch] = inc.get(ch, 0) + 1
                    for c in added:
                        added_key = tree_best[c][1]
                        for gc in children_of(added_key):
                            inc[gc] = inc.get(gc, 0) + 1
                    dec: Dict[int, int] = {}
                    freed = 0.0
                    removed: List[int] = []
                    removed_set: Set[int] = set()
                    process = list(cur_children - cand_children)
                    for ch in process:
                        dec[ch] = dec.get(ch, 0) + 1
                    while process:
                        c = process.pop()
                        if c in removed_set or c in protected or c not in choices:
                            continue
                        if refs.get(c, 0) + inc.get(c, 0) - dec.get(c, 0) > 0:
                            continue
                        removed_set.add(c)
                        removed.append(c)
                        removed_key = choices[c]
                        freed += cost_of(removed_key)
                        for gc in children_of(removed_key):
                            dec[gc] = dec.get(gc, 0) + 1
                            process.append(gc)

                    delta = cost_of(cand) - cur_cost + added_cost - freed
                    if delta < commit_bar:
                        best = (delta, cand, added, inc, dec, removed)
                        commit_bar = delta

                if best is None:
                    continue
                _, cand, added, inc, dec, removed = best
                choices[cid] = cand
                for c in added:
                    choices[c] = tree_best[c][1]
                    refs.setdefault(c, 0)
                for c, n in inc.items():
                    refs[c] = refs.get(c, 0) + n
                for c, n in dec.items():
                    refs[c] = refs.get(c, 0) - n
                for c in removed:
                    del choices[c]
                    refs.pop(c, None)
                changed_classes.add(cid)
                changed_classes.update(added)
                changed_classes.update(inc)
                changed_classes.update(dec)
                changed_classes.update(removed)
            if not changed_classes:
                break
            # revisit the changed classes and every selected class whose
            # choice references one (their freed_ub / sharing opportunities
            # may have shifted)
            dirty = set(changed_classes)
            for c, key in choices.items():
                for i in range(2, len(key)):
                    if find(key[i]) in changed_classes:
                        dirty.add(c)
                        break


def _term_from_choices(
    egraph: EGraph, choices: Dict[int, ENode], root: int, _memo: Optional[Dict[int, Term]] = None
) -> Term:
    """Build the term for *root* following the per-class selection."""

    memo: Dict[int, Term] = {} if _memo is None else _memo

    def build(cid: int, trail: Tuple[int, ...]) -> Term:
        cid = egraph.find(cid)
        if cid in memo:
            return memo[cid]
        if cid in trail:
            raise ExtractionError(f"cyclic selection through e-class {cid}")
        node = choices[cid]
        children = tuple(build(c, trail + (cid,)) for c in node.children)
        term = Term(node.op, children, node.payload)
        memo[cid] = term
        return term

    return build(root, ())


def resolve_result(
    egraph: EGraph,
    result: ExtractionResult,
    roots: Sequence[int],
    cost_function: CostFunction,
) -> Optional[ExtractionResult]:
    """Rebase a snapshot :class:`ExtractionResult` onto the current e-graph.

    An anytime-extraction snapshot (see
    :class:`~repro.egraph.runner.AnytimeExtraction`) selects e-nodes under
    the class ids that were canonical at the iteration that produced it;
    merges in later iterations may have re-canonicalized or collapsed
    those classes.  This re-keys every choice through ``find``, resolves
    collisions of collapsed classes deterministically (cheaper node first,
    then the stable node order), re-derives reachability from *roots*,
    rebuilds the per-root terms, and re-prices the selection as a DAG
    under *cost_function*.

    Returns ``None`` when the snapshot is no longer a valid selection —
    a collapse routed a choice's children outside the selection, or made
    the selection cyclic — in which case callers should fall back to a
    fresh extraction.  E-nodes themselves are never invalidated by merges,
    so for a snapshot taken on *this* e-graph that is the only failure
    mode.
    """

    find = egraph.find
    merged: Dict[int, ENode] = {}
    for cid, node in result.choices.items():
        canon = find(cid)
        other = merged.get(canon)
        if other is None or other is node:
            merged[canon] = node
            continue
        # two snapshot classes collapsed into one: keep the cheaper node
        # (the selection pays each class once), tie-broken deterministically
        cost_node = cost_function.enode_cost(node)
        cost_other = cost_function.enode_cost(other)
        if (cost_node, _node_order_key(node)) < (cost_other, _node_order_key(other)):
            merged[canon] = node

    terms: Dict[int, Term] = {}
    memo: Dict[int, Term] = {}
    try:
        for root in roots:
            term = _term_from_choices(egraph, merged, root, memo)
            terms[root] = term
            terms[find(root)] = term
        reachable = _reachable_from(egraph, roots, lambda c: merged[c])
    except (ExtractionError, KeyError):
        return None
    choices = {cid: merged[cid] for cid in reachable}
    return ExtractionResult(
        choices,
        terms,
        _dag_cost(choices, cost_function),
        result.elapsed,
        result.method,
    )


# ---------------------------------------------------------------------------
# ILP extraction (scipy.optimize.milp)
# ---------------------------------------------------------------------------


class ILPExtractor:
    """Exact DAG-cost extraction as a 0/1 integer linear program.

    Variables: one binary *selection* variable per (e-class, e-node) pair,
    one binary *activation* variable per e-class, and one continuous
    *level* variable per e-class for cycle elimination.  Constraints:

    * every root class is active,
    * an active class selects at least one of its e-nodes,
    * a selected e-node activates every child class,
    * ``level[child] <= level[class] - 1 + M * (1 - select)`` forbids cycles.

    Objective: minimise the sum of selected e-node costs (DAG cost).
    Works over the ENode boundary views: the solver dominates the runtime,
    so the view construction cost is irrelevant here.
    """

    def __init__(
        self,
        egraph: EGraph,
        cost_function: CostFunction,
        time_limit: float = 30.0,
    ) -> None:
        self.egraph = egraph
        self.cost_function = cost_function
        self.time_limit = time_limit

    def extract(self, roots: Sequence[int]) -> ExtractionResult:
        from scipy.optimize import Bounds, LinearConstraint, milp

        start = time.perf_counter()
        egraph = self.egraph
        original_roots = list(roots)
        roots = [egraph.find(r) for r in roots]

        # Restrict the program to classes reachable from the roots through
        # *any* e-node (not just selected ones) to keep it small.
        classes = self._reachable_closure(roots)
        class_list = sorted(classes)
        class_index = {cid: i for i, cid in enumerate(class_list)}

        node_entries: List[Tuple[int, ENode]] = []
        for cid in class_list:
            for node in sorted(egraph.nodes_of(cid), key=_node_order_key):
                if all(egraph.find(c) in classes for c in node.children):
                    node_entries.append((cid, node))
        if not node_entries:
            raise ExtractionError("no extractable nodes for the requested roots")

        n_nodes = len(node_entries)
        n_classes = len(class_list)
        # variable layout: [x_0..x_{n_nodes-1}, a_0..a_{n_classes-1}, t_0..t_{n_classes-1}]
        n_vars = n_nodes + n_classes + n_classes
        big_m = n_classes + 1

        costs = np.zeros(n_vars)
        for i, (_, node) in enumerate(node_entries):
            costs[i] = self.cost_function.enode_cost(node)

        integrality = np.concatenate(
            [np.ones(n_nodes + n_classes), np.zeros(n_classes)]
        )
        lower = np.zeros(n_vars)
        upper = np.concatenate(
            [np.ones(n_nodes + n_classes), np.full(n_classes, float(n_classes))]
        )

        rows: List[np.ndarray] = []
        lbs: List[float] = []
        ubs: List[float] = []

        def add_row(coeffs: Dict[int, float], lb: float, ub: float) -> None:
            row = np.zeros(n_vars)
            for index, value in coeffs.items():
                row[index] = value
            rows.append(row)
            lbs.append(lb)
            ubs.append(ub)

        x_of: Dict[int, List[int]] = {cid: [] for cid in class_list}
        for i, (cid, _) in enumerate(node_entries):
            x_of[cid].append(i)

        a_index = {cid: n_nodes + class_index[cid] for cid in class_list}
        t_index = {cid: n_nodes + n_classes + class_index[cid] for cid in class_list}

        # roots are active
        for root in roots:
            add_row({a_index[root]: 1.0}, 1.0, 1.0)

        # active class selects >= 1 node: sum x - a >= 0
        for cid in class_list:
            coeffs = {i: 1.0 for i in x_of[cid]}
            coeffs[a_index[cid]] = coeffs.get(a_index[cid], 0.0) - 1.0
            add_row(coeffs, 0.0, np.inf)

        # selection implies child activation and acyclicity
        for i, (cid, node) in enumerate(node_entries):
            for child in node.children:
                child_c = egraph.find(child)
                # a_child - x_i >= 0
                add_row({a_index[child_c]: 1.0, i: -1.0}, 0.0, np.inf)
                # t_child <= t_cid - 1 + M (1 - x_i)
                #  => t_child - t_cid + M x_i <= M - 1
                if child_c == cid:
                    # a self-loop can never be part of an acyclic selection
                    add_row({i: 1.0}, 0.0, 0.0)
                    continue
                add_row(
                    {t_index[child_c]: 1.0, t_index[cid]: -1.0, i: float(big_m)},
                    -np.inf,
                    float(big_m - 1),
                )

        constraints = LinearConstraint(np.vstack(rows), np.array(lbs), np.array(ubs))
        result = milp(
            c=costs,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options={"time_limit": self.time_limit},
        )
        if not result.success or result.x is None:
            raise ExtractionError(f"ILP extraction failed: {result.message}")

        x = result.x[:n_nodes]
        choices: Dict[int, ENode] = {}
        for cid in class_list:
            chosen = None
            best_val = 0.5
            for i in x_of[cid]:
                if x[i] > best_val:
                    best_val = x[i]
                    chosen = node_entries[i][1]
            if chosen is not None:
                choices[cid] = chosen

        reachable = _reachable_from(egraph, roots, lambda c: choices[c])
        choices = {cid: choices[cid] for cid in reachable}
        terms: Dict[int, Term] = {}
        memo: Dict[int, Term] = {}
        for original, root in zip(original_roots, roots):
            term = _term_from_choices(egraph, choices, root, memo)
            terms[root] = term
            terms[original] = term
        cost = _dag_cost(choices, self.cost_function)
        return ExtractionResult(
            choices, terms, cost, time.perf_counter() - start, "ilp"
        )

    def _reachable_closure(self, roots: Sequence[int]) -> Set[int]:
        seen: Set[int] = set()
        stack = list(roots)
        egraph = self.egraph
        find = egraph.uf.find
        while stack:
            cid = find(stack.pop())
            if cid in seen:
                continue
            seen.add(cid)
            for key in egraph.keys_of(cid):
                for i in range(2, len(key)):
                    stack.append(key[i])
        return seen


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


def extract_best(
    egraph: EGraph,
    roots: Sequence[int],
    cost_function: CostFunction,
    method: str = "dag-greedy",
    time_limit: float = 30.0,
    memo: Optional[ExtractionMemo] = None,
) -> ExtractionResult:
    """Extract the best terms for *roots* using the requested method.

    ``method`` is one of ``"tree"``, ``"dag-greedy"`` (default) or ``"ilp"``.
    With a *memo*, repeated calls against the same (unchanged) e-graph
    return the cached :class:`ExtractionResult`, and tree / dag-greedy
    extraction after e-graph changes reuses the memoized DP table
    incrementally.  Cached results are shared objects — treat them as
    read-only, as every pipeline consumer does.
    """

    if memo is not None:
        cached = memo.cached_result(egraph, cost_function, method, roots, time_limit)
        if cached is not None:
            return cached
    if method == "tree":
        result = TreeExtractor(egraph, cost_function, memo).extract(roots)
    elif method == "dag-greedy":
        result = DagExtractor(egraph, cost_function, memo).extract(roots)
    elif method == "ilp":
        result = ILPExtractor(egraph, cost_function, time_limit).extract(roots)
    else:
        raise ValueError(f"unknown extraction method {method!r}")
    if memo is not None:
        memo.store_result(egraph, cost_function, method, roots, result, time_limit)
    return result
