"""E-graph engine: the equality-saturation substrate.

A faithful, pure-Python re-implementation of the parts of the ``egg``
library that ACC Saturator relies on, built on a flat interned core:
operators and payloads intern to small integers per graph, e-nodes are
``(op_id, payload_id, *child_ids)`` key tuples in struct-of-arrays
hashcons/arena structures, and :class:`~repro.egraph.egraph.ENode` is a
lazily materialised boundary view for user code:

* :class:`~repro.egraph.unionfind.UnionFind` — canonical e-class ids,
* :class:`~repro.egraph.egraph.EGraph` — hash-consed interned e-nodes,
  congruence closure with deferred batched rebuilding, and e-class
  analyses,
* :class:`~repro.egraph.pattern.Pattern` — e-matching of pattern terms,
  with an op-indexed compiled engine
  (:class:`~repro.egraph.pattern.CompiledPattern`) behind it,
* :class:`~repro.egraph.rewrite.Rewrite` — rewrite rules (with optional
  dynamic right-hand sides and guards), searched incrementally,
* :class:`~repro.egraph.runner.Runner` — the saturation loop with e-node,
  iteration and wall-clock limits (paper §VII: 10,000 e-nodes, 10 rewriting
  iterations, 10 s saturation, 30 s extraction) and per-rule profiling
  (:class:`~repro.egraph.runner.RuleStats`),
* :mod:`~repro.egraph.extract` — cost-based term extraction: greedy tree,
  greedy DAG (shared e-classes counted once, as in the paper's CSE) and an
  ILP formulation solved with ``scipy.optimize.milp`` standing in for CBC.
"""

from repro.egraph.analysis import Analysis, ConstantFoldingAnalysis
from repro.egraph.egraph import EClass, EGraph, ENode, NodeKey
from repro.egraph.extract import (
    DagExtractor,
    ExtractionMemo,
    ExtractionResult,
    ILPExtractor,
    TreeExtractor,
    extract_best,
    resolve_result,
)
from repro.egraph.language import Term
from repro.egraph.pattern import (
    CompiledPattern,
    Pattern,
    PatternVar,
    compile_pattern,
    parse_pattern,
)
from repro.egraph.rewrite import Rewrite, rewrite
from repro.egraph.runner import (
    AnytimeExtraction,
    IterationCallback,
    Runner,
    RunnerLimits,
    RunnerReport,
    RuleStats,
    StopReason,
)
from repro.egraph.schedule import (
    BackoffScheduler,
    MatchBudgetScheduler,
    RuleScheduler,
    SimpleScheduler,
    make_scheduler,
)
from repro.egraph.unionfind import UnionFind

__all__ = [
    "Analysis",
    "AnytimeExtraction",
    "BackoffScheduler",
    "CompiledPattern",
    "ConstantFoldingAnalysis",
    "DagExtractor",
    "MatchBudgetScheduler",
    "RuleScheduler",
    "SimpleScheduler",
    "make_scheduler",
    "EClass",
    "EGraph",
    "ENode",
    "ExtractionResult",
    "ILPExtractor",
    "NodeKey",
    "Pattern",
    "PatternVar",
    "Rewrite",
    "RuleStats",
    "Runner",
    "RunnerLimits",
    "RunnerReport",
    "StopReason",
    "Term",
    "TreeExtractor",
    "UnionFind",
    "compile_pattern",
    "ExtractionMemo",
    "IterationCallback",
    "extract_best",
    "parse_pattern",
    "resolve_result",
    "rewrite",
]
