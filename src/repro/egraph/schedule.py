"""Rule schedulers: who gets searched, and how many matches get applied.

The :class:`~repro.egraph.runner.Runner` used to hard-code one policy —
every rule, every iteration, every match.  That policy is still the
default (:class:`SimpleScheduler`, bit-for-bit identical outcomes), but
the search and apply phases are now mediated by a :class:`RuleScheduler`,
so saturation can ration its budget instead of letting one exploding rule
(associativity is the usual culprit) drown every iteration:

* :class:`SimpleScheduler` — search everything, apply everything.
* :class:`BackoffScheduler` — egg's exponential-backoff policy: a rule
  whose match count blows past its (per-rule, doubling) threshold has the
  whole batch dropped and is banned for an exponentially growing number
  of iterations, freeing the iteration budget for cheap rules.
* :class:`MatchBudgetScheduler` — caps the matches *applied* per rule per
  iteration to a rotating window of the PR-3 sorted-bucket match order
  (children ids, payload), so the retained window — and therefore the
  whole run — is deterministic across processes.

**Soundness with incremental search.**  The runner only advances a rule's
incremental-scan stamp when every match found in an iteration was handed
to ``apply``.  Both curtailing schedulers report a dropped or truncated
batch via the second element of :meth:`RuleScheduler.admit`'s return
value, which keeps the stamp pinned: the next un-banned scan revisits
everything touched since the last *committed* scan, so dropped matches
are re-found rather than lost (re-applying a committed match is a no-op
union).

**Saturation detection.**  An iteration that applies zero unions only
proves saturation if no rule was skipped or curtailed along the way;
schedulers expose that through :meth:`RuleScheduler.exhaustive`, and the
runner keeps iterating (within its limits) instead of mis-reporting
``SATURATED`` while rules sit banned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.egraph.rewrite import Rewrite

__all__ = [
    "BackoffScheduler",
    "MatchBudgetScheduler",
    "RuleScheduler",
    "SimpleScheduler",
    "make_scheduler",
]

#: A match batch as produced by :meth:`Rewrite.search`.
MatchList = List[Tuple[int, dict]]


class RuleScheduler:
    """Policy hooks the saturation loop consults around search and apply.

    The base class *is* the do-nothing policy; subclasses override the
    hooks they care about.  One scheduler instance drives one
    :meth:`Runner.run` at a time (:meth:`reset` re-arms it for reuse).
    """

    #: Spelling used by :func:`make_scheduler` and recorded in reports.
    name: str = "scheduler"

    def reset(self, rules: Sequence[Rewrite]) -> None:
        """Called once when a run starts, before the first iteration."""

    def begin_iteration(self, iteration: int) -> None:
        """Called at the top of every iteration, before any search."""

    def should_search(self, iteration: int, index: int, rule: Rewrite) -> bool:
        """Whether *rule* participates in this iteration's search phase."""

        return True

    def search_limit(
        self, iteration: int, index: int, rule: Rewrite
    ) -> Optional[int]:
        """Match-count cap passed to :meth:`Rewrite.search` (None = all).

        A scheduler that will discard matches past a budget anyway can
        bound the search itself.  Soundness is enforced by the runner, not
        by convention: whenever a capped search returns ``limit`` matches
        (so the cap may have cut the batch short), the rule's
        incremental-scan stamp stays pinned regardless of what
        :meth:`admit` reports, and the next scan re-finds the tail.
        """

        return None

    def admit(
        self, iteration: int, index: int, rule: Rewrite, matches: MatchList
    ) -> Tuple[MatchList, bool]:
        """Decide which of *matches* the apply phase receives.

        Returns ``(matches_to_apply, complete)``.  ``complete`` must be
        False whenever any found match was dropped — the runner then keeps
        the rule's incremental-scan stamp unchanged so the dropped matches
        are re-found by a later scan.
        """

        return matches, True

    def end_iteration(self, iteration: int, applied: int) -> None:
        """Called after apply+rebuild with the iteration's union count."""

    def exhaustive(self) -> bool:
        """True if the scheduler can certify the iteration was exhaustive.

        Only then may the runner interpret an iteration with zero unions
        as saturation.  Trivially true for the base policy; curtailing
        schedulers must either have skipped nothing this iteration or
        otherwise prove that every pending match has been tried (see
        :meth:`MatchBudgetScheduler.exhaustive`).
        """

        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name!r}>"


class SimpleScheduler(RuleScheduler):
    """Every rule, every iteration, every match — the classic loop.

    This is the default and reproduces the pre-scheduler runner outcome
    bit for bit (same search order, same apply order, same stamps).
    """

    name = "simple"


class BackoffScheduler(RuleScheduler):
    """Exponential backoff per rule, after egg's ``BackoffScheduler``.

    Each rule starts with a match threshold of ``match_limit``.  When one
    search turns up more matches than the threshold, the batch is dropped
    and the rule is banned for ``ban_length << times_banned`` iterations;
    each ban doubles both the threshold and the next ban length.  Hot
    rules with huge match sets thus fire occasionally at full blast
    instead of dominating every iteration, while cheap rules keep running
    — the egg heuristic for not letting associativity starve the rest of
    the rule set.

    All state is integer arithmetic over deterministically ordered match
    lists, so backoff runs are byte-identical across processes.
    """

    name = "backoff"

    def __init__(self, match_limit: int = 1000, ban_length: int = 5) -> None:
        if match_limit < 1:
            raise ValueError("match_limit must be at least 1")
        if ban_length < 1:
            raise ValueError("ban_length must be at least 1")
        self.match_limit = match_limit
        self.ban_length = ban_length
        #: Per-rule-index ban counters (parallel to the runner's rules).
        self._times_banned: List[int] = []
        self._banned_until: List[int] = []
        self._curtailed = False

    def reset(self, rules: Sequence[Rewrite]) -> None:
        self._times_banned = [0] * len(rules)
        self._banned_until = [0] * len(rules)
        self._curtailed = False

    def begin_iteration(self, iteration: int) -> None:
        self._curtailed = False

    def should_search(self, iteration: int, index: int, rule: Rewrite) -> bool:
        if iteration < self._banned_until[index]:
            self._curtailed = True
            return False
        return True

    def admit(
        self, iteration: int, index: int, rule: Rewrite, matches: MatchList
    ) -> Tuple[MatchList, bool]:
        banned = self._times_banned[index]
        threshold = self.match_limit << banned
        if len(matches) > threshold:
            # drop the whole batch and ban the rule; the incremental-scan
            # stamp stays pinned (complete=False) so the next un-banned
            # scan re-finds these matches
            self._times_banned[index] = banned + 1
            self._banned_until[index] = iteration + 1 + (self.ban_length << banned)
            self._curtailed = True
            return [], False
        return matches, True

    def exhaustive(self) -> bool:
        # a zero-union iteration proves nothing while any rule sat out —
        # its banked matches may still union something once it returns
        # (every live ban trips should_search, which sets _curtailed)
        return not self._curtailed

    # -- introspection (tests, benchmarks) -------------------------------

    def stats_dict(self) -> Dict[str, Dict[str, int]]:
        """Per-rule-index ban state, for reports and assertions."""

        return {
            str(index): {"times_banned": banned, "banned_until": until}
            for index, (banned, until) in enumerate(
                zip(self._times_banned, self._banned_until)
            )
            if banned
        }


class MatchBudgetScheduler(RuleScheduler):
    """Cap the matches applied per rule per iteration at a fixed budget.

    Matches arrive in the PR-3 deterministic sorted-bucket order; each
    over-budget batch contributes a **rotating window** of that order —
    the window start advances by ``budget`` per truncated batch, wrapping
    around — so successive iterations work through the whole match set
    instead of re-applying the same prefix forever (the incremental-scan
    stamp stays pinned while truncating, so every batch re-finds the
    still-pending matches).  Window starts are a pure function of the
    iteration history, so truncated runs are reproducible across
    processes.
    """

    name = "match-budget"

    def __init__(self, budget: int = 256) -> None:
        if budget < 1:
            raise ValueError("budget must be at least 1")
        self.budget = budget
        self._curtailed = False
        #: Per-rule-index rotating window start into the match order.
        self._offset: List[int] = []
        #: Iterations one full rotation of this iteration's largest
        #: truncated batch takes (0 when nothing was truncated).
        self._iter_cycle = 0
        #: Consecutive zero-union truncated iterations, and the longest
        #: rotation cycle seen across them (see :meth:`exhaustive`).
        self._zero_streak = 0
        self._streak_cycle = 0

    def reset(self, rules: Sequence[Rewrite]) -> None:
        self._curtailed = False
        self._offset = [0] * len(rules)
        self._iter_cycle = 0
        self._zero_streak = 0
        self._streak_cycle = 0

    def begin_iteration(self, iteration: int) -> None:
        self._curtailed = False
        self._iter_cycle = 0

    def admit(
        self, iteration: int, index: int, rule: Rewrite, matches: MatchList
    ) -> Tuple[MatchList, bool]:
        n = len(matches)
        if n <= self.budget:
            # the whole batch fits: committed, and the rotation restarts
            # from the top of whatever the next over-budget batch holds
            self._offset[index] = 0
            return matches, True
        self._curtailed = True
        self._iter_cycle = max(self._iter_cycle, -(-n // self.budget))
        start = self._offset[index] % n
        self._offset[index] = start + self.budget
        window = matches[start : start + self.budget]
        if len(window) < self.budget:
            window += matches[: self.budget - len(window)]
        return window, False

    def end_iteration(self, iteration: int, applied: int) -> None:
        if applied == 0 and self._curtailed:
            self._zero_streak += 1
            self._streak_cycle = max(self._streak_cycle, self._iter_cycle)
        else:
            self._zero_streak = 0
            self._streak_cycle = 0

    def exhaustive(self) -> bool:
        # Truncated iterations can still certify saturation: a zero-union
        # iteration leaves the e-graph untouched, so the (pinned-stamp)
        # match lists of the next iteration are identical and the windows
        # keep rotating — once the zero streak spans a full rotation of
        # the largest truncated batch, every pending match has been
        # applied without producing a union.
        if not self._curtailed:
            return True
        return self._streak_cycle > 0 and self._zero_streak >= self._streak_cycle


def make_scheduler(
    spec: Union[None, str, RuleScheduler] = None
) -> RuleScheduler:
    """Build a scheduler from its CLI/config spelling.

    ``None`` and ``"simple"`` mean :class:`SimpleScheduler`;
    ``"backoff[:MATCH_LIMIT[:BAN_LENGTH]]"`` and
    ``"match-budget[:BUDGET]"`` parameterise the other two.  An existing
    :class:`RuleScheduler` passes through unchanged.
    """

    if spec is None:
        return SimpleScheduler()
    if isinstance(spec, RuleScheduler):
        return spec
    text = spec.strip().lower()
    name, _, params = text.partition(":")
    args = [p for p in params.split(":") if p] if params else []
    try:
        if name == "simple" and not args:
            return SimpleScheduler()
        if name == "backoff" and len(args) <= 2:
            return BackoffScheduler(*(int(a) for a in args))
        if name in ("match-budget", "budget") and len(args) <= 1:
            return MatchBudgetScheduler(*(int(a) for a in args))
    except ValueError as exc:
        raise ValueError(f"invalid scheduler spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown scheduler spec {spec!r}; expected simple, "
        f"backoff[:MATCH_LIMIT[:BAN_LENGTH]] or match-budget[:BUDGET]"
    )
