"""The term language shared by the e-graph, the rules, and the extractors.

A :class:`Term` is an ordinary operator tree: an operator name, an optional
payload (the numeric value of a literal or the name of a symbol), and child
terms.  Terms are what the SSA builder produces from kernel statements, what
patterns are written in, and what extraction returns to the code generator.

Operator vocabulary used by the ACC Saturator pipeline
-------------------------------------------------------

===========  ==============================================================
operator     meaning
===========  ==============================================================
``num``      numeric literal; payload is an ``int`` or ``float``
``sym``      free variable (kernel input); payload is the variable name
``+ - * /``  arithmetic; ``%`` is modulo
``neg``      unary minus
``fma``      fused multiply-add ``fma(a, b, c) = a + b * c``
``load``     array load ``load(array, index...)``
``store``    array store ``store(array, index..., value)``
``call``     function call; payload is the callee name
``phi``      gated φ node ``phi(cond, true_value, false_value)``
``phi-loop`` loop φ node ``phi-loop(cond, body_value, init_value)``
``cmp?``     comparisons keep their C spelling (``<`` ``<=`` ``==`` ...)
``cast``     C cast; payload is the type name
``member``   struct member access; payload is the field name
``ternary``  C conditional expression
===========  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple, Union

__all__ = ["Term", "num", "sym", "op"]

Payload = Union[int, float, str, None]


@dataclass(frozen=True, eq=False)
class Term:
    """An immutable operator tree.

    Equality and hashing are payload-*type*-aware: the integer literal ``1``
    and the floating-point literal ``1.0`` are different terms, because C
    gives them different semantics (``1/3`` is 0, ``1.0/3.0`` is not).
    """

    op: str
    children: Tuple["Term", ...] = ()
    payload: Payload = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self.op == other.op
            and self.payload == other.payload
            and type(self.payload) is type(other.payload)
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.op, self.payload, type(self.payload).__name__, self.children))

    # -- constructors -------------------------------------------------------

    @staticmethod
    def num(value: Union[int, float]) -> "Term":
        """A numeric literal term."""

        return Term("num", (), value)

    @staticmethod
    def sym(name: str) -> "Term":
        """A free-variable (symbol) term."""

        return Term("sym", (), name)

    @staticmethod
    def call(name: str, *args: "Term") -> "Term":
        """A function-call term with callee *name*."""

        return Term("call", tuple(args), name)

    # -- queries -------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_constant(self) -> bool:
        return self.op == "num"

    @property
    def is_symbol(self) -> bool:
        return self.op == "sym"

    def walk(self) -> Iterator["Term"]:
        """Yield this term and all descendants, pre-order."""

        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Total number of nodes in the tree."""

        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""

        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def symbols(self) -> set:
        """The set of free-variable names occurring in the term."""

        return {t.payload for t in self.walk() if t.op == "sym"}

    def map_children(self, fn) -> "Term":
        """Return a copy with ``fn`` applied to every direct child."""

        return Term(self.op, tuple(fn(c) for c in self.children), self.payload)

    # -- rendering -----------------------------------------------------------

    def __str__(self) -> str:
        if self.op == "num":
            return repr(self.payload)
        if self.op == "sym":
            return str(self.payload)
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            return f"({label})"
        inner = " ".join(str(c) for c in self.children)
        return f"({label} {inner})"


def num(value: Union[int, float]) -> Term:
    """Shorthand for :meth:`Term.num`."""

    return Term.num(value)


def sym(name: str) -> Term:
    """Shorthand for :meth:`Term.sym`."""

    return Term.sym(name)


def op(name: str, *children: Term, payload: Payload = None) -> Term:
    """Build an operator term."""

    return Term(name, tuple(children), payload)
