"""Columnar backing store for the e-graph arena.

The PR-3 arena made every e-node a flat int tuple (its *key*); this module
adds the columnar half: one **row per spelling ever interned** into the
hashcons, stored as parallel flat integer columns

    ``(op_id, payload_id, child0.., class_id, alive)``

backed by stdlib ``array('q')`` buffers.  The store is append-only — a
spelling retired by the rebuild sweep is *killed* (``alive = 0``), never
removed — and mirrors the hashcons dict exactly:

* iterating rows in ascending order restricted to alive rows yields the
  hashcons keys **in dict iteration order** (a popped key is re-inserted
  at the end of the dict, and its re-insertion appends a fresh row; an
  overwrite of a live key keeps both its dict position and its row), and
* ``cls[row]`` is union-find-equal to the hashcons value of
  ``keys[row]`` for alive rows (overwrites of a live key skip the mirror
  write — the dict's new value is always the merged root of the row's
  old one, and column readers canonicalise ``cls`` anyway).

That order invariant is what lets the stale-key sweep and the relational
e-matcher run as batched column passes without perturbing any of the
deterministic orders the engine's committed outcomes depend on
(``EGraph.check_invariants`` asserts it).

numpy is a *soft* dependency: when importable (and not disabled via the
``REPRO_NO_NUMPY=1`` escape hatch) the ``array`` buffers are viewed
zero-copy through :func:`as_int64` / :func:`as_uint8` and the hot passes
vectorise; otherwise the same columns serve the pure-Python fallback
loops.  Callers select per call site — the stored data is identical under
both backends, so outcomes cannot depend on which one is active.
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ColumnStore",
    "HAVE_NUMPY",
    "REPRO_NO_NUMPY",
    "RowBatch",
    "as_int64",
    "as_uint8",
    "np",
    "vec_find",
]

NodeKey = Tuple[int, ...]

#: ``REPRO_NO_NUMPY=1`` forces the ``array``-module fallback even when
#: numpy is importable (debugging escape hatch; also exercised in CI).
REPRO_NO_NUMPY = os.environ.get("REPRO_NO_NUMPY", "").strip() not in ("", "0")

if REPRO_NO_NUMPY:
    np = None
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except Exception:  # pragma: no cover - exercised via REPRO_NO_NUMPY CI runs
        np = None

HAVE_NUMPY = np is not None

#: Eight ``0xff`` bytes — the two's-complement encoding of a -1 padding
#: cell in an ``array('q')`` column (used to backfill new child columns).
_PAD = b"\xff" * 8


def as_int64(buf: array):
    """Zero-copy numpy int64 view of an ``array('q')`` buffer.

    The view aliases the array's current buffer: it is invalidated by any
    subsequent append (which may reallocate), so callers take a fresh view
    per batched pass and never cache one across mutations.
    """

    if not len(buf):
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(buf, dtype=np.int64, count=len(buf))


def as_uint8(buf: bytearray):
    """Zero-copy numpy uint8 view of a ``bytearray`` (same caveat)."""

    if not len(buf):
        return np.empty(0, dtype=np.uint8)
    return np.frombuffer(buf, dtype=np.uint8, count=len(buf))


class RowBatch:
    """Lazy list-of-tuples facade over an int64 match-row matrix.

    The relational matcher produces its result as one ``(n, width)``
    ndarray; materialising ``n`` Python tuples out of it costs more than
    the join itself, and the batched applier consumes the matrix
    directly.  A RowBatch defers the tuples: it quacks like the list the
    scan matcher returns (length, indexing, slicing, iteration,
    equality — all yielding plain int tuples) but only builds them on
    first such access, and slices pull just their window from the
    matrix.  ``mat`` is the backing matrix; consumers that can work
    columnar read it and never pay for tuples at all.
    """

    __slots__ = ("mat", "_rows")

    def __init__(self, mat):
        self.mat = mat
        self._rows = None

    def _materialize(self) -> list:
        rows = self._rows
        if rows is None:
            # .tolist() materialises Python ints (not np.int64) — bindings
            # flow into key tuples and must hash/compare like arena ids
            rows = self._rows = list(map(tuple, self.mat.tolist()))
        return rows

    def __len__(self) -> int:
        return len(self.mat)

    def __bool__(self) -> bool:
        return len(self.mat) > 0

    def __getitem__(self, i):
        rows = self._rows
        if rows is not None:
            return rows[i]
        if isinstance(i, slice):
            return list(map(tuple, self.mat[i].tolist()))
        return tuple(self.mat[i].tolist())

    def __iter__(self):
        return iter(self._materialize())

    def __eq__(self, other):
        if isinstance(other, RowBatch):
            other = other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __ne__(self, other):
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return f"RowBatch({self._materialize()!r})"


def vec_find(parent, ids):
    """Canonical ids of *ids* under the *parent* array (gather to fixpoint).

    Equivalent to mapping ``uf.find`` but vectorised; terminates because
    every gather moves ids strictly up the union-find forest.
    """

    out = parent[ids]
    while True:
        nxt = parent[out]
        if np.array_equal(nxt, out):
            return out
        out = nxt


class ColumnStore:
    """Append-only parallel columns mirroring the e-graph's hashcons.

    Child columns are padded with ``-1`` up to the widest arity seen so
    far; a new widest arity backfills a fresh ``-1`` column for all
    existing rows (operator vocabularies are small, so this is rare).
    ``rows_by_op`` groups row indices per operator id — the relational
    matcher's relations are slices of these groups.
    """

    __slots__ = (
        "op",
        "payload",
        "nchild",
        "cls",
        "alive",
        "child",
        "keys",
        "row_of",
        "rows_by_op",
        "pending",
        "touch",
        "touch_stamp",
        "epoch",
    )

    def __init__(self) -> None:
        #: Operator id per row.
        self.op = array("q")
        #: Payload id per row.
        self.payload = array("q")
        #: Child count per row (distinguishes a -1 pad from absence).
        self.nchild = array("q")
        #: Hashcons value (e-class id) per row; union-find-equal to the
        #: live hashcons entry of the row's key (readers canonicalise).
        self.cls = array("q")
        #: 1 while the row's key is in the hashcons, 0 once retired.
        self.alive = bytearray()
        #: Child-slot columns ``child[i][row]``, ``-1``-padded.
        self.child: List[array] = []
        #: row -> the key tuple it was appended for (all rows, ever).
        self.keys: List[NodeKey] = []
        #: key -> its *live* row (mirrors the hashcons key set exactly;
        #: a retired key leaves, a re-interned one maps to its new row).
        self.row_of: Dict[NodeKey, int] = {}
        #: op id -> ascending row indices (live and dead) with that op.
        self.rows_by_op: Dict[int, array] = {}
        #: append buffer: key -> cls_id for fresh spellings not yet
        #: materialised as rows.  The apply phase appends thousands of
        #: fresh spellings but nothing *reads* the columns until the next
        #: rebuild/search, so :meth:`append_new` just queues and
        #: :meth:`flush` does the column writes in bulk.  A dict (not a
        #: list) so that :meth:`kill` and :meth:`insert` of a
        #: still-pending key resolve inside the buffer — a killed pending
        #: key simply never materialises (dead rows are invisible to
        #: every reader), and dict insertion order keeps materialised row
        #: order equal to hashcons dict order.  Only the column readers
        #: (:meth:`op_rows`, :meth:`stale_alive_rows`, :meth:`copy`) and
        #: ``EGraph.check_invariants`` flush.
        self.pending: Dict[NodeKey, int] = {}
        #: Per-row touch stamp: the ``touched`` version of the row's
        #: (canonical) class as of the last :meth:`EGraph._sync_row_touch`.
        #: Fresh rows materialise with ``-1`` (unsynced); the sync stamp
        #: below tells readers whether the column is current.  The delta
        #: readers of the semi-naive join engine slice this column, so
        #: "rows in classes touched since stamp S" is a vector compare,
        #: not a Python loop.
        self.touch = array("q")
        #: ``EGraph.version`` at the last touch sync (-1 = never synced).
        self.touch_stamp = -1
        #: Bumped by :meth:`compact`: row indices handed out before a
        #: compaction are invalid after it, so caches keyed on
        #: ``(version, len(store))`` include this to survive the corner
        #: case where re-keying restores a previous length without a
        #: version bump.
        self.epoch = 0

    def __len__(self) -> int:
        return len(self.keys) + len(self.pending)

    # ------------------------------------------------------------------
    # Mutation (mirrors of the three hashcons operations)
    # ------------------------------------------------------------------

    def append_new(self, key: NodeKey, cls_id: int) -> None:
        """Mirror ``hashcons[key] = cls_id`` for a key known to be absent.

        The :meth:`EGraph.add_key` fast path: the caller just missed the
        hashcons, so the ``row_of`` probe of :meth:`insert` is skipped.
        The row itself is deferred to :meth:`flush` — queue order equals
        dict insertion order, so materialised row order still equals
        hashcons dict order.  (The caller's contract guarantees the key is
        not already pending: an absent hashcons key was either never
        interned or popped since, and the pop resolved any pending entry.)
        """

        self.pending[key] = cls_id

    def flush(self) -> None:
        """Materialise queued :meth:`append_new` rows as columns (in bulk)."""

        pending = self.pending
        if not pending:
            return
        keys = self.keys
        row = len(keys)
        batch = list(pending)
        keys.extend(batch)
        row_of = self.row_of
        for key in batch:
            row_of[key] = row
            row += 1
        self.op.extend([key[0] for key in batch])
        self.payload.extend([key[1] for key in batch])
        ncs = [len(key) - 2 for key in batch]
        self.nchild.extend(ncs)
        self.cls.extend(pending.values())
        self.alive.extend(b"\x01" * len(batch))
        self.touch.frombytes(_PAD * len(batch))  # -1 = not yet touch-synced
        child = self.child
        widest = max(ncs)
        if widest > len(child):
            base = len(keys) - len(batch)
            for _ in range(len(child), widest):
                child.append(array("q", _PAD * base))
        for i, col in enumerate(child):
            col.extend([key[i + 2] if ncs[j] > i else -1 for j, key in enumerate(batch)])
        rows_by_op = self.rows_by_op
        row = len(keys) - len(batch)
        for key in batch:
            op_id = key[0]
            bucket = rows_by_op.get(op_id)
            if bucket is None:
                rows_by_op[op_id] = array("q", (row,))
            else:
                bucket.append(row)
            row += 1
        pending.clear()

    def insert(self, key: NodeKey, cls_id: int) -> None:
        """Mirror ``hashcons[key] = cls_id`` (overwrite or fresh insert)."""

        pending = self.pending
        if pending and key in pending:
            pending[key] = cls_id  # overwrite in place, queue position kept
            return
        row = self.row_of.get(key)
        if row is None:
            self.append_new(key, cls_id)
        else:
            self.cls[row] = cls_id

    def kill(self, key: NodeKey) -> Optional[int]:
        """Mirror ``hashcons.pop(key, None)``; returns the retired row.

        A still-pending key is simply dropped from the buffer: the row
        would be dead on arrival, and dead rows are invisible to every
        column reader.  (A later re-interning of the same spelling queues
        at the buffer's end, exactly like the dict's pop + re-insert.)
        """

        pending = self.pending
        if pending and pending.pop(key, None) is not None:
            return None
        row = self.row_of.pop(key, None)
        if row is not None:
            self.alive[row] = 0
        return row

    # ------------------------------------------------------------------
    # Batched passes (numpy backend only; callers gate on HAVE_NUMPY)
    # ------------------------------------------------------------------

    def stale_alive_rows(self, parent):
        """Ascending indices of alive rows with a non-root child id.

        *parent* is the union-find parent array as an int64 ndarray.  The
        predicate per row is exactly the scalar sweep's: some child ``c``
        has ``parent[c] != c``.  Ascending row order equals hashcons dict
        order (the store's core invariant), so handing these rows to the
        sweep preserves its merge-discovery order bit for bit.
        """

        if self.pending:
            self.flush()
        alive = as_uint8(self.alive) != 0
        stale = np.zeros(len(self.keys), dtype=bool)
        for col in self.child:
            c = as_int64(col)
            present = c >= 0
            safe = np.where(present, c, 0)
            stale |= present & (parent[safe] != safe)
        stale &= alive
        return np.flatnonzero(stale)

    def op_rows(self, op_id: int):
        """int64 view of the (live and dead) row indices with *op_id*."""

        if self.pending:
            self.flush()
        bucket = self.rows_by_op.get(op_id)
        if bucket is None:
            return None
        return as_int64(bucket)

    def rows_touched_since(self, op_id: int, stamp: int):
        """Ascending *live* row indices with *op_id* in classes touched
        after *stamp* — the delta slice of the semi-naive join engine.

        Reads the per-row :attr:`touch` column, so the caller must have
        synced it (``EGraph._sync_row_touch``) since the last graph
        mutation; with ``stamp = -1`` this is exactly the live rows of the
        op (every class carries a touched version >= 1).  Returns None
        when the op has no rows at all.
        """

        rows = self.op_rows(op_id)
        if rows is None:
            return None
        touch = as_int64(self.touch)[rows]
        alive = as_uint8(self.alive)[rows]
        return rows[(alive != 0) & (touch > stamp)]

    # ------------------------------------------------------------------

    def compact(self) -> int:
        """Drop dead (tombstoned) rows, renumbering the live ones.

        Live rows keep their relative order, which is the hashcons dict
        order — the store's core invariant — so every deterministic order
        derived from ascending live rows is unchanged.  Row *indices* do
        change: :attr:`epoch` is bumped so index-keyed caches (the
        relation cache, parent snapshots) can tell, and the per-row
        :attr:`touch` column is compacted in the same pass so the delta
        readers stay coherent.  Pending appends are flushed first — a
        compaction halfway through an append buffer would otherwise
        interleave old and new rows.  Returns the number of rows dropped.
        """

        if self.pending:
            self.flush()
        alive = self.alive
        dead = len(alive) - sum(alive)
        if not dead:
            return 0
        keep = [row for row, a in enumerate(alive) if a]
        self.op = array("q", [self.op[r] for r in keep])
        self.payload = array("q", [self.payload[r] for r in keep])
        self.nchild = array("q", [self.nchild[r] for r in keep])
        self.cls = array("q", [self.cls[r] for r in keep])
        self.touch = array("q", [self.touch[r] for r in keep])
        self.child = [array("q", [col[r] for r in keep]) for col in self.child]
        keys = self.keys
        self.keys = [keys[r] for r in keep]
        self.alive = bytearray(b"\x01" * len(keep))
        self.row_of = {key: row for row, key in enumerate(self.keys)}
        rows_by_op = {}
        for row, key in enumerate(self.keys):
            bucket = rows_by_op.get(key[0])
            if bucket is None:
                rows_by_op[key[0]] = array("q", (row,))
            else:
                bucket.append(row)
        self.rows_by_op = rows_by_op
        self.epoch += 1
        # row indices moved: force a touch re-sync before the next delta read
        self.touch_stamp = -1
        return dead

    # ------------------------------------------------------------------

    def copy(self) -> "ColumnStore":
        """Independent structural copy (tuples/ints are shared, buffers not)."""

        if self.pending:
            self.flush()
        dup = ColumnStore.__new__(ColumnStore)
        dup.op = array("q", self.op)
        dup.payload = array("q", self.payload)
        dup.nchild = array("q", self.nchild)
        dup.cls = array("q", self.cls)
        dup.alive = bytearray(self.alive)
        dup.child = [array("q", col) for col in self.child]
        dup.keys = list(self.keys)
        dup.row_of = dict(self.row_of)
        dup.rows_by_op = {op: array("q", rows) for op, rows in self.rows_by_op.items()}
        dup.pending = {}
        dup.touch = array("q", self.touch)
        dup.touch_stamp = self.touch_stamp
        dup.epoch = self.epoch
        return dup
