"""E-class analyses.

An analysis attaches a small lattice value to every e-class and keeps it
consistent across merges (egg's "e-class analysis" mechanism).  ACC
Saturator uses a single analysis: constant folding over integer and
floating-point arithmetic (paper §V-A), which both shrinks expressions and
lets the cost model treat folded subtrees as free.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.egraph.egraph import EGraph, ENode

__all__ = ["Analysis", "ConstantFoldingAnalysis"]

Number = Union[int, float]


class Analysis:
    """Interface for e-class analyses (egg-style ``make`` / ``join`` / ``modify``)."""

    #: Set True to promise that for any key *with children*,
    #: :meth:`make_key` returns the bottom element (None) whenever some
    #: child class's data is None.  The e-graph then proves the bottom
    #: result from one flag-byte read per child and skips the
    #: make/join/modify round trip entirely — both on class creation and
    #: during rebuild's analysis repair.  The skip also elides
    #: :meth:`modify`, so (as with :meth:`relevant_op_ids`) ``modify``
    #: must be a no-op on a bottom-valued class, and ``join(x, None)``
    #: must equal ``x``.
    needs_all_child_data = False

    def make(self, egraph: EGraph, enode: ENode) -> object:
        """Compute the analysis value of a freshly added e-node."""

        raise NotImplementedError

    def make_key(self, egraph: EGraph, key) -> object:
        """Arena-level entry point: compute the value of an interned key.

        ``EGraph.add_key`` calls this on every add, so analyses that care
        about throughput override it to read the interning tables directly
        (see :class:`ConstantFoldingAnalysis`).  The default materialises
        the boundary :class:`ENode` view and delegates to :meth:`make`, so
        existing subclasses keep working unchanged.
        """

        return self.make(egraph, egraph._view(key))

    def relevant_op_ids(self, egraph: EGraph):
        """Op ids whose nodes can carry a non-bottom :meth:`make` value.

        ``EGraph.add_key`` skips the :meth:`make_key` call (the class data
        stays None, exactly what :meth:`make` would have returned) for ops
        outside this set, and ``EGraph._repair_analysis`` skips parent
        nodes with such ops during rebuild — which additionally requires
        ``join(x, None) == x`` (None must be the lattice bottom), since
        the skipped make/join round trip would otherwise have been
        ``data = join(data, None)``.  Return None — the default — to be
        called for every op.  Called whenever the graph has interned new
        operators since the previous query, so implementations may compute
        the set from the current ``op_names`` table.
        """

        return None

    def join(self, a: object, b: object) -> object:
        """Combine the values of two classes being merged."""

        raise NotImplementedError

    def modify(self, egraph: EGraph, eclass_id: int) -> None:
        """Optionally mutate the e-graph based on a class's value."""


class ConstantFoldingAnalysis(Analysis):
    """Track the constant value of an e-class, if it has one.

    The analysis value is either ``None`` (not a constant) or a Python
    ``int`` / ``float``.  When a class is found to be constant, ``modify``
    injects the corresponding ``num`` leaf into the class so extraction can
    select the folded literal, mirroring egg's canonical constant-folding
    example and the paper's "constant folding of arithmetic operations with
    integer and floating-point numbers".
    """

    #: A foldable node is constant only if *every* child is (make_key
    #: bails on the first non-numeric child); ``num`` leaves have no
    #: children, so the promise is vacuous for them.
    needs_all_child_data = True

    #: Operators folded by the analysis.
    _FOLDABLE = {"+", "-", "*", "/", "%", "neg", "fma",
                 "<", ">", "<=", ">=", "==", "!=", "min", "max"}

    def __init__(self, fold_division: bool = True) -> None:
        self.fold_division = fold_division
        #: (egraph, #ops interned, num op id, foldable op-id set) — the
        #: interned view of ``_FOLDABLE`` for the graph this analysis last
        #: served, rebuilt whenever the graph interns a new operator.
        self._opid_cache: Optional[tuple] = None

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _value_of(egraph: EGraph, eclass_id: int) -> Optional[Number]:
        data = egraph.data_of(eclass_id)
        return data if isinstance(data, (int, float)) else None

    def _fold(self, op: str, args: list[Number]) -> Optional[Number]:
        try:
            if op == "+":
                return args[0] + args[1]
            if op == "-":
                return args[0] - args[1]
            if op == "*":
                return args[0] * args[1]
            if op == "/":
                if not self.fold_division or args[1] == 0:
                    return None
                if isinstance(args[0], int) and isinstance(args[1], int):
                    # C integer division truncates toward zero
                    quotient = abs(args[0]) // abs(args[1])
                    sign = 1 if (args[0] >= 0) == (args[1] >= 0) else -1
                    return sign * quotient
                return args[0] / args[1]
            if op == "%":
                if args[1] == 0 or not all(isinstance(a, int) for a in args):
                    return None
                return int(math.fmod(args[0], args[1]))
            if op == "neg":
                return -args[0]
            if op == "fma":
                return args[0] + args[1] * args[2]
            if op == "min":
                return min(args)
            if op == "max":
                return max(args)
            if op in ("<", ">", "<=", ">=", "==", "!="):
                table = {
                    "<": args[0] < args[1],
                    ">": args[0] > args[1],
                    "<=": args[0] <= args[1],
                    ">=": args[0] >= args[1],
                    "==": args[0] == args[1],
                    "!=": args[0] != args[1],
                }
                return int(table[op])
        except (OverflowError, ValueError):  # pragma: no cover - defensive
            return None
        return None

    # -- Analysis interface ---------------------------------------------------

    def make(self, egraph: EGraph, enode: ENode) -> Optional[Number]:
        if enode.op == "num":
            return enode.payload  # type: ignore[return-value]
        if enode.op not in self._FOLDABLE or not enode.children:
            return None
        args: list[Number] = []
        classes = egraph.classes
        find = egraph.uf.find
        for child in enode.children:
            cls = classes.get(child)
            if cls is None:
                cls = classes[find(child)]
            value = cls.data
            if not isinstance(value, (int, float)):
                return None
            args.append(value)
        folded = self._fold(enode.op, args)
        if isinstance(folded, float) and (math.isnan(folded) or math.isinf(folded)):
            return None
        return folded

    def relevant_op_ids(self, egraph: EGraph):
        """Only ``num`` and the foldable operators produce non-None data."""

        cache = self._refresh_opid_cache(egraph)
        relevant = set(cache[3])
        if cache[2] >= 0:
            relevant.add(cache[2])
        return relevant

    def _refresh_opid_cache(self, egraph: EGraph) -> tuple:
        names = egraph.op_names
        cache = self._opid_cache
        if cache is None or cache[0] is not egraph or cache[1] != len(names):
            cache = (
                egraph,
                len(names),
                egraph._op_ids.get("num", -1),
                {i for i, op in enumerate(names) if op in self._FOLDABLE},
            )
            self._opid_cache = cache
        return cache

    def make_key(self, egraph: EGraph, key) -> Optional[Number]:
        # arena fast path: runs on every class creation, so the "not
        # foldable" dominant case must be integer set membership on op ids
        # (no string hashing, no ENode view)
        cache = self._refresh_opid_cache(egraph)
        op_id = key[0]
        if op_id == cache[2]:
            return egraph.payloads[key[1]]  # type: ignore[return-value]
        if len(key) == 2 or op_id not in cache[3]:
            return None
        op = egraph.op_names[op_id]
        args: list[Number] = []
        classes = egraph.classes
        find = egraph.uf.find
        for i in range(2, len(key)):
            child = key[i]
            cls = classes.get(child)
            if cls is None:
                cls = classes[find(child)]
            value = cls.data
            if not isinstance(value, (int, float)):
                return None
            args.append(value)
        folded = self._fold(op, args)
        if isinstance(folded, float) and (math.isnan(folded) or math.isinf(folded)):
            return None
        return folded

    def join(self, a: Optional[Number], b: Optional[Number]) -> Optional[Number]:
        if a is None:
            return b
        if b is None:
            return a
        # Two constants claimed for the same class: they must agree (up to FP
        # noise introduced by reassociation); keep the first deterministically.
        return a

    def modify(self, egraph: EGraph, eclass_id: int) -> None:
        # runs on every class creation: read the class record directly
        # instead of going through data_of's find + lookup
        cls = egraph.classes.get(eclass_id)
        if cls is None:
            cls = egraph.classes[egraph.uf.find(eclass_id)]
        value = cls.data
        if not isinstance(value, (int, float)):
            return
        literal = egraph.add_leaf("num", value)
        if not egraph.is_equal(literal, eclass_id):
            egraph.merge(literal, eclass_id)
