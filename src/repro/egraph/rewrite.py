"""Rewrite rules over e-graphs.

A rewrite is a named pair *(searcher, applier)*: the searcher is a
:class:`~repro.egraph.pattern.Pattern` whose matches are collected across
the whole e-graph, and the applier either instantiates a right-hand-side
pattern (the common case — every rule in the paper's Table I is of this
form) or runs an arbitrary callable for dynamic rewrites.  An optional
guard filters matches before application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import Pattern, Substitution, parse_pattern

__all__ = ["Rewrite", "rewrite"]

#: A guard receives (egraph, matched class id, substitution) and may veto.
Guard = Callable[[EGraph, int, Substitution], bool]

#: A dynamic applier returns the e-class id to merge with the match, or None.
DynamicApplier = Callable[[EGraph, int, Substitution], Optional[int]]


@dataclass
class Rewrite:
    """A named rewrite rule ``lhs => rhs``."""

    name: str
    searcher: Pattern
    applier: Union[Pattern, DynamicApplier]
    guard: Optional[Guard] = None
    #: Set False for expansive rules that should only fire once per pair
    #: (not needed by the paper's rule set but useful for experimentation).
    bidirectional: bool = False

    # ------------------------------------------------------------------

    def search(self, egraph: EGraph) -> List[Tuple[int, Substitution]]:
        """Find all matches of the left-hand side."""

        matches = self.searcher.search(egraph)
        if self.guard is None:
            return matches
        return [
            (eclass_id, subst)
            for eclass_id, subst in matches
            if self.guard(egraph, eclass_id, subst)
        ]

    def apply(
        self, egraph: EGraph, matches: List[Tuple[int, Substitution]]
    ) -> int:
        """Apply the right-hand side to every match; returns #unions made."""

        applied = 0
        for eclass_id, subst in matches:
            if isinstance(self.applier, Pattern):
                new_id = self.applier.instantiate(egraph, subst)
            else:
                new_id = self.applier(egraph, eclass_id, subst)
                if new_id is None:
                    continue
            if not egraph.is_equal(new_id, eclass_id):
                egraph.merge(new_id, eclass_id)
                applied += 1
        return applied

    def run(self, egraph: EGraph) -> int:
        """Search and apply in one step (rebuild is the caller's job)."""

        return self.apply(egraph, self.search(egraph))

    def __str__(self) -> str:
        rhs = self.applier if isinstance(self.applier, Pattern) else "<dynamic>"
        return f"{self.name}: {self.searcher} => {rhs}"


def rewrite(
    name: str,
    lhs: Union[str, Pattern],
    rhs: Union[str, Pattern, DynamicApplier],
    guard: Optional[Guard] = None,
) -> Rewrite:
    """Build a :class:`Rewrite`, parsing textual patterns when given strings.

    Example — the paper's FMA1 rule::

        rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")
    """

    searcher = parse_pattern(lhs) if isinstance(lhs, str) else lhs
    applier: Union[Pattern, DynamicApplier]
    if isinstance(rhs, str):
        applier = parse_pattern(rhs)
    else:
        applier = rhs
    return Rewrite(name, searcher, applier, guard)
