"""Rewrite rules over e-graphs.

A rewrite is a named pair *(searcher, applier)*: the searcher is a
:class:`~repro.egraph.pattern.Pattern` whose matches are collected across
the whole e-graph, and the applier either instantiates a right-hand-side
pattern (the common case — every rule in the paper's Table I is of this
form) or runs an arbitrary callable for dynamic rewrites.  An optional
guard filters matches before application.

The searcher is compiled once (see
:class:`~repro.egraph.pattern.CompiledPattern`) and :meth:`Rewrite.search`
accepts an optional ``since`` version stamp for incremental search: classes
untouched since the rule's previous scan are skipped, which is sound
because the matches rooted there are exactly the ones the previous scan
already found (and applying a match twice is a no-op union).  The caveat:
touch stamps only track the *match cone* — a guard reading state outside
it may change its verdict without the class being touched, so the
:class:`~repro.egraph.runner.Runner` only passes ``since`` for guard-free
pattern-applier rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.egraph.egraph import EGraph
from repro.egraph.pattern import (
    CompiledPattern,
    Pattern,
    Substitution,
    compile_pattern,
    compile_row_applier,
    compile_row_instantiator,
    parse_pattern,
)

__all__ = ["Rewrite", "rewrite"]

#: A guard receives (egraph, matched class id, substitution) and may veto.
Guard = Callable[[EGraph, int, Substitution], bool]

#: A dynamic applier returns the e-class id to merge with the match, or None.
DynamicApplier = Callable[[EGraph, int, Substitution], Optional[int]]


@dataclass
class Rewrite:
    """A named rewrite rule ``lhs => rhs``."""

    name: str
    searcher: Pattern
    applier: Union[Pattern, DynamicApplier]
    guard: Optional[Guard] = None
    #: Set False for expansive rules that should only fire once per pair
    #: (not needed by the paper's rule set but useful for experimentation).
    bidirectional: bool = False

    def __post_init__(self) -> None:
        self._compiled: CompiledPattern = compile_pattern(self.searcher)
        self._compiled_rhs: Optional[CompiledPattern] = (
            compile_pattern(self.applier)
            if isinstance(self.applier, Pattern)
            else None
        )
        # rows pipeline (guard-free pattern->pattern rules only): either a
        # positional RHS builder or, for a bare-variable RHS, the row index
        # of the bound variable.  A RHS variable absent from the LHS keeps
        # the rule on the dict path, preserving its KeyError-at-apply
        # behaviour (such a rule is malformed, but the failure mode is
        # part of the observable API).
        self._inst_rows = None
        self._apply_rows_fn = None
        self._bare_idx: Optional[int] = None
        compiled_rhs = self._compiled_rhs
        if compiled_rhs is not None and self.guard is None:
            lhs_vars = self._compiled.vars
            if compiled_rhs._bare_var is not None:
                if compiled_rhs._bare_var in lhs_vars:
                    self._bare_idx = 1 + lhs_vars.index(compiled_rhs._bare_var)
            elif all(name in lhs_vars for name in compiled_rhs.vars):
                self._inst_rows = compile_row_instantiator(self.applier, lhs_vars)
                self._apply_rows_fn = compile_row_applier(self.applier, lhs_vars)

    @property
    def rows_capable(self) -> bool:
        """True when this rule can run the flat-row search/apply pipeline.

        Requires a guard-free pattern applier whose variables all occur in
        the searcher — exactly the rules the runner may also search
        incrementally.  Guarded or dynamic rules need substitution dicts
        (their callables receive one by contract).
        """

        return self._bare_idx is not None or self._inst_rows is not None

    # ------------------------------------------------------------------

    def search(
        self,
        egraph: EGraph,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[int, Substitution]]:
        """Find matches of the left-hand side.

        With ``since`` set, only classes touched after that version stamp
        are scanned (incremental search); pass None for a full scan.
        With ``limit`` set, at most that many (post-guard) matches are
        returned — the *first* ``limit`` in the deterministic sorted-bucket
        match order, so capped searches are reproducible across processes.
        A caller that truncates (e.g. the match-budget scheduler) must not
        advance its incremental-scan stamp past this scan, or the matches
        beyond the cap are lost to future scans.
        """

        matches = self._compiled.search(egraph, since)
        if self.guard is not None:
            guard = self.guard
            matches = [
                (eclass_id, subst)
                for eclass_id, subst in matches
                if guard(egraph, eclass_id, subst)
            ]
        if limit is not None and len(matches) > limit:
            del matches[limit:]
        return matches

    def search_rows(
        self,
        egraph: EGraph,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[tuple]:
        """:meth:`search` for :attr:`rows_capable` rules: flat match rows.

        Returns ``(eclass_id, v0, v1, ..)`` tuples (searcher variable
        order) in the same deterministic order as :meth:`search` — the two
        pipelines differ only in representation, never in content.  Only
        valid for guard-free rules (callers check :attr:`rows_capable`).
        """

        rows = self._compiled.search_rows(egraph, since)
        if limit is not None and len(rows) > limit:
            del rows[limit:]
        return rows

    def apply(
        self, egraph: EGraph, matches: List[Tuple[int, Substitution]]
    ) -> int:
        """Apply the right-hand side to every match; returns #unions made.

        Note that every match is applied, even ones already committed by a
        previous iteration: a redundant application is a no-op *union*, but
        its hashcons probes participate in the e-graph's node-count
        trajectory (mid-phase canonicalisation drift can spawn transient
        classes), and the node-limit check observes that trajectory.
        Skipping them would change where limit-bounded runs stop.
        """

        applied = 0
        compiled_rhs = self._compiled_rhs
        if compiled_rhs is not None:
            find = egraph.uf.find
            parent = egraph.uf._parent
            merge_roots = egraph.merge_roots
            # bind the generated arena builder directly (skips a method
            # dispatch per match); a bare-variable RHS has no builder and
            # resolves to the bound class.  The builder returns a canonical
            # root, and a matched class id is only stale if an earlier
            # match of this batch merged it — the inline parent-array check
            # skips the find call in the common still-canonical case.
            inst = compiled_rhs._inst
            if inst is None:
                bare = compiled_rhs._bare_var
                for eclass_id, subst in matches:
                    ra = find(subst[bare])
                    rb = eclass_id
                    if parent[rb] != rb:
                        rb = find(rb)
                    if ra != rb:
                        merge_roots(ra, rb)
                        applied += 1
                return applied
            for eclass_id, subst in matches:
                # the builder's class can be merged away before it returns
                # (constant folding's `modify` unions the folded literal
                # in), so its id needs the same staleness check
                ra = inst(egraph, subst)
                if parent[ra] != ra:
                    ra = find(ra)
                rb = eclass_id
                if parent[rb] != rb:
                    rb = find(rb)
                if ra != rb:
                    merge_roots(ra, rb)
                    applied += 1
            return applied

        applier = self.applier
        for eclass_id, subst in matches:
            new_id = applier(egraph, eclass_id, subst)
            if new_id is None:
                continue
            if not egraph.is_equal(new_id, eclass_id):
                egraph.merge(new_id, eclass_id)
                applied += 1
        return applied

    def apply_rows(self, egraph: EGraph, rows: List[tuple]) -> int:
        """:meth:`apply` for flat match rows from :meth:`search_rows`.

        Identical union sequence to :meth:`apply` on the equivalent dict
        matches (same builders, same staleness checks, same merge order) —
        minus the per-match substitution dict.
        """

        bare_idx = self._bare_idx
        if bare_idx is not None:
            applied = 0
            find = egraph.uf.find
            parent = egraph.uf._parent
            merge_roots = egraph.merge_roots
            for row in rows:
                ra = row[bare_idx]
                if parent[ra] != ra:
                    ra = find(ra)
                rb = row[0]
                if parent[rb] != rb:
                    rb = find(rb)
                if ra != rb:
                    merge_roots(ra, rb)
                    applied += 1
            return applied
        # generated batch loop: instantiate + staleness checks + merge,
        # with the prologue hoisted out of the per-match path
        return self._apply_rows_fn(egraph, rows)

    def run(self, egraph: EGraph) -> int:
        """Search and apply in one step (rebuild is the caller's job)."""

        return self.apply(egraph, self.search(egraph))

    def __str__(self) -> str:
        rhs = self.applier if isinstance(self.applier, Pattern) else "<dynamic>"
        return f"{self.name}: {self.searcher} => {rhs}"


def rewrite(
    name: str,
    lhs: Union[str, Pattern],
    rhs: Union[str, Pattern, DynamicApplier],
    guard: Optional[Guard] = None,
) -> Rewrite:
    """Build a :class:`Rewrite`, parsing textual patterns when given strings.

    Example — the paper's FMA1 rule::

        rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")
    """

    searcher = parse_pattern(lhs) if isinstance(lhs, str) else lhs
    applier: Union[Pattern, DynamicApplier]
    if isinstance(rhs, str):
        applier = parse_pattern(rhs)
    else:
        applier = rhs
    return Rewrite(name, searcher, applier, guard)
