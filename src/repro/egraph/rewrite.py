"""Rewrite rules over e-graphs.

A rewrite is a named pair *(searcher, applier)*: the searcher is a
:class:`~repro.egraph.pattern.Pattern` whose matches are collected across
the whole e-graph, and the applier either instantiates a right-hand-side
pattern (the common case — every rule in the paper's Table I is of this
form) or runs an arbitrary callable for dynamic rewrites.  An optional
guard filters matches before application.

The searcher is compiled once (see
:class:`~repro.egraph.pattern.CompiledPattern`) and :meth:`Rewrite.search`
accepts an optional ``since`` version stamp for incremental search: classes
untouched since the rule's previous scan are skipped, which is sound
because the matches rooted there are exactly the ones the previous scan
already found (and applying a match twice is a no-op union).  The caveat:
touch stamps only track the *match cone* — a guard reading state outside
it may change its verdict without the class being touched, so the
:class:`~repro.egraph.runner.Runner` only passes ``since`` for guard-free
pattern-applier rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import Callable, List, Optional, Tuple, Union

from repro.egraph import columns
from repro.egraph.egraph import EGraph
from repro.egraph.pattern import (
    CompiledPattern,
    Pattern,
    Substitution,
    compile_pattern,
    compile_rhs_plan,
    compile_row_applier,
    compile_row_instantiator,
    parse_pattern,
    rhs_pure_partition,
)

__all__ = ["Rewrite", "rewrite"]

#: A guard receives (egraph, matched class id, substitution) and may veto.
Guard = Callable[[EGraph, int, Substitution], bool]

#: A dynamic applier returns the e-class id to merge with the match, or None.
DynamicApplier = Callable[[EGraph, int, Substitution], Optional[int]]


@dataclass
class Rewrite:
    """A named rewrite rule ``lhs => rhs``."""

    name: str
    searcher: Pattern
    applier: Union[Pattern, DynamicApplier]
    guard: Optional[Guard] = None
    #: Set False for expansive rules that should only fire once per pair
    #: (not needed by the paper's rule set but useful for experimentation).
    bidirectional: bool = False

    def __post_init__(self) -> None:
        self._compiled: CompiledPattern = compile_pattern(self.searcher)
        self._compiled_rhs: Optional[CompiledPattern] = (
            compile_pattern(self.applier)
            if isinstance(self.applier, Pattern)
            else None
        )
        # rows pipeline (guard-free pattern->pattern rules only): either a
        # positional RHS builder or, for a bare-variable RHS, the row index
        # of the bound variable.  A RHS variable absent from the LHS keeps
        # the rule on the dict path, preserving its KeyError-at-apply
        # behaviour (such a rule is malformed, but the failure mode is
        # part of the observable API).
        self._inst_rows = None
        self._apply_rows_fn = None
        self._bare_idx: Optional[int] = None
        self._rhs_plan = None
        self._batch_cooldown = 0
        self._batch_bails = 0
        compiled_rhs = self._compiled_rhs
        if compiled_rhs is not None and self.guard is None:
            lhs_vars = self._compiled.vars
            if compiled_rhs._bare_var is not None:
                if compiled_rhs._bare_var in lhs_vars:
                    self._bare_idx = 1 + lhs_vars.index(compiled_rhs._bare_var)
                    # degenerate probe plan: no nodes, root reads the row
                    self._rhs_plan = ((), (0, self._bare_idx))
            elif all(name in lhs_vars for name in compiled_rhs.vars):
                self._inst_rows = compile_row_instantiator(self.applier, lhs_vars)
                self._apply_rows_fn = compile_row_applier(self.applier, lhs_vars)
                self._rhs_plan = compile_rhs_plan(self.applier, lhs_vars)

    @property
    def rows_capable(self) -> bool:
        """True when this rule can run the flat-row search/apply pipeline.

        Requires a guard-free pattern applier whose variables all occur in
        the searcher — exactly the rules the runner may also search
        incrementally.  Guarded or dynamic rules need substitution dicts
        (their callables receive one by contract).
        """

        return self._bare_idx is not None or self._inst_rows is not None

    # ------------------------------------------------------------------

    def search(
        self,
        egraph: EGraph,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[Tuple[int, Substitution]]:
        """Find matches of the left-hand side.

        With ``since`` set, only classes touched after that version stamp
        are scanned (incremental search); pass None for a full scan.
        With ``limit`` set, at most that many (post-guard) matches are
        returned — the *first* ``limit`` in the deterministic sorted-bucket
        match order, so capped searches are reproducible across processes.
        A caller that truncates (e.g. the match-budget scheduler) must not
        advance its incremental-scan stamp past this scan, or the matches
        beyond the cap are lost to future scans.
        """

        matches = self._compiled.search(egraph, since)
        if self.guard is not None:
            guard = self.guard
            matches = [
                (eclass_id, subst)
                for eclass_id, subst in matches
                if guard(egraph, eclass_id, subst)
            ]
        if limit is not None and len(matches) > limit:
            del matches[limit:]
        return matches

    def search_rows(
        self,
        egraph: EGraph,
        since: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[tuple]:
        """:meth:`search` for :attr:`rows_capable` rules: flat match rows.

        Returns ``(eclass_id, v0, v1, ..)`` tuples (searcher variable
        order) in the same deterministic order as :meth:`search` — the two
        pipelines differ only in representation, never in content.  Only
        valid for guard-free rules (callers check :attr:`rows_capable`).
        """

        rows = self._compiled.search_rows(egraph, since)
        if limit is not None and len(rows) > limit:
            if type(rows) is columns.RowBatch:
                rows = columns.RowBatch(rows.mat[:limit])
            else:
                del rows[limit:]
        return rows

    def apply(
        self, egraph: EGraph, matches: List[Tuple[int, Substitution]]
    ) -> int:
        """Apply the right-hand side to every match; returns #unions made.

        Note that every match is applied, even ones already committed by a
        previous iteration: a redundant application is a no-op *union*, but
        its hashcons probes participate in the e-graph's node-count
        trajectory (mid-phase canonicalisation drift can spawn transient
        classes), and the node-limit check observes that trajectory.
        Skipping them would change where limit-bounded runs stop.
        """

        applied = 0
        compiled_rhs = self._compiled_rhs
        if compiled_rhs is not None:
            find = egraph.uf.find
            parent = egraph.uf._parent
            merge_roots = egraph.merge_roots
            # bind the generated arena builder directly (skips a method
            # dispatch per match); a bare-variable RHS has no builder and
            # resolves to the bound class.  The builder returns a canonical
            # root, and a matched class id is only stale if an earlier
            # match of this batch merged it — the inline parent-array check
            # skips the find call in the common still-canonical case.
            inst = compiled_rhs._inst
            if inst is None:
                bare = compiled_rhs._bare_var
                for eclass_id, subst in matches:
                    ra = find(subst[bare])
                    rb = eclass_id
                    if parent[rb] != rb:
                        rb = find(rb)
                    if ra != rb:
                        merge_roots(ra, rb)
                        applied += 1
                return applied
            for eclass_id, subst in matches:
                # the builder's class can be merged away before it returns
                # (constant folding's `modify` unions the folded literal
                # in), so its id needs the same staleness check
                ra = inst(egraph, subst)
                if parent[ra] != ra:
                    ra = find(ra)
                rb = eclass_id
                if parent[rb] != rb:
                    rb = find(rb)
                if ra != rb:
                    merge_roots(ra, rb)
                    applied += 1
            return applied

        applier = self.applier
        for eclass_id, subst in matches:
            new_id = applier(egraph, eclass_id, subst)
            if new_id is None:
                continue
            if not egraph.is_equal(new_id, eclass_id):
                egraph.merge(new_id, eclass_id)
                applied += 1
        return applied

    def apply_rows(self, egraph: EGraph, rows: List[tuple]) -> int:
        """:meth:`apply` for flat match rows from :meth:`search_rows`.

        Identical union sequence to :meth:`apply` on the equivalent dict
        matches (same builders, same staleness checks, same merge order) —
        minus the per-match substitution dict.  Large batches first run a
        vectorised purity prepass (:func:`rhs_pure_partition`): rows whose
        application would be an invisible no-op — every RHS node already
        interned, final merge a no-op — are skipped in bulk, rows needing
        only a merge get it directly from the precomputed roots, and only
        genuinely opaque rows (a probe missed: adds must fire) run the
        scalar applier, in original row order.  A union after the prepass
        doesn't force a re-probe: each verdict carries a proof-id row, and
        a one-gather root check revalidates it (see
        :func:`rhs_pure_partition`); rows whose proof moved fall back to
        the scalar loop — which keeps the mutation sequence exactly the
        scalar loop's.
        """

        if (
            self._rhs_plan is not None
            and self._rhs_plan[0]
            and len(rows) >= 32
            and columns.HAVE_NUMPY
        ):
            # adaptive gate: a batch that bailed (merge/miss-heavy — the
            # e-graph is still growing under this rule) predicts the next
            # few will too, so skip the prepass for a while.  Pure routing
            # heuristic: both paths produce identical mutations.
            if self._batch_cooldown > 0:
                self._batch_cooldown -= 1
            else:
                mat = (
                    rows.mat if type(rows) is columns.RowBatch else None
                )
                return self._apply_rows_batched(egraph, rows, mat)
        return self._apply_rows_scalar(egraph, rows)

    def _apply_rows_scalar(self, egraph: EGraph, rows) -> int:
        if type(rows) is columns.RowBatch:
            # bulk .tolist() rows (lists of Python ints) — the generated
            # loop only indexes them, and skipping the per-row tuple()
            # halves the materialisation cost
            rows = rows.mat.tolist()
        bare_idx = self._bare_idx
        if bare_idx is not None:
            applied = 0
            find = egraph.uf.find
            parent = egraph.uf._parent
            merge_roots = egraph.merge_roots
            for row in rows:
                ra = row[bare_idx]
                if parent[ra] != ra:
                    ra = find(ra)
                rb = row[0]
                if parent[rb] != rb:
                    rb = find(rb)
                if ra != rb:
                    merge_roots(ra, rb)
                    applied += 1
            return applied
        # generated batch loop: instantiate + staleness checks + merge,
        # with the prologue hoisted out of the per-match path
        return self._apply_rows_fn(egraph, rows)

    def _apply_rows_batched(self, egraph, rows, mat=None) -> int:
        """Prepass-driven :meth:`apply_rows` (see there for the contract).

        The batch is partitioned lazily, one chunk at a time (verdicts are
        row-independent, so a chunk's prepass is exact regardless of what
        the sweep did before it) — a growth-heavy batch bails after paying
        for a single chunk, not the whole batch.  Within a chunk, windows
        are scanned for non-pure or proof-invalidated rows with one
        vectorised root check, and only those rows run Python code (a
        direct merge when the proof held, the scalar applier otherwise).
        Every union re-checks the remaining window against a fresh
        union-find snapshot, so each row's action is provably the one the
        scalar loop would have taken in its place.
        """

        np = columns.np
        n = len(rows)
        if mat is None:
            # flat fromiter is ~2x np.array(list-of-tuples): one C loop
            # over a chained iterator instead of per-row sequence probing
            width = len(rows[0])
            mat = np.fromiter(
                chain.from_iterable(rows), np.int64, count=n * width
            ).reshape(n, width)
        is_batch = type(rows) is columns.RowBatch
        scalar_rest = self._apply_rows_scalar
        merge_roots = egraph.merge_roots
        flat = np.flatnonzero
        applied = 0
        PCHUNK = 4096
        RCHUNK = 512
        p = 0
        while p < n:
            pend = min(p + PCHUNK, n)
            part = rhs_pure_partition(egraph, self._rhs_plan, mat[p:pend])
            if part is None:
                # probe-index encoding overflow: scalar remainder
                self._batch_cooldown = 16
                rest = (
                    columns.RowBatch(mat[p:]) if is_batch else rows[p:]
                )
                return applied + scalar_rest(egraph, rest)
            status, ra_arr, rb_arr, proof = part
            m = pend - p
            nonpure = m - int((status == 0).sum())
            if nonpure > max(32, m >> 6):
                # growth-heavy chunk: per-row work dominates anyway, and a
                # union storm would thrash the revalidation — the scalar
                # loop is strictly better here.  Bails escalate the
                # cooldown exponentially (growth phases produce long runs
                # of them, each costing a wasted chunk prepass); the first
                # pure-dominated batch resets it, so steady-state
                # saturation pays nothing.
                self._batch_bails += 1
                self._batch_cooldown = min(64, 2 << self._batch_bails)
                rest = (
                    columns.RowBatch(mat[p:]) if is_batch else rows[p:]
                )
                return applied + scalar_rest(egraph, rest)
            self._batch_bails = 0
            unions0 = egraph._n_unions
            j = 0
            while j < m:
                end = min(j + RCHUNK, m)
                okw = None
                if egraph._n_unions != unions0:
                    # unions moved some roots: one gather per window
                    # proves which verdicts still hold (all proof ids
                    # still union-find roots)
                    pa = egraph._np_parent()
                    pr = proof[j:end]
                    okw = (pa[pr] == pr).all(axis=1)
                    bad = flat((status[j:end] != 0) | ~okw)
                else:
                    bad = flat(status[j:end] != 0)
                nb = len(bad)
                bi = 0
                dirty = False
                while bi < nb:
                    w = int(bad[bi])
                    idx = j + w
                    if status[idx] == 1 and (okw is None or okw[w]):
                        # proof held: ra/rb are exactly the canonical
                        # roots the scalar epilogue would compute here
                        merge_roots(int(ra_arr[idx]), int(rb_arr[idx]))
                        applied += 1
                        j = idx + 1
                        dirty = True
                        break
                    # scalar-bound run (opaque, or verdict invalidated):
                    # extend over adjacent bad rows of the same kind — the
                    # scalar loop is the reference semantics, so a
                    # contiguous slice of it is exact no matter what
                    # unions fire inside
                    k = bi
                    while k + 1 < nb and int(bad[k + 1]) == int(bad[k]) + 1:
                        w2 = int(bad[k + 1])
                        if status[j + w2] == 1 and (okw is None or okw[w2]):
                            break
                        k += 1
                    hi = j + int(bad[k]) + 1
                    applied += scalar_rest(egraph, rows[p + idx : p + hi])
                    if egraph._n_unions != unions0:
                        # a union voids the rest of this window's scan —
                        # resume from the next row with a fresh root check
                        j = hi
                        dirty = True
                        break
                    bi = k + 1
                if not dirty:
                    j = end
            p = pend
        return applied

    def run(self, egraph: EGraph) -> int:
        """Search and apply in one step (rebuild is the caller's job)."""

        return self.apply(egraph, self.search(egraph))

    def __str__(self) -> str:
        rhs = self.applier if isinstance(self.applier, Pattern) else "<dynamic>"
        return f"{self.name}: {self.searcher} => {rhs}"


def rewrite(
    name: str,
    lhs: Union[str, Pattern],
    rhs: Union[str, Pattern, DynamicApplier],
    guard: Optional[Guard] = None,
) -> Rewrite:
    """Build a :class:`Rewrite`, parsing textual patterns when given strings.

    Example — the paper's FMA1 rule::

        rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)")
    """

    searcher = parse_pattern(lhs) if isinstance(lhs, str) else lhs
    applier: Union[Pattern, DynamicApplier]
    if isinstance(rhs, str):
        applier = parse_pattern(rhs)
    else:
        applier = rhs
    return Rewrite(name, searcher, applier, guard)
