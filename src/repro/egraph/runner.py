"""The equality-saturation loop, with per-rule saturation profiling.

The :class:`Runner` repeatedly searches every rewrite, applies all matches,
and rebuilds the e-graph, until one of the stopping conditions is reached:

* **saturation** — an iteration produces no new union (the e-graph is a
  fixed point of the rule set),
* **node limit** — the e-graph grew past ``node_limit`` e-nodes,
* **iteration limit** — ``iter_limit`` iterations executed,
* **time limit** — wall-clock budget exhausted.  The budget is checked at
  the top of every iteration *and* between the search, apply and rebuild
  phases, so one slow phase cannot blow far past ``time_limit``.

The defaults mirror the paper's §VII settings: 10,000 e-nodes, 10
iterations and 10 seconds of saturation time.

**Incremental search.** The runner remembers, per rule, the e-graph
version at which the rule last scanned.  The next scan only visits
classes *touched* after that stamp (:meth:`EGraph.rebuild` propagates
touches upward from every mutated class), because matches rooted in
untouched classes are exactly the matches the previous scan found — and
re-applying an applied match is a no-op union.  Rules with a guard or a
dynamic applier always get full rescans: a guard may read state outside
the match cone, and a dynamic applier may compute a different result as
the graph evolves, so their old matches are not reproducible from the
touch stamps.  ``incremental=False`` restores full rescans for every
rule.

**Profiling.** Per-rule search/apply time, match and union counts are
accumulated into :class:`RuleStats` and exposed on
:attr:`RunnerReport.rule_stats`; :meth:`RunnerReport.as_dict` /
:meth:`RunnerReport.to_json` round-trip the whole report (including
per-iteration rows) so BENCH trajectories can attribute a regression to a
specific rule.
"""

from __future__ import annotations

import enum
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite

__all__ = [
    "StopReason",
    "RunnerLimits",
    "IterationReport",
    "RuleStats",
    "RunnerReport",
    "Runner",
]


class StopReason(enum.Enum):
    """Why the saturation loop stopped."""

    SATURATED = "saturated"
    NODE_LIMIT = "node_limit"
    ITER_LIMIT = "iter_limit"
    TIME_LIMIT = "time_limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource limits for one saturation run (paper §VII defaults)."""

    node_limit: int = 10_000
    iter_limit: int = 10
    time_limit: float = 10.0

    def validate(self) -> None:
        if self.node_limit <= 0:
            raise ValueError("node_limit must be positive")
        if self.iter_limit <= 0:
            raise ValueError("iter_limit must be positive")
        if self.time_limit <= 0:
            raise ValueError("time_limit must be positive")


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    applied: int
    egraph_nodes: int
    egraph_classes: int
    search_time: float
    apply_time: float
    rebuild_time: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "applied": self.applied,
            "egraph_nodes": self.egraph_nodes,
            "egraph_classes": self.egraph_classes,
            "search_time": self.search_time,
            "apply_time": self.apply_time,
            "rebuild_time": self.rebuild_time,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "IterationReport":
        return IterationReport(**data)  # type: ignore[arg-type]


@dataclass
class RuleStats:
    """Accumulated per-rule profiling statistics for one saturation run."""

    name: str
    #: Number of search phases this rule participated in.
    searches: int = 0
    #: How many of those scans were incremental (skipped classes untouched
    #: since the rule's previous scan) — the search-side analogue of a
    #: cache hit, reported next to the session-cache counters.
    incremental_searches: int = 0
    #: Total wall-clock seconds spent searching / applying this rule.
    search_time: float = 0.0
    apply_time: float = 0.0
    #: Total matches found (post-guard) and unions actually made.
    matches: int = 0
    applied: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "searches": self.searches,
            "incremental_searches": self.incremental_searches,
            "search_time": self.search_time,
            "apply_time": self.apply_time,
            "matches": self.matches,
            "applied": self.applied,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RuleStats":
        return RuleStats(**data)  # type: ignore[arg-type]


@dataclass
class RunnerReport:
    """Aggregate statistics for a whole saturation run."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    egraph_nodes: int = 0
    egraph_classes: int = 0
    #: Per-rule profiling stats, keyed by rule name.
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    #: Wall-clock seconds the pipeline spent extracting from the saturated
    #: e-graph (filled in by the extraction stage; 0.0 when extraction did
    #: not run or the report came from a bare Runner).  Kept on the report
    #: so one JSON object carries the full search/apply/rebuild/extract
    #: phase profile of a kernel.
    extract_time: float = 0.0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_applied(self) -> int:
        return sum(it.applied for it in self.iterations)

    @property
    def total_search_time(self) -> float:
        return sum(it.search_time for it in self.iterations)

    @property
    def total_apply_time(self) -> float:
        return sum(it.apply_time for it in self.iterations)

    @property
    def total_rebuild_time(self) -> float:
        return sum(it.rebuild_time for it in self.iterations)

    @property
    def phase_times(self) -> Dict[str, float]:
        """Where the saturation wall-clock went, by phase.

        ``search`` / ``apply`` / ``rebuild`` aggregate the per-iteration
        rows; ``extract`` is the downstream extraction time when the
        pipeline attached it (see :attr:`extract_time`).  Surfaced in
        ``BENCH_engine.json`` so perf work can see where time goes without
        re-profiling.
        """

        return {
            "search": self.total_search_time,
            "apply": self.total_apply_time,
            "rebuild": self.total_rebuild_time,
            "extract": self.extract_time,
        }

    def summary(self) -> str:
        return (
            f"stop={self.stop_reason.value} iters={self.num_iterations} "
            f"applied={self.total_applied} nodes={self.egraph_nodes} "
            f"classes={self.egraph_classes} time={self.total_time:.3f}s"
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "stop_reason": self.stop_reason.value,
            "total_time": self.total_time,
            "egraph_nodes": self.egraph_nodes,
            "egraph_classes": self.egraph_classes,
            "iterations": [it.as_dict() for it in self.iterations],
            "rule_stats": {name: rs.as_dict() for name, rs in self.rule_stats.items()},
            "phase_times": self.phase_times,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RunnerReport":
        # search/apply/rebuild are derived from the iteration rows; only
        # the pipeline-attached extract time needs restoring explicitly
        phases = data.get("phase_times", {})
        return RunnerReport(
            stop_reason=StopReason(data["stop_reason"]),
            iterations=[IterationReport.from_dict(d) for d in data["iterations"]],
            total_time=data["total_time"],
            egraph_nodes=data["egraph_nodes"],
            egraph_classes=data["egraph_classes"],
            rule_stats={
                name: RuleStats.from_dict(d)
                for name, d in data.get("rule_stats", {}).items()
            },
            extract_time=phases.get("extract", 0.0),
        )

    @staticmethod
    def from_json(text: str) -> "RunnerReport":
        return RunnerReport.from_dict(json.loads(text))


class Runner:
    """Drive equality saturation of an :class:`EGraph` with a rule set."""

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite],
        limits: Optional[RunnerLimits] = None,
        incremental: bool = True,
    ) -> None:
        self.egraph = egraph
        self.rewrites = list(rewrites)
        seen: set = set()
        dupes: set = set()
        for rule in self.rewrites:
            (dupes if rule.name in seen else seen).add(rule.name)
        if dupes:
            raise ValueError(
                f"duplicate rewrite names {sorted(dupes)}: per-rule profiling "
                f"stats are keyed by name"
            )
        self.limits = limits or RunnerLimits()
        self.limits.validate()
        #: Skip classes untouched since each rule's previous scan.
        self.incremental = incremental
        #: Per-rule e-graph version of the last *applied* scan (parallel to
        #: :attr:`rewrites`); -1 forces a full first scan.
        self._last_scan: List[int] = [-1] * len(self.rewrites)

    def run(self) -> RunnerReport:
        """Run until saturation or a limit is hit; returns the report."""

        start = time.perf_counter()
        egraph = self.egraph
        limits = self.limits
        report = RunnerReport(StopReason.SATURATED)
        stats = report.rule_stats
        for rule in self.rewrites:
            stats[rule.name] = RuleStats(rule.name)

        stop: Optional[StopReason] = None
        for iteration in range(limits.iter_limit):
            if time.perf_counter() - start > limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if len(egraph) > limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break

            # Search every rule against the same pre-iteration e-graph so the
            # result does not depend on rule order within an iteration.
            scan_version = egraph.version
            t0 = time.perf_counter()
            all_matches = []
            for index, rule in enumerate(self.rewrites):
                # Guards may read state outside the match cone (touch
                # stamps only track the cone), and dynamic appliers may
                # compute different results as the graph evolves — both
                # need full rescans to stay sound.
                incremental = (
                    self.incremental
                    and rule.guard is None
                    and rule._compiled_rhs is not None
                )
                since = self._last_scan[index] if incremental else None
                rt0 = time.perf_counter()
                matches = rule.search(egraph, since=since)
                rt1 = time.perf_counter()
                rs = stats[rule.name]
                rs.searches += 1
                if since is not None and since >= 0:
                    rs.incremental_searches += 1
                rs.search_time += rt1 - rt0
                rs.matches += len(matches)
                all_matches.append((index, rule, matches))
            t1 = time.perf_counter()

            if t1 - start > limits.time_limit:
                # the search phase alone blew the budget: record it and stop
                # without applying (the found matches were never committed,
                # so the per-rule scan stamps stay untouched)
                report.iterations.append(
                    IterationReport(
                        index=iteration,
                        applied=0,
                        egraph_nodes=len(egraph),
                        egraph_classes=egraph.num_classes,
                        search_time=t1 - t0,
                        apply_time=0.0,
                        rebuild_time=0.0,
                    )
                )
                stop = StopReason.TIME_LIMIT
                break

            applied = 0
            for index, rule, matches in all_matches:
                at0 = time.perf_counter()
                n_applied = rule.apply(egraph, matches)
                at1 = time.perf_counter()
                # matches up to scan_version are now committed; the next
                # incremental scan may skip classes untouched since then
                self._last_scan[index] = scan_version
                rs = stats[rule.name]
                rs.apply_time += at1 - at0
                rs.applied += n_applied
                applied += n_applied
                if len(egraph) > limits.node_limit:
                    break
            t2 = time.perf_counter()
            timed_out = t2 - start > limits.time_limit

            # always rebuild, even when over budget — callers must never see
            # a half-canonicalised e-graph
            egraph.rebuild()
            t3 = time.perf_counter()

            report.iterations.append(
                IterationReport(
                    index=iteration,
                    applied=applied,
                    egraph_nodes=len(egraph),
                    egraph_classes=egraph.num_classes,
                    search_time=t1 - t0,
                    apply_time=t2 - t1,
                    rebuild_time=t3 - t2,
                )
            )

            if applied == 0:
                stop = StopReason.SATURATED
                break
            if timed_out or t3 - start > limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if len(egraph) > limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break

        report.stop_reason = StopReason.ITER_LIMIT if stop is None else stop
        report.total_time = time.perf_counter() - start
        report.egraph_nodes = len(egraph)
        report.egraph_classes = egraph.num_classes
        return report
