"""The equality-saturation loop, with per-rule saturation profiling.

The :class:`Runner` repeatedly searches the rewrites, applies matches,
and rebuilds the e-graph, until one of the stopping conditions is reached:

* **saturation** — an iteration produces no new union (the e-graph is a
  fixed point of the rule set) while the scheduler curtailed nothing,
* **node limit** — the e-graph grew past ``node_limit`` e-nodes,
* **iteration limit** — ``iter_limit`` iterations executed,
* **time limit** — wall-clock budget exhausted.  The budget is checked at
  the top of every iteration *and* between the search, apply and rebuild
  phases, so one slow phase cannot blow far past ``time_limit``,
* **cost plateau** — with anytime extraction enabled (see below), the
  extracted cost stopped improving.

The defaults mirror the paper's §VII settings: 10,000 e-nodes, 10
iterations and 10 seconds of saturation time.

**Scheduling.**  Which rules search each iteration, and how many of their
matches reach the apply phase, is delegated to a
:class:`~repro.egraph.schedule.RuleScheduler`.  The default
:class:`~repro.egraph.schedule.SimpleScheduler` reproduces the classic
every-rule-every-match loop bit for bit; the backoff and match-budget
schedulers ration the iteration budget (see :mod:`repro.egraph.schedule`).
The runner only advances a rule's incremental-scan stamp when the
scheduler admitted the *complete* match batch, so curtailed matches are
re-found by a later scan instead of being lost.

**Anytime extraction.**  With an :class:`AnytimeExtraction` hook, the
runner refreshes a shared :class:`~repro.egraph.extract.ExtractionMemo`
every ``interval`` iterations — always at an iteration boundary, after
``rebuild``, so the DP refresh sees a canonical e-graph — and records the
current best extracted DAG cost in
:attr:`IterationReport.extracted_cost`.  When the cost has not improved
for ``patience`` consecutive evaluations the run stops with
:attr:`StopReason.COST_PLATEAU`: node-limit budgets no longer spend their
tail growing an e-graph whose extraction stopped getting better.

**Incremental search.** The runner remembers, per rule, the e-graph
version at which the rule last scanned.  The next scan only visits
classes *touched* after that stamp (:meth:`EGraph.rebuild` propagates
touches upward from every mutated class), because matches rooted in
untouched classes are exactly the matches the previous scan found — and
re-applying an applied match is a no-op union.  Rules with a guard or a
dynamic applier always get full rescans: a guard may read state outside
the match cone, and a dynamic applier may compute a different result as
the graph evolves, so their old matches are not reproducible from the
touch stamps.  ``incremental=False`` restores full rescans for every
rule.

**Profiling.** Per-rule search/apply time, match and union counts are
accumulated into :class:`RuleStats` and exposed on
:attr:`RunnerReport.rule_stats`; :meth:`RunnerReport.as_dict` /
:meth:`RunnerReport.to_json` round-trip the whole report (including
per-iteration rows) so BENCH trajectories can attribute a regression to a
specific rule.
"""

from __future__ import annotations

import enum
import json
import os
import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Union

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.egraph.extract import CostFunction, ExtractionMemo, ExtractionResult
    from repro.egraph.schedule import RuleScheduler

__all__ = [
    "AnytimeExtraction",
    "CancellationToken",
    "FileTripSignal",
    "IterationCallback",
    "StopReason",
    "RunnerLimits",
    "IterationReport",
    "RuleStats",
    "RunnerReport",
    "Runner",
    "TripSignal",
]

#: Progress hook invoked after every completed saturation iteration with
#: the iteration's finished :class:`IterationReport` (see :class:`Runner`).
IterationCallback = Callable[["IterationReport"], None]


class StopReason(enum.Enum):
    """Why the saturation loop stopped."""

    SATURATED = "saturated"
    NODE_LIMIT = "node_limit"
    ITER_LIMIT = "iter_limit"
    TIME_LIMIT = "time_limit"
    #: Anytime extraction saw no cost improvement for ``patience``
    #: consecutive evaluations (see :class:`AnytimeExtraction`).
    COST_PLATEAU = "cost_plateau"
    #: A :class:`CancellationToken` deadline expired (the run stopped
    #: cooperatively at the next iteration boundary).
    DEADLINE = "deadline"
    #: A :class:`CancellationToken` was explicitly cancelled.
    CANCELLED = "cancelled"


class TripSignal:
    """Transport for a cancellation/deadline trip across a process boundary.

    A :class:`CancellationToken` is an in-memory object: its flags cannot
    reach a saturation loop running in *another* process.  A ``TripSignal``
    is the pluggable escape hatch — ``trip(kind)`` records the trip in some
    medium both sides can see (a file, a pipe, shared memory), and
    ``poll()`` reads it back.  Two tokens sharing one signal therefore
    share their trips: the parent process trips its token, the child-side
    token polls the same signal at the next iteration boundary and stops
    with the usual :attr:`StopReason.CANCELLED` / :attr:`StopReason.DEADLINE`
    semantics.

    Kinds are the strings ``"cancelled"`` and ``"deadline"``.  A signal is
    irrevocable like the token flags: once ``poll()`` returned a kind it
    never goes back to ``None`` (``"cancelled"`` may still supersede
    ``"deadline"`` — explicit cancellation wins, mirroring the token).
    """

    #: The legal trip kinds, in priority order (first wins).
    KINDS = ("cancelled", "deadline")

    def trip(self, kind: str) -> None:
        raise NotImplementedError

    def poll(self) -> Optional[str]:
        raise NotImplementedError


class FileTripSignal(TripSignal):
    """A :class:`TripSignal` backed by a small file both processes can see.

    ``trip`` writes the kind atomically (temp file + ``os.replace``) so a
    concurrent ``poll`` sees either nothing or a complete kind, never a
    torn write; ``poll`` is one ``open`` + ``read`` — cheap enough for the
    runner's once-per-iteration cadence.  A ``"cancelled"`` trip may
    overwrite a ``"deadline"`` one (cancellation wins); never the reverse.
    Unreadable/absent files poll as ``None``: losing a trip file degrades
    to the fallback defenses (pickup-time deadline checks, post-hoc result
    drops), it never crashes the loop.
    """

    __slots__ = ("path", "_seen")

    def __init__(self, path: Union[str, "os.PathLike"]) -> None:
        self.path = os.fspath(path)
        #: Cache of a positive poll: trips are irrevocable, so once a kind
        #: was read the file never needs stat-ing again.
        self._seen: Optional[str] = None

    def trip(self, kind: str) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown trip kind {kind!r}; expected {self.KINDS}")
        current = self.poll()
        if current == "cancelled" or current == kind:
            return
        tmp = f"{self.path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w", encoding="ascii") as fh:
                fh.write(kind)
            os.replace(tmp, self.path)
        except OSError:
            # best effort: an unwritable trip file falls back to the
            # pickup-time/post-hoc defenses on the other side
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._seen = kind if current is None else "cancelled"

    def poll(self) -> Optional[str]:
        if self._seen == "cancelled":
            return self._seen
        try:
            with open(self.path, "r", encoding="ascii") as fh:
                kind = fh.read().strip()
        except OSError:
            return self._seen
        if kind in self.KINDS:
            self._seen = kind
        return self._seen

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<FileTripSignal path={self.path!r} seen={self._seen!r}>"


class CancellationToken:
    """Cooperative cancellation: an explicit ``cancel()`` and/or a deadline.

    The token itself never interrupts anything — the :class:`Runner` polls
    it at iteration boundaries (the only points where the e-graph is
    canonical and an anytime snapshot, if any, is coherent) and stops the
    saturation loop with :attr:`StopReason.CANCELLED` /
    :attr:`StopReason.DEADLINE`.  ``deadline`` is an absolute
    :func:`time.monotonic` instant; ``timeout`` is the same thing spelled
    as seconds from now.  Explicit cancellation wins over an expired
    deadline when both hold.

    Tokens are safe to share across threads: the flags are only ever set
    (never cleared), so a reader can at worst see a trip one poll late —
    exactly the cooperative contract.

    ``signal`` extends the sharing across *processes*: ``cancel()`` and
    ``expire()`` also trip the attached :class:`TripSignal`, and every
    read consults it, so a child-process token built on the same signal
    observes the parent's trips (and vice versa).  Monotonic deadlines do
    **not** cross the boundary — ``time.monotonic()`` instants are not
    comparable between processes, so a cross-process deadline is spelled
    as a ``timeout`` re-anchored at handoff plus the shared signal.
    """

    __slots__ = ("deadline", "signal", "_cancelled", "_expired")

    def __init__(
        self,
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
        signal: Optional[TripSignal] = None,
    ) -> None:
        if timeout is not None:
            at = time.monotonic() + timeout
            deadline = at if deadline is None else min(deadline, at)
        self.deadline = deadline
        self.signal = signal
        self._cancelled = False
        self._expired = False

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent, irrevocable)."""

        self._cancelled = True
        if self.signal is not None:
            self.signal.trip("cancelled")

    def expire(self) -> None:
        """Force the deadline-expired state regardless of the clock.

        This is how deterministic tests and the fault-injection harness
        trip a deadline without depending on wall-clock timing.
        """

        self._expired = True
        if self.signal is not None:
            self.signal.trip("deadline")

    def _signalled(self) -> Optional[str]:
        return None if self.signal is None else self.signal.poll()

    @property
    def cancelled(self) -> bool:
        return self._cancelled or self._signalled() == "cancelled"

    @property
    def expired(self) -> bool:
        return (
            self._expired
            or (self.deadline is not None and time.monotonic() > self.deadline)
            or self._signalled() == "deadline"
        )

    def tripped(self) -> Optional["StopReason"]:
        """The stop reason this token demands right now, or ``None``."""

        if self.cancelled:
            return StopReason.CANCELLED
        if self.expired:
            return StopReason.DEADLINE
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<CancellationToken cancelled={self._cancelled} "
            f"expired={self.expired} deadline={self.deadline}>"
        )


@dataclass(frozen=True)
class RunnerLimits:
    """Resource limits for one saturation run (paper §VII defaults)."""

    node_limit: int = 10_000
    iter_limit: int = 10
    time_limit: float = 10.0

    def validate(self) -> None:
        if self.node_limit <= 0:
            raise ValueError("node_limit must be positive")
        if self.iter_limit <= 0:
            raise ValueError("iter_limit must be positive")
        if self.time_limit <= 0:
            raise ValueError("time_limit must be positive")


@dataclass
class AnytimeExtraction:
    """In-loop extraction: refresh, record, stop on a cost plateau.

    Attached to a :class:`Runner`, this hook extracts from the live
    e-graph every ``interval`` iterations — after ``rebuild``, never
    mid-phase — through :func:`~repro.egraph.extract.extract_best` with a
    shared :class:`~repro.egraph.extract.ExtractionMemo`, so each
    evaluation is an incremental DP refresh from the touched stamps
    rather than a cold extraction.  The cost trajectory lands in
    :attr:`IterationReport.extracted_cost`; once the best cost has not
    improved for ``patience`` consecutive evaluations, the run stops with
    :attr:`StopReason.COST_PLATEAU`.

    Pass the *same* memo to the downstream extraction (the pipeline's
    :class:`~repro.session.stages.SaturationStage` shares it with
    :class:`~repro.session.stages.ExtractionStage` automatically): when
    the loop stops right after an evaluation, the final extraction is a
    whole-result cache hit.
    """

    #: Root e-classes to extract (the pipeline's assignment roots).
    roots: Sequence[int]
    #: Cost assignment for the extraction DP.
    cost_model: "CostFunction"
    #: Extraction method ("tree", "dag-greedy", "ilp").
    method: str = "dag-greedy"
    #: Extract every this many iterations (1 = every iteration).
    interval: int = 1
    #: Consecutive non-improving evaluations before COST_PLATEAU.
    patience: int = 3
    #: Shared DP/result memo; created on first use when None.
    memo: Optional["ExtractionMemo"] = None
    #: Extraction time limit (only the ILP method enforces it).
    time_limit: float = 30.0
    #: Keep the best in-loop :class:`~repro.egraph.extract.ExtractionResult`
    #: alive (not just its cost) so downstream stages can ship the
    #: best-seen selection after a plateau stop even when the final greedy
    #: extraction regresses.  The snapshot's class ids are frozen at the
    #: iteration that produced it; rebase them against later merges with
    #: :func:`~repro.egraph.extract.resolve_result` before consuming it.
    keep_best: bool = True
    #: Best in-loop extraction so far (filled in by the runner; read-only —
    #: the object may be shared with the memo's result cache).
    best_result: Optional["ExtractionResult"] = None

    def validate(self) -> None:
        if self.interval < 1:
            raise ValueError("anytime interval must be at least 1")
        if self.patience < 1:
            raise ValueError("plateau patience must be at least 1")


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    applied: int
    egraph_nodes: int
    egraph_classes: int
    search_time: float
    apply_time: float
    rebuild_time: float
    #: Best extracted DAG cost observed at this iteration's boundary, when
    #: anytime extraction evaluated here; None otherwise (including every
    #: pre-PR-4 report).
    extracted_cost: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "applied": self.applied,
            "egraph_nodes": self.egraph_nodes,
            "egraph_classes": self.egraph_classes,
            "search_time": self.search_time,
            "apply_time": self.apply_time,
            "rebuild_time": self.rebuild_time,
            "extracted_cost": self.extracted_cost,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "IterationReport":
        # tolerate both pre-PR-4 rows (no extracted_cost — defaults) and
        # rows written by a newer schema (unknown keys are dropped)
        known = {f.name for f in fields(IterationReport)}
        return IterationReport(
            **{k: v for k, v in data.items() if k in known}  # type: ignore[arg-type]
        )


@dataclass
class RuleStats:
    """Accumulated per-rule profiling statistics for one saturation run."""

    name: str
    #: Number of search phases this rule participated in.
    searches: int = 0
    #: How many of those scans were incremental (skipped classes untouched
    #: since the rule's previous scan) — the search-side analogue of a
    #: cache hit, reported next to the session-cache counters.
    incremental_searches: int = 0
    #: Total wall-clock seconds spent searching / applying this rule.
    search_time: float = 0.0
    apply_time: float = 0.0
    #: Total matches found (post-guard) and unions actually made.
    matches: int = 0
    applied: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "searches": self.searches,
            "incremental_searches": self.incremental_searches,
            "search_time": self.search_time,
            "apply_time": self.apply_time,
            "matches": self.matches,
            "applied": self.applied,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RuleStats":
        return RuleStats(**data)  # type: ignore[arg-type]


@dataclass
class RunnerReport:
    """Aggregate statistics for a whole saturation run."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    egraph_nodes: int = 0
    egraph_classes: int = 0
    #: Per-rule profiling stats, keyed by rule name.
    rule_stats: Dict[str, RuleStats] = field(default_factory=dict)
    #: Wall-clock seconds spent extracting from this e-graph: the runner
    #: accumulates its in-loop anytime evaluations here, and the pipeline's
    #: extraction stage adds the final extraction on top, so one JSON
    #: object carries the full search/apply/rebuild/extract phase profile
    #: of a kernel.  0.0 when no extraction ran.
    extract_time: float = 0.0
    #: Spelling of the rule scheduler that drove the run ("simple",
    #: "backoff", "match-budget"); pre-PR-4 reports load as "simple".
    scheduler: str = "simple"

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_applied(self) -> int:
        return sum(it.applied for it in self.iterations)

    @property
    def total_search_time(self) -> float:
        return sum(it.search_time for it in self.iterations)

    @property
    def total_apply_time(self) -> float:
        return sum(it.apply_time for it in self.iterations)

    @property
    def total_rebuild_time(self) -> float:
        return sum(it.rebuild_time for it in self.iterations)

    @property
    def phase_times(self) -> Dict[str, float]:
        """Where the saturation wall-clock went, by phase.

        ``search`` / ``apply`` / ``rebuild`` aggregate the per-iteration
        rows; ``extract`` is the downstream extraction time when the
        pipeline attached it (see :attr:`extract_time`).  Surfaced in
        ``BENCH_engine.json`` so perf work can see where time goes without
        re-profiling.
        """

        return {
            "search": self.total_search_time,
            "apply": self.total_apply_time,
            "rebuild": self.total_rebuild_time,
            "extract": self.extract_time,
        }

    def summary(self) -> str:
        return (
            f"stop={self.stop_reason.value} iters={self.num_iterations} "
            f"applied={self.total_applied} nodes={self.egraph_nodes} "
            f"classes={self.egraph_classes} time={self.total_time:.3f}s"
        )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    @property
    def extracted_cost(self) -> Optional[float]:
        """Last in-loop extracted cost (None when anytime never ran)."""

        for it in reversed(self.iterations):
            if it.extracted_cost is not None:
                return it.extracted_cost
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "stop_reason": self.stop_reason.value,
            "total_time": self.total_time,
            "egraph_nodes": self.egraph_nodes,
            "egraph_classes": self.egraph_classes,
            "scheduler": self.scheduler,
            "iterations": [it.as_dict() for it in self.iterations],
            "rule_stats": {name: rs.as_dict() for name, rs in self.rule_stats.items()},
            "phase_times": self.phase_times,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RunnerReport":
        # search/apply/rebuild are derived from the iteration rows; only
        # the pipeline-attached extract time needs restoring explicitly.
        # PR-4 fields (scheduler, cost_plateau stop reason, per-iteration
        # extracted_cost) are optional so pre-PR-4 reports still load.
        phases = data.get("phase_times", {})
        return RunnerReport(
            stop_reason=StopReason(data["stop_reason"]),
            iterations=[IterationReport.from_dict(d) for d in data["iterations"]],
            total_time=data["total_time"],
            egraph_nodes=data["egraph_nodes"],
            egraph_classes=data["egraph_classes"],
            rule_stats={
                name: RuleStats.from_dict(d)
                for name, d in data.get("rule_stats", {}).items()
            },
            extract_time=phases.get("extract", 0.0),
            scheduler=data.get("scheduler", "simple"),
        )

    @staticmethod
    def from_json(text: str) -> "RunnerReport":
        return RunnerReport.from_dict(json.loads(text))


class Runner:
    """Drive equality saturation of an :class:`EGraph` with a rule set.

    ``scheduler`` mediates the search and apply phases (a
    :class:`~repro.egraph.schedule.RuleScheduler`, or its string spelling
    — see :func:`~repro.egraph.schedule.make_scheduler`); ``anytime``
    attaches in-loop extraction with plateau-based early stopping.

    ``on_iteration`` is a progress hook called after every completed
    iteration (post-rebuild, post-anytime-evaluation) with that iteration's
    finished :class:`IterationReport` — the optimization service streams
    per-iteration ``extracted_cost`` snapshots to job subscribers through
    it.  The hook observes the loop, it must not mutate the e-graph; its
    wall-clock cost counts against ``time_limit`` like any other phase.  An
    exception raised by the hook aborts the run (it propagates).
    """

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite],
        limits: Optional[RunnerLimits] = None,
        incremental: bool = True,
        scheduler: Union[None, str, "RuleScheduler"] = None,
        anytime: Optional[AnytimeExtraction] = None,
        on_iteration: Optional[IterationCallback] = None,
        cancellation: Optional[CancellationToken] = None,
        tracer=None,
        trace_parent=None,
    ) -> None:
        from repro.egraph.schedule import make_scheduler

        self.egraph = egraph
        self.rewrites = list(rewrites)
        seen: set = set()
        dupes: set = set()
        for rule in self.rewrites:
            (dupes if rule.name in seen else seen).add(rule.name)
        if dupes:
            raise ValueError(
                f"duplicate rewrite names {sorted(dupes)}: per-rule profiling "
                f"stats are keyed by name"
            )
        self.limits = limits or RunnerLimits()
        self.limits.validate()
        #: Skip classes untouched since each rule's previous scan.
        self.incremental = incremental
        self.scheduler = make_scheduler(scheduler)
        self.anytime = anytime
        self.on_iteration = on_iteration
        #: Cooperative cancellation/deadline token, polled at iteration
        #: boundaries only (where the e-graph is canonical).
        self.cancellation = cancellation
        #: Optional :class:`repro.obs.Tracer` + parent span id — strictly
        #: observational (like ``on_iteration``): never part of any config
        #: fingerprint, and every use below is guarded by ``is not None``
        #: so the disabled hot loop allocates no spans and reads no extra
        #: clocks (phase child spans reuse the report's own timings).
        self.tracer = tracer
        self.trace_parent = trace_parent
        if anytime is not None:
            anytime.validate()
        #: Per-rule e-graph version of the last *committed* scan (parallel
        #: to :attr:`rewrites`); -1 forces a full first scan.  Only
        #: advanced when the scheduler admitted the complete match batch.
        self._last_scan: List[int] = [-1] * len(self.rewrites)
        # -- anytime-extraction state (per run) ---------------------------
        self._best_cost: Optional[float] = None
        self._stale_evals: int = 0

    # ------------------------------------------------------------------
    # phases (mediated by the scheduler)
    # ------------------------------------------------------------------

    def _search_phase(
        self, iteration: int, stats: Dict[str, RuleStats]
    ) -> List[tuple]:
        """Search scheduled rules against the pre-iteration e-graph.

        Every rule sees the same e-graph snapshot, so the result does not
        depend on rule order within an iteration.  Returns
        ``(index, rule, matches, complete)`` tuples — ``complete`` False
        when the scheduler dropped or truncated the batch, which pins the
        rule's incremental-scan stamp (see :meth:`_apply_phase`).
        """

        egraph = self.egraph
        scheduler = self.scheduler
        all_matches: List[tuple] = []
        for index, rule in enumerate(self.rewrites):
            if not scheduler.should_search(iteration, index, rule):
                continue
            # Guards may read state outside the match cone (touch
            # stamps only track the cone), and dynamic appliers may
            # compute different results as the graph evolves — both
            # need full rescans to stay sound.
            incremental = (
                self.incremental
                and rule.guard is None
                and rule._compiled_rhs is not None
            )
            since = self._last_scan[index] if incremental else None
            limit = scheduler.search_limit(iteration, index, rule)
            rt0 = time.perf_counter()
            # rows-capable rules (guard-free pattern rules) run the flat-row
            # pipeline: search_rows + apply_rows skip every per-match
            # substitution dict; both pipelines yield the same match
            # sequence, and schedulers only count/slice batches, so the
            # representation never leaks into scheduling decisions
            if rule.rows_capable:
                matches = rule.search_rows(egraph, since=since, limit=limit)
            else:
                matches = rule.search(egraph, since=since, limit=limit)
            rt1 = time.perf_counter()
            rs = stats[rule.name]
            rs.searches += 1
            if since is not None and since >= 0:
                rs.incremental_searches += 1
            rs.search_time += rt1 - rt0
            rs.matches += len(matches)
            found = len(matches)
            matches, complete = scheduler.admit(iteration, index, rule, matches)
            if limit is not None and found >= limit:
                # a capped search may have stopped short of the full match
                # set — never commit the scan stamp on its say-so, whatever
                # the scheduler's admit() decided
                complete = False
            all_matches.append((index, rule, matches, complete))
        return all_matches

    def _apply_phase(
        self,
        all_matches: List[tuple],
        scan_version: int,
        stats: Dict[str, RuleStats],
    ) -> int:
        """Apply the admitted matches; returns the number of unions made.

        A rule's incremental-scan stamp advances to *scan_version* only
        when its batch was complete: matches the scheduler dropped must be
        re-findable by the rule's next scan, and matches found after a
        node-limit break were never applied at all.
        """

        egraph = self.egraph
        node_limit = self.limits.node_limit
        applied = 0
        for index, rule, matches, complete in all_matches:
            at0 = time.perf_counter()
            if rule.rows_capable:
                n_applied = rule.apply_rows(egraph, matches)
            else:
                n_applied = rule.apply(egraph, matches)
            at1 = time.perf_counter()
            if complete:
                # matches up to scan_version are now committed; the next
                # incremental scan may skip classes untouched since then
                self._last_scan[index] = scan_version
            rs = stats[rule.name]
            rs.apply_time += at1 - at0
            rs.applied += n_applied
            applied += n_applied
            if len(egraph) > node_limit:
                break
        return applied

    def _anytime_evaluate(
        self, iteration: int, report: RunnerReport
    ) -> tuple:
        """Run one in-loop extraction at an iteration boundary.

        Called after ``rebuild`` only — the memo's incremental DP refresh
        reads the e-graph's canonical state and touched stamps, both of
        which are only coherent between iterations.  Returns
        ``(extracted_cost, plateaued)``.
        """

        anytime = self.anytime
        if anytime is None or (iteration + 1) % anytime.interval != 0:
            return None, False
        from repro.egraph.extract import ExtractionMemo, extract_best

        if anytime.memo is None:
            anytime.memo = ExtractionMemo()
        et0 = time.perf_counter()
        result = extract_best(
            self.egraph,
            anytime.roots,
            anytime.cost_model,
            anytime.method,
            anytime.time_limit,
            memo=anytime.memo,
        )
        report.extract_time += time.perf_counter() - et0
        cost = result.dag_cost
        if self._best_cost is None or cost < self._best_cost - 1e-12:
            self._best_cost = cost
            self._stale_evals = 0
            if anytime.keep_best:
                # snapshot the whole selection, not just its cost: a
                # plateau stop can then ship this result even when the
                # final greedy extraction regresses.  The class ids are
                # canonical *now*; consumers rebase them against later
                # merges (extract.resolve_result).
                anytime.best_result = result
        else:
            self._stale_evals += 1
        # the column records the best cost seen so far (monotone
        # non-increasing), not the raw per-boundary cost: greedy DAG
        # extraction can regress as the e-graph grows, and the trajectory
        # should show what an anytime stop at this boundary could deliver
        return self._best_cost, self._stale_evals >= anytime.patience

    # ------------------------------------------------------------------

    def run(self) -> RunnerReport:
        """Run until saturation or a limit is hit; returns the report."""

        start = time.perf_counter()
        egraph = self.egraph
        limits = self.limits
        scheduler = self.scheduler
        report = RunnerReport(StopReason.SATURATED, scheduler=scheduler.name)
        stats = report.rule_stats
        for rule in self.rewrites:
            stats[rule.name] = RuleStats(rule.name)
            # adaptive apply-batching is a per-run signal: a cooldown left
            # over from an earlier (e.g. warm-up) run on a different graph
            # shape would suppress the batched path exactly where it wins
            rule._batch_cooldown = 0
            rule._batch_bails = 0
        scheduler.reset(self.rewrites)
        self._best_cost = None
        self._stale_evals = 0
        if self.anytime is not None:
            self.anytime.best_result = None

        stop: Optional[StopReason] = None
        for iteration in range(limits.iter_limit):
            if time.perf_counter() - start > limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if len(egraph) > limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break
            if self.cancellation is not None:
                stop = self.cancellation.tripped()
                if stop is not None:
                    break

            scheduler.begin_iteration(iteration)
            tracer = self.tracer
            it_span = None
            if tracer is not None:
                it_span = tracer.span(
                    "iteration", parent=self.trace_parent, index=iteration,
                    scheduler=scheduler.name,
                    anytime=self.anytime is not None,
                )
            scan_version = egraph.version
            t0 = time.perf_counter()
            all_matches = self._search_phase(iteration, stats)
            t1 = time.perf_counter()

            if t1 - start > limits.time_limit:
                # the search phase alone blew the budget: record it and stop
                # without applying (the found matches were never committed,
                # so the per-rule scan stamps stay untouched)
                row = IterationReport(
                    index=iteration,
                    applied=0,
                    egraph_nodes=len(egraph),
                    egraph_classes=egraph.num_classes,
                    search_time=t1 - t0,
                    apply_time=0.0,
                    rebuild_time=0.0,
                )
                report.iterations.append(row)
                if it_span is not None:
                    tracer.record_span("search", t0, t1, parent=it_span)
                    it_span.end(applied=0, nodes=len(egraph),
                                timed_out=True)
                if self.on_iteration is not None:
                    self.on_iteration(row)
                stop = StopReason.TIME_LIMIT
                break

            applied = self._apply_phase(all_matches, scan_version, stats)
            t2 = time.perf_counter()
            timed_out = t2 - start > limits.time_limit

            # always rebuild, even when over budget — callers must never see
            # a half-canonicalised e-graph
            egraph.rebuild()
            t3 = time.perf_counter()

            scheduler.end_iteration(iteration, applied)
            if timed_out:
                # already over the wall-clock budget: skip the in-loop
                # extraction (it could blow far past the limit) and let
                # the TIME_LIMIT stop below win
                extracted_cost, plateaued = None, False
            else:
                extracted_cost, plateaued = self._anytime_evaluate(
                    iteration, report
                )

            row = IterationReport(
                index=iteration,
                applied=applied,
                egraph_nodes=len(egraph),
                egraph_classes=egraph.num_classes,
                search_time=t1 - t0,
                apply_time=t2 - t1,
                rebuild_time=t3 - t2,
                extracted_cost=extracted_cost,
            )
            report.iterations.append(row)
            if it_span is not None:
                # the child spans reuse the phase timings measured above
                # for the iteration row — tracing adds no clock reads that
                # untraced runs would not perform
                tracer.record_span("search", t0, t1, parent=it_span)
                tracer.record_span("apply", t1, t2, parent=it_span)
                tracer.record_span("rebuild", t2, t3, parent=it_span)
                it_span.end(
                    applied=applied, nodes=len(egraph),
                    classes=egraph.num_classes,
                    extracted_cost=extracted_cost,
                )
            if self.on_iteration is not None:
                self.on_iteration(row)

            if applied == 0 and scheduler.exhaustive():
                stop = StopReason.SATURATED
                break
            if plateaued:
                stop = StopReason.COST_PLATEAU
                break
            if self.cancellation is not None:
                # checked after the anytime evaluation so that a tripped
                # deadline stops at exactly the state a plateau stop at
                # this boundary would have seen — the degradation contract
                stop = self.cancellation.tripped()
                if stop is not None:
                    break
            if timed_out or time.perf_counter() - start > limits.time_limit:
                stop = StopReason.TIME_LIMIT
                break
            if len(egraph) > limits.node_limit:
                stop = StopReason.NODE_LIMIT
                break

        report.stop_reason = StopReason.ITER_LIMIT if stop is None else stop
        report.total_time = time.perf_counter() - start
        report.egraph_nodes = len(egraph)
        report.egraph_classes = egraph.num_classes
        if self.tracer is not None:
            self.tracer.event(
                "saturation:stop", span=self.trace_parent,
                reason=report.stop_reason.value,
                iterations=len(report.iterations),
                nodes=report.egraph_nodes, classes=report.egraph_classes,
            )
        return report
