"""The equality-saturation loop.

The :class:`Runner` repeatedly searches every rewrite, applies all matches,
and rebuilds the e-graph, until one of the stopping conditions is reached:

* **saturation** — an iteration produces no new union (the e-graph is a
  fixed point of the rule set),
* **node limit** — the e-graph grew past ``node_limit`` e-nodes,
* **iteration limit** — ``iter_limit`` iterations executed,
* **time limit** — wall-clock budget exhausted.

The defaults mirror the paper's §VII settings: 10,000 e-nodes, 10
iterations and 10 seconds of saturation time.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite

__all__ = ["StopReason", "RunnerLimits", "IterationReport", "RunnerReport", "Runner"]


class StopReason(enum.Enum):
    """Why the saturation loop stopped."""

    SATURATED = "saturated"
    NODE_LIMIT = "node_limit"
    ITER_LIMIT = "iter_limit"
    TIME_LIMIT = "time_limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource limits for one saturation run (paper §VII defaults)."""

    node_limit: int = 10_000
    iter_limit: int = 10
    time_limit: float = 10.0

    def validate(self) -> None:
        if self.node_limit <= 0:
            raise ValueError("node_limit must be positive")
        if self.iter_limit <= 0:
            raise ValueError("iter_limit must be positive")
        if self.time_limit <= 0:
            raise ValueError("time_limit must be positive")


@dataclass
class IterationReport:
    """Statistics for a single saturation iteration."""

    index: int
    applied: int
    egraph_nodes: int
    egraph_classes: int
    search_time: float
    apply_time: float
    rebuild_time: float


@dataclass
class RunnerReport:
    """Aggregate statistics for a whole saturation run."""

    stop_reason: StopReason
    iterations: List[IterationReport] = field(default_factory=list)
    total_time: float = 0.0
    egraph_nodes: int = 0
    egraph_classes: int = 0

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_applied(self) -> int:
        return sum(it.applied for it in self.iterations)

    def summary(self) -> str:
        return (
            f"stop={self.stop_reason.value} iters={self.num_iterations} "
            f"applied={self.total_applied} nodes={self.egraph_nodes} "
            f"classes={self.egraph_classes} time={self.total_time:.3f}s"
        )


class Runner:
    """Drive equality saturation of an :class:`EGraph` with a rule set."""

    def __init__(
        self,
        egraph: EGraph,
        rewrites: Sequence[Rewrite],
        limits: Optional[RunnerLimits] = None,
    ) -> None:
        self.egraph = egraph
        self.rewrites = list(rewrites)
        self.limits = limits or RunnerLimits()
        self.limits.validate()

    def run(self) -> RunnerReport:
        """Run until saturation or a limit is hit; returns the report."""

        start = time.perf_counter()
        report = RunnerReport(StopReason.SATURATED)

        for iteration in range(self.limits.iter_limit):
            elapsed = time.perf_counter() - start
            if elapsed > self.limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            if len(self.egraph) > self.limits.node_limit:
                report.stop_reason = StopReason.NODE_LIMIT
                break

            # Search every rule against the same pre-iteration e-graph so the
            # result does not depend on rule order within an iteration.
            t0 = time.perf_counter()
            all_matches = [(rule, rule.search(self.egraph)) for rule in self.rewrites]
            t1 = time.perf_counter()

            applied = 0
            for rule, matches in all_matches:
                applied += rule.apply(self.egraph, matches)
                if len(self.egraph) > self.limits.node_limit:
                    break
            t2 = time.perf_counter()

            self.egraph.rebuild()
            t3 = time.perf_counter()

            report.iterations.append(
                IterationReport(
                    index=iteration,
                    applied=applied,
                    egraph_nodes=len(self.egraph),
                    egraph_classes=self.egraph.num_classes,
                    search_time=t1 - t0,
                    apply_time=t2 - t1,
                    rebuild_time=t3 - t2,
                )
            )

            if applied == 0:
                report.stop_reason = StopReason.SATURATED
                break
            if len(self.egraph) > self.limits.node_limit:
                report.stop_reason = StopReason.NODE_LIMIT
                break
        else:
            report.stop_reason = StopReason.ITER_LIMIT

        report.total_time = time.perf_counter() - start
        report.egraph_nodes = len(self.egraph)
        report.egraph_classes = self.egraph.num_classes
        return report
