"""Union-find (disjoint set) over e-class ids.

E-class ids are dense non-negative integers handed out by :meth:`make_set`.
``find`` uses path compression; ``union`` uses union-by-size so that merge
chains stay near-constant amortised, which matters because saturation on the
larger NPB kernels performs tens of thousands of merges.
"""

from __future__ import annotations

from typing import List

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set forest over integer ids."""

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a new singleton set and return its id."""

        new_id = len(self._parent)
        self._parent.append(new_id)
        self._size.append(1)
        return new_id

    def is_root(self, x: int) -> bool:
        """True if *x* is its set's canonical representative.

        Hot loops that have already bound ``self._parent`` locally may
        inline this as ``parent[x] == x``; that array contract (a root is
        its own parent) is part of this class's interface.
        """

        return self._parent[x] == x

    def find(self, x: int) -> int:
        """Return the canonical representative of *x* (with path compression)."""

        parent = self._parent
        # fast paths: roots and depth-1 nodes dominate once compression has
        # run (find is the single hottest call in saturation)
        root = parent[x]
        if root == x:
            return x
        up = parent[root]
        if up == root:
            return root
        while parent[up] != up:
            up = parent[up]
        root = up
        # path compression
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets containing *a* and *b*; return the surviving root.

        The larger set's root survives (union by size); ties keep *a*'s root,
        making the operation deterministic, which keeps extraction results
        reproducible run to run.
        """

        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        return self.union_roots(ra, rb)

    def union_roots(self, ra: int, rb: int) -> int:
        """Merge two sets given their (distinct) roots — no finds.

        Same survivor rule as :meth:`union`: the larger set's root wins,
        ties keep *ra*.
        """

        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def same(self, a: int, b: int) -> bool:
        """Return True if *a* and *b* are in the same set."""

        return self.find(a) == self.find(b)

    def all_roots(self, ids) -> bool:
        """True if every id in *ids* is canonical — one array read per id.

        The steady-state fast path of the op-index and the hashcons sweep:
        after a rebuild most entries are already canonical, and answering
        that without calling :meth:`find` per element keeps those batched
        integer loops cheap.
        """

        parent = self._parent
        for x in ids:
            if parent[x] != x:
                return False
        return True

    def roots(self) -> List[int]:
        """Return every canonical representative currently live."""

        return [i for i in range(len(self._parent)) if self._parent[i] == i]

    def copy(self) -> "UnionFind":
        """Return an independent copy of this union-find."""

        dup = UnionFind()
        dup._parent = list(self._parent)
        dup._size = list(self._size)
        return dup
