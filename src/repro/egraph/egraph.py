"""The e-graph data structure with congruence closure, on a flat interned core.

The implementation follows the ``egg`` design (Willsey et al., POPL 2021)
that the paper builds on:

* e-nodes are hash-consed: a node whose children are canonical e-class ids
  appears at most once in the graph,
* :meth:`EGraph.merge` only records the union; congruence closure is
  restored lazily by :meth:`EGraph.rebuild` (deferred rebuilding), which is
  what makes batch rule application cheap,
* e-class analyses (:mod:`repro.egraph.analysis`) propagate per-class facts
  such as constant values, enabling constant folding during saturation.

Flat interned representation
----------------------------

Earlier versions stored every e-node as a frozen :class:`ENode` dataclass
(string operator, arbitrary payload, memoized hash in ``__dict__``), which
made the hottest loops — hashcons probes, canonicalisation, congruence
repair — churn through Python object allocation and attribute lookups.
The core now interns operators and payloads to small integers via
per-graph symbol tables, and each e-node *is* its canonical **key**: a
plain tuple ``(op_id, payload_id, *child_ids)`` of ints.  Tuples of small
ints hash and compare at C speed (and, unlike strings, independent of
``PYTHONHASHSEED``), canonicalisation is a slice-and-rebuild over ints,
and per-class node sets are sets of such tuples.  Class bookkeeping lives
in slotted :class:`EClass` records; parents are flat ``(key, class_id)``
pairs.

Alongside the dicts, the graph maintains a **columnar mirror**
(:class:`~repro.egraph.columns.ColumnStore`): one row of flat parallel
int columns ``(op_id, payload_id, child0.., class_id, alive)`` per
spelling ever interned, in hashcons insertion order.  The stale-key sweep
and the relational e-matcher (:mod:`repro.egraph.pattern`) run as batched
passes over these columns — vectorised under numpy, plain loops under the
``array`` fallback — without touching any order the dict core defines.
Per-class ``touched``/liveness stamps are mirrored into flat arrays the
same way (``_class_touched`` / ``_class_alive``) so the incremental
searcher and the extraction refresh can filter classes in one pass.

:class:`ENode` survives as a thin **boundary view**: user code, the rule
DSL, cost models, code generation, tests, and cache serialisation keep
their ENode-based API, and the graph materialises views lazily (memoized
per key) only when asked.  The compiled e-matcher and the extraction DP
never construct views on their hot paths — they index the key tuples
directly.

On top of the classic structure the e-graph maintains the bookkeeping that
the op-indexed, incremental e-matcher (:mod:`repro.egraph.pattern`) relies
on:

* an **op-index** — for every operator id, the set of e-class ids whose
  class contains an e-node with that operator.  Entries are canonicalised
  lazily (a stale id simply ``find``s to the surviving root), so ``merge``
  never has to rewrite the index; :meth:`classes_with_op` compacts on read.
* a per-class **by-op grouping** of the key set (cached, invalidated by a
  per-class ``version`` stamp) so a sub-pattern with operator ``*`` only
  looks at the ``*`` keys of a candidate class,
* a per-class **touched** stamp — the :attr:`version` at which the class
  (or anything match-relevant below it) last changed.  :meth:`rebuild`
  propagates touches upward through the parent lists, which is what makes
  it sound for a rewrite to skip classes untouched since its previous scan,
* a cached canonical-node count so ``len(egraph)`` is O(1) (it is called
  inside the runner's per-rule apply loop).

Determinism: every order that can influence saturation outcomes is sorted
on data that does not depend on ``PYTHONHASHSEED`` — match buckets sort by
``(child ids, str(payload), payload type)`` exactly as the object core
did, root candidates sort by class id, and key tuples themselves hash
seed-independently — so the full kernel × variant sweep stays a pure
function of (source, config) (see ``tests/egraph/test_determinism.py``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.egraph import columns
from repro.egraph.columns import ColumnStore
from repro.egraph.language import Payload, Term
from repro.egraph.unionfind import UnionFind

__all__ = ["ENode", "EClass", "EGraph", "NodeKey"]

#: An interned e-node: ``(op_id, payload_id, *child_class_ids)``.
NodeKey = Tuple[int, ...]

_EMPTY: Tuple = ()

#: Cache-miss sentinel for the relation/probe cache (None is a meaningful
#: cached value: an empty relation or probe index).
_NO_ENTRY = object()


@dataclass(frozen=True, eq=False)
class ENode:
    """An operator applied to e-class ids (not to terms).

    This is the *boundary view* of an interned node key: the e-graph's
    internal structures store keys, and materialise ENodes lazily for user
    code, tests, and serialisation.  Like
    :class:`~repro.egraph.language.Term`, equality is payload-type aware so
    integer and floating-point literals never share an e-class (C assigns
    them different division/modulo semantics).
    """

    op: str
    children: Tuple[int, ...] = ()
    payload: Payload = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ENode):
            return NotImplemented
        return (
            self.op == other.op
            and self.payload == other.payload
            and type(self.payload) is type(other.payload)
            and self.children == other.children
        )

    def __hash__(self) -> int:
        # e-nodes are hashed at the boundary (tests, serialisation, cost
        # memos); memoise the hash on first use.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.op, self.payload, type(self.payload), self.children))
            object.__setattr__(self, "_hash", h)
        return h

    def canonicalize(self, uf: UnionFind) -> "ENode":
        """Return this e-node with every child id replaced by its root."""

        children = self.children
        if not children:
            return self
        # inlined UnionFind.is_root (see its docstring for the contract)
        parent = uf._parent
        for c in children:
            if parent[c] != c:
                find = uf.find
                return ENode(self.op, tuple([find(c) for c in children]), self.payload)
        return self

    def map_children(self, fn) -> "ENode":
        return ENode(self.op, tuple(fn(c) for c in self.children), self.payload)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            return label
        return f"({label} {' '.join(str(c) for c in self.children)})"


class EClass:
    """A set of equal e-nodes plus bookkeeping for congruence closure.

    Nodes are stored as interned keys (:attr:`keys`); the legacy
    :attr:`nodes` view materialises :class:`ENode` objects on demand.
    """

    __slots__ = (
        "graph",
        "id",
        "keys",
        "parents",
        "data",
        "version",
        "touched",
        "_by_op",
        "_by_op_version",
    )

    def __init__(
        self,
        graph: "EGraph",
        eclass_id: int,
        keys: Optional[Set[NodeKey]] = None,
        parents: Optional[List[Tuple[NodeKey, int]]] = None,
        data: object = None,
    ) -> None:
        self.graph = graph
        self.id = eclass_id
        #: The interned e-node keys of this class.
        self.keys: Set[NodeKey] = keys if keys is not None else set()
        #: (parent key, e-class id the parent lives in) pairs; used to find
        #: congruent parents after a merge.
        self.parents: List[Tuple[NodeKey, int]] = (
            parents if parents is not None else []
        )
        #: Analysis data attached to this class.
        self.data = data
        #: :attr:`EGraph.version` at which the key set of this class last
        #: changed (invalidates the cached by-op grouping).
        self.version = 0
        #: :attr:`EGraph.version` at which this class — or a descendant a
        #: match rooted here could reach — last changed.
        self.touched = 0
        #: Cached ``op_id -> [keys]`` grouping of :attr:`keys`.
        self._by_op: Optional[Dict[int, List[NodeKey]]] = None
        self._by_op_version = -1

    @property
    def nodes(self) -> Set[ENode]:
        """The e-nodes of this class, as boundary views (built on demand)."""

        view = self.graph._view
        return {view(key) for key in self.keys}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"EClass(id={self.id}, keys={len(self.keys)})"


class EGraph:
    """A congruence-closed e-graph over interned node keys."""

    def __init__(self, analysis: Optional["object"] = None) -> None:
        self.uf = UnionFind()
        self.classes: Dict[int, EClass] = {}
        #: canonical key -> e-class id.
        self.hashcons: Dict[NodeKey, int] = {}
        #: e-class ids whose parents must be re-canonicalised on rebuild.
        self._dirty: List[int] = []
        #: e-class ids whose analysis data changed and must be re-propagated.
        self._analysis_dirty: List[int] = []
        self.analysis = analysis
        #: Running counter of adds/merges (saturation detection and the
        #: basis of the incremental-search stamps).
        self.version = 0
        #: op_id -> set of e-class ids whose class contains that operator.
        #: May hold stale (merged-away) ids; they canonicalise to the
        #: surviving root and are compacted on read.
        self._op_classes: Dict[int, Set[int]] = {}
        #: Cached number of e-nodes, kept in sync so ``len`` is O(1).
        self._node_count = 0
        #: Classes mutated since the last touch propagation.
        self._touched: List[int] = []
        #: Stale hashcons keys can only appear after a union; lets
        #: :meth:`_sweep_stale_keys` skip its scan on merge-free rebuilds.
        self._merged_since_sweep = False
        # -- interning tables ---------------------------------------------
        #: operator name -> op id (dense, insertion order).
        self._op_ids: Dict[str, int] = {}
        #: op id -> operator name.
        self.op_names: List[str] = []
        #: (type name, payload) -> payload id.  The type name keeps the
        #: integer 1 and the float 1.0 distinct (they hash equal).
        self._payload_ids: Dict[Tuple[str, Payload], int] = {("NoneType", None): 0}
        #: payload id -> payload value.  Id 0 is always None.
        self.payloads: List[Payload] = [None]
        #: payload id -> (str(payload), type name): the deterministic
        #: bucket-sort component (same total order the object core used).
        self._payload_sort: List[Tuple[str, str]] = [("None", "NoneType")]
        #: raw payload value -> ids of every ``==``-equal interned payload
        #: (1 and 1.0 share a slot).  The compiled matcher resolves pattern
        #: payload constants through this, preserving the object engine's
        #: type-insensitive ``!=`` guard.
        self._payload_eq: Dict[Payload, Tuple[int, ...]] = {None: (0,)}
        #: key -> memoized ENode boundary view.
        self._views: Dict[NodeKey, ENode] = {}
        #: compiled-instantiator id -> resolved (op/payload id) tuple; ids
        #: are append-only so entries never go stale (see pattern.py).
        self._inst_consts: Dict[int, tuple] = {}
        #: (op-table size, relevant-op-id set or None) — the analysis's
        #: :meth:`~repro.egraph.analysis.Analysis.relevant_op_ids` answer,
        #: refreshed whenever new operators are interned.
        self._analysis_ops: Optional[Tuple[int, Optional[Set[int]]]] = None
        # -- columnar mirror (PR 7) ---------------------------------------
        #: Flat parallel int columns, one row per hashcons spelling; kept
        #: in lockstep with every hashcons mutation (see columns.py).
        self.store = ColumnStore()
        #: class id -> touched stamp (mirror of ``EClass.touched``).
        self._class_touched = array("q")
        #: class id -> 1 while the class is live (mirror of ``classes``).
        self._class_alive = bytearray()
        #: class id -> 1 while the class carries non-bottom analysis data
        #: (mirror of ``EClass.data is not None``); lets analyses with
        #: ``needs_all_child_data`` prove a make_key call returns bottom
        #: from flat byte reads.  Only canonical ids are kept fresh — a
        #: merged-away class's flag goes stale with its record.
        self._class_data = bytearray()
        #: (version, int64 ndarray) snapshot of the union-find parent
        #: array for vectorised passes; valid until the next add/merge.
        self._parent_snapshot: Optional[tuple] = None
        #: (version, int64 ndarray) fully-compressed snapshot: entry i is
        #: ``find(i)``.  One pointer-chase to fixpoint amortised across
        #: every vectorised canonicalisation at this version.
        self._roots_snapshot: Optional[tuple] = None
        #: Per-(op, arity, payload-signature) relation cache for the
        #: relational matcher, cleared when the stamp moves (pattern.py).
        self._relation_cache: Dict[tuple, tuple] = {}
        self._relation_stamp: tuple = (-1, -1)
        #: Probe-index snapshots (:meth:`_probe_index`), keyed by the
        #: sweep generation instead of :attr:`version`: the apply phase
        #: only ever *appends* hashcons entries, so a snapshot stays a
        #: valid sub-index across adds and unions — consumers treat its
        #: misses as conservative.  Bumped by :meth:`rebuild` (the only
        #: place rows die or keys are re-spelled).
        self._probe_gen = 0
        self._probe_cache: Dict[tuple, object] = {}
        self._probe_stamp: tuple = (-1, -1)
        #: (table size, payload-id -> deterministic sort rank) cache.
        self._payload_rank: Optional[Tuple[int, array]] = None
        #: Running union count.  Adds only ever *extend* the hashcons and
        #: the union-find, so a batched pass that verified a row against a
        #: snapshot stays valid until this moves — the cheap invalidation
        #: check of the batched appliers and :meth:`add_keys_batch`.
        self._n_unions = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------

    def _intern_op(self, op: str) -> int:
        """Dense id of operator *op* (allocating one on first sight)."""

        op_id = self._op_ids.get(op)
        if op_id is None:
            op_id = len(self.op_names)
            self._op_ids[op] = op_id
            self.op_names.append(op)
        return op_id

    def _intern_payload(self, payload: Payload) -> int:
        """Dense id of *payload* (type-aware, allocating on first sight)."""

        if payload is None:
            return 0
        key = (type(payload).__name__, payload)
        pid = self._payload_ids.get(key)
        if pid is None:
            pid = len(self.payloads)
            self._payload_ids[key] = pid
            self.payloads.append(payload)
            self._payload_sort.append((str(payload), type(payload).__name__))
            # group ==-equal payloads for the matcher's payload guard
            prior = self._payload_eq.get(payload, ())
            self._payload_eq[payload] = prior + (pid,)
        return pid

    def payload_ids_matching(self, payload: Payload) -> Tuple[int, ...]:
        """Ids of every interned payload ``==``-equal to *payload*.

        Empty when no such payload exists in the graph (then no node can
        carry it, so a pattern requiring it cannot match).
        """

        return self._payload_eq.get(payload, _EMPTY)

    def _intern_node(self, enode: ENode) -> NodeKey:
        """The key of an :class:`ENode` (interning op/payload as needed)."""

        return (
            self._intern_op(enode.op),
            self._intern_payload(enode.payload),
        ) + tuple(enode.children)

    def _view(self, key: NodeKey) -> ENode:
        """The memoized :class:`ENode` boundary view of *key*."""

        view = self._views.get(key)
        if view is None:
            view = ENode(self.op_names[key[0]], key[2:], self.payloads[key[1]])
            self._views[key] = view
        return view

    def _key_sort_key(self, key: NodeKey) -> Tuple:
        """Process-stable total order for keys sharing an operator.

        Identical ordering to the object core's ``(children, str(payload),
        payload type)`` — bucket order is match-application order, which
        decides *which* e-nodes exist when a node-limit stop truncates
        saturation, so it must not change across representations.
        """

        return (key[2:], self._payload_sort[key[1]])

    def _np_parent(self):
        """int64 snapshot of the union-find parent array (numpy backend).

        Cached per :attr:`version`: path compression may rewrite entries
        without a version bump, but it only moves pointers *up* the same
        forest, so a snapshot stays a valid union-find state (identical
        roots) until the next add or merge.
        """

        snap = self._parent_snapshot
        if snap is not None and snap[0] == self.version:
            return snap[1]
        arr = columns.np.array(self.uf._parent, dtype=columns.np.int64)
        self._parent_snapshot = (self.version, arr)
        return arr

    def _np_roots(self):
        """Fully-compressed :meth:`_np_parent`: ``arr[i] == find(i)``.

        Turns every subsequent vectorised find into a single gather
        (``roots[ids]``) instead of a per-call pointer chase; root tests
        stay the same predicate (``roots[i] == i`` iff ``i`` is a root).
        Cached per :attr:`version` like the parent snapshot.
        """

        snap = self._roots_snapshot
        if snap is not None and snap[0] == self.version:
            return snap[1]
        np = columns.np
        arr = self._np_parent()
        out = arr[arr]
        while not np.array_equal(out, arr):
            arr = out
            out = arr[arr]
        self._roots_snapshot = (self.version, out)
        return out

    def _payload_ranks(self) -> array:
        """payload id -> rank in the deterministic payload sort order.

        The rank of pid ``p`` is the position of ``_payload_sort[p]`` in
        the sorted order of that table — the payload component of
        :meth:`_key_sort_key` reduced to one int, so vectorised bucket
        sorts can use an int column in place of the (str, type) tuple.
        Refreshed whenever the (append-only) payload table grows.
        """

        cache = self._payload_rank
        n = len(self._payload_sort)
        if cache is None or cache[0] != n:
            order = sorted(range(n), key=self._payload_sort.__getitem__)
            ranks = array("q", bytes(8 * n))
            for rank, pid in enumerate(order):
                ranks[pid] = rank
            cache = (n, ranks)
            self._payload_rank = cache
        return cache[1]

    def _live_relation_cache(self) -> Dict[tuple, tuple]:
        """The relation/probe-index cache, cleared if the graph moved.

        Keyed by ``(version, interned-key count, store epoch)``: any add,
        merge, re-keying or compaction moves at least one component, so a
        cached relation (or sorted probe index) is always a faithful view
        of the current store.
        """

        stamp = (self.version, len(self.store), self.store.epoch)
        if self._relation_stamp != stamp:
            self._relation_cache.clear()
            self._relation_stamp = stamp
        return self._relation_cache

    def _sync_row_touch(self) -> None:
        """Refresh the store's per-row touch-stamp column.

        ``touch[row] = _class_touched[find(cls[row])]`` for every row, as
        one gather under numpy (a Python loop otherwise — only invariant
        checks take that path; the delta readers are numpy-gated).  Synced
        eagerly at the end of :meth:`rebuild` and lazily (stamp-checked)
        by the delta readers, so a search issued without an intervening
        rebuild still sees current stamps.
        """

        store = self.store
        if store.pending:
            store.flush()
        stamp = (self.version, len(store.keys), store.epoch)
        if store.touch_stamp == stamp:
            return
        if columns.HAVE_NUMPY:
            touched = columns.as_int64(self._class_touched)
            cls = columns.as_int64(store.cls)
            if len(cls):
                canon = columns.vec_find(self._np_parent(), cls)
                columns.as_int64(store.touch)[:] = touched[canon]
        else:
            find = self.uf.find
            touched = self._class_touched
            cls = store.cls
            touch = store.touch
            for row in range(len(touch)):
                touch[row] = touched[find(cls[row])]
        store.touch_stamp = stamp

    def rows_touched_since(self, op_id: int, stamp: int):
        """Live rows of *op_id* in classes touched after *stamp*.

        The semi-naive join engine's delta reader: syncs the store's
        touch column (no-op when current) and returns the column slice.
        """

        self._sync_row_touch()
        return self.store.rows_touched_since(op_id, stamp)

    def _probe_index(self, op_id: int, pid: int, nchildren: int):
        """Sorted int64 probe index over the live rows of one node shape.

        Maps the hashcons probe ``key in hashcons`` for keys of shape
        ``(op_id, pid, c0..ck)`` onto a binary search: live rows with
        exactly that op/payload/arity are encoded by Horner evaluation of
        their *raw* child ids in base ``len(parent) + 1`` (ids are < the
        base, so the encoding is injective — exactly tuple equality).
        Returns ``(sorted codes, aligned raw cls values, base)`` (owned
        copies, never zero-copy views) or None when no live row has that
        shape.  ``False`` signals an encoding overflow (caller must fall
        back to scalar probes).

        Cached per *sweep generation* (:attr:`_probe_gen`), not per
        :attr:`version`: between rebuilds the hashcons only gains keys —
        no row dies, no entry's value changes — so a snapshot remains a
        correct **sub-index**.  A hit is a genuine current entry; a miss
        is only "not in the snapshot" and the caller must treat it
        conservatively (scalar dict probe / opaque row).  Rows interned
        after the snapshot are invisible, and a probe child id ``>=
        base`` (a class allocated after the snapshot) breaks the Horner
        injectivity, so callers must force such rows to miss.
        """

        stamp = (self._probe_gen, self.store.epoch)
        if self._probe_stamp != stamp:
            self._probe_cache.clear()
            self._probe_stamp = stamp
        cache = self._probe_cache
        key = (op_id, pid, nchildren)
        entry = cache.get(key, _NO_ENTRY)
        if entry is not _NO_ENTRY:
            return entry
        np = columns.np
        store = self.store
        base = len(self.uf._parent) + 1
        entry = None
        if nchildren and base ** nchildren >= 2 ** 62:
            entry = False
        else:
            rows = store.op_rows(op_id)
            if rows is not None and len(rows):
                alive = columns.as_uint8(store.alive)[rows]
                nc = columns.as_int64(store.nchild)[rows]
                pids = columns.as_int64(store.payload)[rows]
                keep = np.flatnonzero(
                    (alive != 0) & (nc == nchildren) & (pids == pid)
                )
                if len(keep):
                    rows = rows[keep]
                    code = np.zeros(len(rows), dtype=np.int64)
                    for i in range(nchildren):
                        code = code * base + columns.as_int64(store.child[i])[rows]
                    order = np.argsort(code, kind="stable")
                    vals = columns.as_int64(store.cls)[rows][order]
                    entry = (code[order], vals, base)
        cache[key] = entry
        return entry

    def add_keys_batch(self, keys: List[NodeKey]) -> List[int]:
        """Intern a batch of e-node keys: ``[self.add_key(k) for k in keys]``.

        Exactly that loop, observable-state-wise — same hashcons content,
        same class-id allocation order, same analysis activity, same
        returned ids — but hits resolve through one vectorised probe pass
        per *miss-free run* instead of a dict probe per key.  The batch is
        probed against a sorted columnar index of the hashcons
        (:meth:`_probe_index`); runs of hits are answered in bulk, each
        miss is interned scalar in batch order (the hashcons itself
        deduplicates repeated spellings within the batch: the first
        occurrence adds, later ones re-probe as hits).  Adds extend the
        probe snapshot monotonically, so hit flags stay valid across
        them; a union (an analysis ``modify`` firing during an add) drops
        the snapshot and re-probes the remaining suffix.  Falls back to
        the scalar loop for small or mixed-shape batches and under the
        array fallback.
        """

        n = len(keys)
        if n < 16 or not columns.HAVE_NUMPY:
            add_key = self.add_key
            return [add_key(k) for k in keys]
        first = keys[0]
        op_id, pid = first[0], first[1]
        width = len(first)
        for k in keys:
            if k[0] != op_id or k[1] != pid or len(k) != width:
                add_key = self.add_key
                return [add_key(k) for k in keys]
        np = columns.np
        mat = np.array(keys, dtype=np.int64)
        out: List[int] = [0] * n
        add_key = self.add_key
        i = 0
        rounds = 0
        while i < n:
            rounds += 1
            index = self._probe_index(op_id, pid, width - 2)
            if index is False or rounds > 8:
                for j in range(i, n):
                    out[j] = add_key(keys[j])
                return out
            parent = self._np_parent()
            if index is None:
                hit = np.zeros(n - i, dtype=bool)
                values = None
            else:
                codes, vals, base = index
                cand = np.zeros(n - i, dtype=np.int64)
                inbase = None
                for c in range(2, width):
                    col = mat[i:, c]
                    child = columns.vec_find(parent, col)
                    # snapshot sub-index: ids allocated after it was
                    # built must miss (see :meth:`_probe_index`)
                    ok = child < base
                    inbase = ok if inbase is None else (inbase & ok)
                    cand = cand * base + child
                pos = np.searchsorted(codes, cand)
                pos_safe = np.minimum(pos, len(codes) - 1)
                hit = codes[pos_safe] == cand
                if inbase is not None:
                    hit &= inbase
                values = columns.vec_find(parent, np.where(hit, vals[pos_safe], 0))
            unions0 = self._n_unions
            j = i
            while j < n and hit[j - i]:
                j += 1
            if j > i:
                out[i:j] = values[: j - i].tolist()
            while j < n:
                if hit[j - i]:
                    # still valid: only adds happened since the probe
                    out[j] = int(values[j - i])
                    j += 1
                    continue
                out[j] = add_key(keys[j])
                j += 1
                if self._n_unions != unions0:
                    break  # a union moved the parent array: re-probe
            i = j
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of (canonical) e-nodes in the graph — O(1)."""

        return self._node_count

    @property
    def num_classes(self) -> int:
        """Number of live e-classes."""

        return len(self.classes)

    def find(self, eclass_id: int) -> int:
        """Canonical id of *eclass_id*."""

        return self.uf.find(eclass_id)

    def eclasses(self) -> Iterator[EClass]:
        """Iterate over the live (canonical) e-classes."""

        return iter(self.classes.values())

    def nodes_of(self, eclass_id: int) -> Set[ENode]:
        """The e-nodes contained in the class of *eclass_id* (views)."""

        return self.classes[self.find(eclass_id)].nodes

    def keys_of(self, eclass_id: int) -> Set[NodeKey]:
        """The interned node keys of the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].keys

    def data_of(self, eclass_id: int) -> object:
        """Analysis data of the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].data

    def is_equal(self, a: int, b: int) -> bool:
        """True if the two e-class ids denote the same class."""

        return self.uf.same(a, b)

    # ------------------------------------------------------------------
    # Op-indexed queries (the e-matcher's entry points)
    # ------------------------------------------------------------------

    def classes_with_op(self, op: str) -> Set[int]:
        """Canonical ids of every live class containing an *op* e-node.

        Compacts the index entry in place (stale ids from merged-away
        classes are replaced by their roots), so repeated queries stay
        cheap even across heavy merging.
        """

        op_id = self._op_ids.get(op)
        if op_id is None:
            return set()
        return self.classes_with_op_id(op_id)

    def classes_with_op_id(self, op_id: int) -> Set[int]:
        """Like :meth:`classes_with_op`, keyed by interned operator id."""

        ids = self._op_classes.get(op_id)
        if not ids:
            return set()
        # steady-state fast path: already fully canonical -> no rebuild
        if self.uf.all_roots(ids):
            return set(ids)
        find = self.uf.find
        canon = {find(i) for i in ids}
        self._op_classes[op_id] = canon
        # return a copy: handing out the live index would let callers
        # mutate it (or trip over adds while iterating)
        return set(canon)

    def op_id(self, op: str) -> Optional[int]:
        """Interned id of *op*, or None if the graph never saw it."""

        return self._op_ids.get(op)

    def buckets_by_op_id(self, eclass_id: int, op_id: int) -> Sequence[NodeKey]:
        """The node keys with operator *op_id* in the class of *eclass_id*.

        This is the compiled matcher's inner-loop accessor: it hands back
        raw key tuples (``key[2:]`` are the child class ids) so the match
        path runs entirely over interned ints.  Backed by a per-class
        grouping cache invalidated whenever the class's key set changes.
        Bucket order is the deterministic :meth:`_key_sort_key` order —
        identical to the object core's, which keeps node-limit-truncated
        saturations reproducible across processes (the content-addressed
        artifact cache relies on same source+config => same artifact).
        """

        # callers overwhelmingly pass canonical ids (the matcher always
        # does); the classes dict only holds canonical roots, so a hit
        # skips the union-find walk entirely
        cls = self.classes.get(eclass_id)
        if cls is None:
            cls = self.classes[self.uf.find(eclass_id)]
        if cls._by_op_version != cls.version:
            self._rebuild_by_op(cls)
        return cls._by_op.get(op_id, _EMPTY)

    def _rebuild_by_op(self, cls: "EClass") -> None:
        """Rebuild *cls*'s per-op bucket grouping (deterministic order).

        Split out of :meth:`buckets_by_op_id` so the compiled matchers can
        inline the cache-hit path and only pay a call on a version miss.
        """

        group: Dict[int, List[NodeKey]] = {}
        for key in cls.keys:
            bucket = group.get(key[0])
            if bucket is None:
                group[key[0]] = [key]
            else:
                bucket.append(key)
        sort_key = self._key_sort_key
        for bucket in group.values():
            if len(bucket) > 1:
                bucket.sort(key=sort_key)
        cls._by_op = group
        cls._by_op_version = cls.version

    def nodes_by_op(self, eclass_id: int, op: str) -> Sequence[ENode]:
        """The e-nodes with operator *op* in the class of *eclass_id*.

        Boundary wrapper over :meth:`buckets_by_op_id` (views in the same
        deterministic bucket order).
        """

        op_id = self._op_ids.get(op)
        if op_id is None:
            return _EMPTY
        view = self._view
        return [view(key) for key in self.buckets_by_op_id(eclass_id, op_id)]

    # ------------------------------------------------------------------
    # Adding
    # ------------------------------------------------------------------

    def _canon_key(self, key: NodeKey) -> NodeKey:
        """Return *key* with every child id replaced by its root."""

        parent = self.uf._parent
        n = len(key)
        i = 2
        while i < n:
            c = key[i]
            if parent[c] != c:
                find = self.uf.find
                return key[:2] + tuple([find(key[j]) for j in range(2, n)])
            i += 1
        return key

    def add_key(self, key: NodeKey) -> int:
        """Add an interned e-node key, returning its e-class (hash-consed).

        This is the arena-level hot path: the compiled rule instantiators
        and :meth:`add_term` call it directly with pre-interned ids.  The
        dominant outcome is a hashcons hit on an already-canonical key, so
        canonicalisation and the root lookup are inlined array reads.
        """

        parent = self.uf._parent
        n = len(key)
        i = 2
        while i < n:
            c = key[i]
            if parent[c] != c:
                find = self.uf.find
                key = key[:2] + tuple([find(key[j]) for j in range(2, n)])
                break
            i += 1
        existing = self.hashcons.get(key)
        if existing is not None:
            if parent[existing] == existing:
                return existing
            return self.uf.find(existing)
        return self._add_canon_miss(key)

    def _add_canon_miss(self, key: NodeKey) -> int:
        """:meth:`add_key` miss path: *key* is canonical and not interned.

        The compiled instantiators call this directly after their own
        inline canonicalisation + hashcons probe missed, skipping
        :meth:`add_key`'s redundant re-scan and re-probe.
        """

        parent = self.uf._parent
        n = len(key)
        self.version += 1
        # inline uf.make_set() and the EClass constructor: this runs once
        # per fresh e-node and the two call frames are pure overhead (the
        # parent-array contract is part of UnionFind's interface)
        uf = self.uf
        eclass_id = len(parent)
        parent.append(eclass_id)
        uf._size.append(1)
        eclass = EClass.__new__(EClass)
        eclass.graph = self
        eclass.id = eclass_id
        eclass.keys = {key}
        eclass.parents = []
        eclass.data = None
        eclass._by_op = None
        eclass._by_op_version = -1
        eclass.version = eclass.touched = self.version
        self.classes[eclass_id] = eclass
        self.hashcons[key] = eclass_id
        self.store.append_new(key, eclass_id)
        self._class_touched.append(self.version)
        self._class_alive.append(1)
        self._class_data.append(0)
        self._node_count += 1
        ops = self._op_classes.get(key[0])
        if ops is None:
            self._op_classes[key[0]] = {eclass_id}
        else:
            ops.add(eclass_id)
        self._touched.append(eclass_id)
        # children are canonical here (the key was just canonicalised)
        classes = self.classes
        n = len(key)
        i = 2
        while i < n:
            classes[key[i]].parents.append((key, eclass_id))
            i += 1

        analysis = self.analysis
        if analysis is not None:
            # consult the analysis's relevant-op hint: for ops it can never
            # value (the dominant case under constant folding) the data is
            # None and `modify` is a no-op, so both calls can be skipped
            hint = self._analysis_ops
            if hint is None or hint[0] != len(self.op_names):
                hint = (len(self.op_names), analysis.relevant_op_ids(self))
                self._analysis_ops = hint
            if hint[1] is None or key[0] in hint[1]:
                if n > 2 and analysis.needs_all_child_data:
                    # bottom-child prefilter: the children are canonical
                    # here, so one byte read each proves make_key would
                    # return bottom (and modify would be a no-op)
                    data_flag = self._class_data
                    i = 2
                    while i < n:
                        if not data_flag[key[i]]:
                            return eclass_id
                        i += 1
                eclass.data = analysis.make_key(self, key)
                if eclass.data is not None:
                    self._class_data[eclass_id] = 1
                analysis.modify(self, eclass_id)
        return eclass_id

    def add(self, enode: ENode) -> int:
        """Add an e-node, returning the id of its e-class (hash-consed)."""

        return self.add_key(self._intern_node(enode))

    def add_term(self, term: Term) -> int:
        """Recursively add a whole term; returns the e-class of its root."""

        prefix = (self._intern_op(term.op), self._intern_payload(term.payload))
        child_ids = tuple(self.add_term(child) for child in term.children)
        return self.add_key(prefix + child_ids)

    def add_leaf(self, op: str, payload: Payload = None) -> int:
        """Add a leaf e-node (``num``/``sym``-style)."""

        return self.add_key((self._intern_op(op), self._intern_payload(payload)))

    # ------------------------------------------------------------------
    # Merging and rebuilding
    # ------------------------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Assert that the classes of *a* and *b* are equal.

        The union is recorded immediately; congruence closure and hashcons
        canonicalisation are deferred to :meth:`rebuild`.
        """

        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return ra
        return self.merge_roots(ra, rb)

    def merge_roots(self, ra: int, rb: int) -> int:
        """Merge two classes given their *canonical* (distinct) root ids.

        The apply loop already holds both roots from its no-op check, so
        this entry point skips re-finding them.
        """

        self.version += 1
        self._n_unions += 1
        # inline uf.union_roots (same survivor rule: larger set wins,
        # ties keep ra) — one call frame saved per union
        uf = self.uf
        size = uf._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        uf._parent[rb] = ra
        size[ra] += size[rb]
        root, other = ra, rb
        winner, loser = self.classes[root], self.classes[other]

        before = len(winner.keys) + len(loser.keys)
        winner.keys |= loser.keys
        self._node_count += len(winner.keys) - before
        winner.parents.extend(loser.parents)
        winner.version = winner.touched = self.version
        self._class_touched[root] = self.version
        self._class_alive[other] = 0
        self._touched.append(root)
        self._merged_since_sweep = True
        # No op-index update needed: the loser's index entries find() to the
        # surviving root and are compacted on the next classes_with_op read.

        if self.analysis is not None:
            winner.data = self.analysis.join(winner.data, loser.data)
            self._class_data[root] = 1 if winner.data is not None else 0
            self._analysis_dirty.append(root)

        del self.classes[other]
        self._dirty.append(root)
        return root

    def union_terms(self, a: Term, b: Term) -> int:
        """Add both terms and merge their classes (convenience for tests)."""

        ia, ib = self.add_term(a), self.add_term(b)
        root = self.merge(ia, ib)
        self.rebuild()
        return root

    def rebuild(self) -> int:
        """Restore the hashcons and congruence invariants.

        Returns the number of follow-up merges performed (congruent parents
        discovered while re-canonicalising).  The deferred worklist is
        drained in batches of integer loops over the flat key tuples; the
        *touched* stamps of every mutated class are then propagated upward
        through the parent lists so the incremental searcher sees new
        matches rooted at unchanged ancestors of changed classes.
        """

        n_repairs = 0
        # rebuild is the only phase that kills rows, re-spells keys or
        # rewrites entry values: retire the probe-index snapshots on both
        # sides of it (repairs below consult the hashcons themselves)
        self._probe_gen += 1
        while True:
            while self._dirty or self._analysis_dirty:
                todo = {self.uf.find(i) for i in self._dirty}
                self._dirty.clear()
                for eclass_id in todo:
                    n_repairs += self._repair(eclass_id)

                analysis_todo = {self.uf.find(i) for i in self._analysis_dirty}
                self._analysis_dirty.clear()
                for eclass_id in analysis_todo:
                    self._repair_analysis(eclass_id)

            # Parents-driven repair restores *most* of the hashcons, but a
            # node spelling re-keyed by one class's repair is invisible to a
            # later repair that recorded an older spelling of the same node
            # (its pop misses), which strands the newer spelling as a stale
            # key — and, if its value disagrees with the canonical entry, a
            # missed congruent merge.  The closing sweep drops stale keys
            # and loops again when it uncovers such a merge.
            n_repairs += self._sweep_stale_keys()
            if not self._dirty and not self._analysis_dirty:
                break
        self._propagate_touches()
        store = self.store
        if store.pending:
            store.flush()
        n_rows = len(store.keys)
        # compaction policy: reclaim once tombstones outnumber live rows
        # (>50% dead) past a floor that keeps small graphs loop-free.
        # Invisible to outcomes — live-row relative order is preserved and
        # every row-index cache is epoch-keyed — so the policy only moves
        # wall-clock, and it depends only on counts (backend-independent).
        if n_rows >= 512 and 2 * (n_rows - sum(store.alive)) > n_rows:
            store.compact()
        self._probe_gen += 1
        if columns.HAVE_NUMPY:
            # keep the per-row touch-stamp column current for the delta
            # readers: one gather per rebuild, amortised across every
            # incremental search issued before the next mutation
            self._sync_row_touch()
        return n_repairs

    def _sweep_stale_keys(self) -> int:
        """Drop non-canonical hashcons keys; merge any congruence they hid.

        Runs at each :meth:`rebuild` convergence.  The scan is a flat
        integer loop: a key is stale iff one of its child ids is not a
        union-find root, which is two array reads per child.
        """

        if not self._merged_since_sweep:
            return 0
        self._merged_since_sweep = False
        uf = self.uf
        store = self.store
        if columns.HAVE_NUMPY and len(store) > 64:
            # batched column pass: the staleness predicate per row is the
            # same two-array-reads-per-child check, evaluated over the
            # whole child columns at once.  Ascending alive-row order is
            # hashcons dict order (the store's core invariant), so the
            # collected keys — and therefore the merge-discovery order
            # below — are identical to the scalar scan's.
            parent_np = columns.np.array(uf._parent, dtype=columns.np.int64)
            rows = store.stale_alive_rows(parent_np)
            if not rows.size:
                return 0
            keys_list = store.keys
            stale = [keys_list[r] for r in rows.tolist()]
        else:
            parent = uf._parent
            stale = []
            for key in self.hashcons:
                n = len(key)
                i = 2
                while i < n:
                    c = key[i]
                    if parent[c] != c:
                        stale.append(key)
                        break
                    i += 1
            if not stale:
                return 0
        find = uf.find
        merges = 0
        views_pop = self._views.pop
        classes = self.classes
        for key in stale:
            value = self.hashcons.pop(key)
            store.kill(key)
            # the spelling is retired for good (its children can never
            # become roots again) — drop its memoized boundary view so the
            # memo tracks the live key set instead of growing monotonically
            views_pop(key, None)
            canon = self._canon_key(key)
            prior = self.hashcons.get(canon)
            if prior is None:
                canon_class = find(value)
                self.hashcons[canon] = canon_class
                store.append_new(canon, canon_class)
            elif find(prior) != find(value):
                self.merge(prior, value)
                merges += 1
            # the retired spelling can still sit in its class's key set:
            # the parents-driven repair only canonicalises spellings it
            # finds in parent lists, and a spelling minted *by* a repair is
            # recorded in just one child's list — swap it for the canonical
            # one here too, or the class double-counts the node (and the
            # scan matcher emits duplicate matches the join engine,
            # reading the deduplicated hashcons rows, can never produce)
            owner = classes.get(find(value))
            if owner is not None and key in owner.keys:
                n0 = len(owner.keys)
                owner.keys.discard(key)
                owner.keys.add(canon)
                self._node_count += len(owner.keys) - n0
        return merges

    def _propagate_touches(self) -> None:
        """Stamp every ancestor of a mutated class as touched.

        A match rooted at class ``C`` depends on the node sets of every
        class reachable through the children of ``C``'s nodes.  Walking the
        parent lists from each mutated class therefore marks exactly the
        classes whose match sets may have changed (egg instead falls back
        to a full rescan; the upward walk is cheap because the visited set
        caps it at one pass over the ancestor cone).
        """

        if not self._touched:
            return
        find = self.uf.find
        parent_arr = self.uf._parent
        classes = self.classes
        touched_arr = self._class_touched
        stamp = self.version
        queue = [
            i if parent_arr[i] == i else find(i) for i in self._touched
        ]
        self._touched.clear()
        seen: Set[int] = set()
        while queue:
            cid = queue.pop()
            if cid in seen:
                continue
            seen.add(cid)
            cls = classes.get(cid)
            if cls is None:
                continue
            if cls.touched < stamp:
                cls.touched = stamp
                touched_arr[cid] = stamp
            for _, parent_class in cls.parents:
                # inline root check: parent edges are overwhelmingly
                # canonical post-repair, so most iterations skip the call
                if parent_arr[parent_class] != parent_class:
                    parent_class = find(parent_class)
                if parent_class not in seen:
                    queue.append(parent_class)

    def _repair(self, eclass_id: int) -> int:
        """Re-canonicalise the parents of one e-class, merging congruent ones.

        Deduplicates the parent list as it goes: merges concatenate parent
        lists, so the same ``(key, class)`` pair can accumulate many times
        across a saturation run.  Everything here is integer loops over
        flat tuples — no node objects are constructed.
        """

        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return 0

        repairs = 0
        old_parents = eclass.parents
        eclass.parents = []
        new_parents = eclass.parents
        hashcons = self.hashcons
        uf = self.uf
        find = uf.find
        classes = self.classes
        canon_key = self._canon_key
        parent_arr = uf._parent
        store = self.store
        views_pop = self._views.pop
        touched_arr = self._class_touched
        seen: Dict[NodeKey, int] = {}
        prev_key: Optional[NodeKey] = None
        prev_class = -1
        prev_unions = -1
        for parent_key, parent_class in old_parents:
            # batched-dedup fast path: a run of exact duplicates (a child
            # occupying several slots of one node appends one entry per
            # slot) is a pure no-op after its first occurrence *provided
            # no union happened in between* — same canonical spelling,
            # same canonical class, so the is_duplicate branch below
            # cannot merge and every write repeats itself.  A union
            # (congruence found while processing the first occurrence)
            # voids that proof, so the union counter gates the skip.
            if (
                parent_key is prev_key
                and parent_class == prev_class
                and self._n_unions == prev_unions
            ):
                continue
            prev_key, prev_class, prev_unions = (
                parent_key, parent_class, self._n_unions,
            )
            # re-canonicalise only stale spellings (inline staleness check).
            # A canonical spelling needs no hashcons pop/reinsert round
            # trip — and since the pop would have removed the entry, the
            # original code never saw a `prior` for it either, so the
            # congruence probe is skipped to keep behaviour identical (the
            # entry is overwritten with this parent's class below, exactly
            # as before).
            n = len(parent_key)
            i = 2
            while i < n:
                c = parent_key[i]
                if parent_arr[c] != c:
                    break
                i += 1
            if i == n:
                canon = parent_key
                skip_probe = True  # the pop would have emptied this slot
            else:
                # drop the stale hashcons entry before re-canonicalising
                # (and retire its column row + memoized boundary view)
                hashcons.pop(parent_key, None)
                store.kill(parent_key)
                views_pop(parent_key, None)
                canon = canon_key(parent_key)
                skip_probe = False
            if parent_arr[parent_class] != parent_class:
                parent_class = find(parent_class)
            existing = seen.get(canon)
            is_duplicate = existing is not None
            fresh = False
            if is_duplicate:
                if parent_arr[existing] != existing:
                    existing = find(existing)
                if existing != parent_class:
                    self.merge(existing, parent_class)
                    repairs += 1
                    parent_class = find(parent_class)
            elif not skip_probe:
                prior = hashcons.get(canon)
                if prior is not None:
                    prior_root = (
                        prior if parent_arr[prior] == prior else find(prior)
                    )
                    if prior_root != parent_class:
                        self.merge(prior, parent_class)
                        repairs += 1
                        parent_class = find(parent_class)
                else:
                    fresh = True
            # parent_class is canonical on every path here: it was found
            # above and re-found after any merge that could stale it
            canon_class = parent_class
            hashcons[canon] = canon_class
            # mirror: only a *fresh* dict insertion appends a row.  An
            # overwrite keeps its live row, whose cls may now lag the dict
            # value — but only by union-find equivalence (the overwritten
            # value was merged into canon_class above), which is all the
            # column readers need: they canonicalise cls through the
            # parent array anyway.
            if fresh:
                store.append_new(canon, canon_class)
            seen[canon] = canon_class
            if not is_duplicate:
                new_parents.append((canon, canon_class))
            # keep the parent's own key set canonical too, otherwise the
            # stale spelling lingers there while the hashcons moves on
            if canon is not parent_key:
                owner = classes.get(canon_class)
                if owner is not None:
                    n0 = len(owner.keys)
                    owner.keys.discard(parent_key)
                    owner.keys.add(canon)
                    self._node_count += len(owner.keys) - n0
                    owner.version = owner.touched = self.version
                    touched_arr[owner.id] = self.version
                    self._touched.append(owner.id)

        # canonicalise the keys stored in the class itself (inline staleness
        # check: most member keys don't reference the repaired child, so the
        # common case is two array reads per child and no call)
        eclass = self.classes.get(find(eclass_id))
        if eclass is not None:
            parent_arr = uf._parent
            new_keys = set()
            add_new = new_keys.add
            for key in eclass.keys:
                n = len(key)
                i = 2
                while i < n:
                    c = key[i]
                    if parent_arr[c] != c:
                        key = key[:2] + tuple([find(key[j]) for j in range(2, n)])
                        break
                    i += 1
                add_new(key)
            self._node_count += len(new_keys) - len(eclass.keys)
            eclass.keys = new_keys
            eclass.version = eclass.touched = self.version
            touched_arr[eclass.id] = self.version
            self._touched.append(eclass.id)
            # snapshot: a congruent merge below can grow this very set
            root = find(eclass.id)
            for key in list(new_keys):
                # congruence check before re-keying: a re-spelled member
                # node may coincide with a node of a *different* class —
                # blindly overwriting its entry would leave the two
                # classes unmerged.  `root` tracks find(eclass.id) across
                # the loop (only a merge can move it).
                prior = hashcons.get(key)
                if prior is not None:
                    if parent_arr[root] != root:
                        root = find(root)
                    if (prior if parent_arr[prior] == prior else find(prior)) != root:
                        self.merge(prior, eclass.id)
                        repairs += 1
                        root = find(root)
                    # overwrite: the live row's cls stays union-find-equal
                    # to the new dict value, which the column readers
                    # canonicalise anyway — no mirror write needed
                    hashcons[key] = root
                else:
                    if parent_arr[root] != root:
                        root = find(root)
                    hashcons[key] = root
                    store.append_new(key, root)
        return repairs

    def _repair_analysis(self, eclass_id: int) -> None:
        """Propagate changed analysis data to parents."""

        analysis = self.analysis
        if analysis is None:
            return
        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return
        analysis.modify(self, eclass_id)
        # relevant-op prefilter: for a parent whose operator the analysis
        # can never value, make_key returns the bottom element (None) and
        # join(data, bottom) == data (the relevant_op_ids contract), so
        # the joined != data branch below cannot fire — skip the calls.
        hint = self._analysis_ops
        if hint is None or hint[0] != len(self.op_names):
            hint = (len(self.op_names), analysis.relevant_op_ids(self))
            self._analysis_ops = hint
        relevant = hint[1]
        prefilter = analysis.needs_all_child_data
        data_flag = self._class_data
        parent_arr = self.uf._parent
        find = self.uf.find
        for parent_key, parent_class in list(eclass.parents):
            if relevant is not None and parent_key[0] not in relevant:
                continue
            if prefilter:
                # bottom-child prefilter: a byte read per (canonicalised)
                # child proves make_key returns bottom, so the joined !=
                # data branch below cannot fire — skip the canon_key /
                # make_key / join round trip.  Stored child ids may be
                # stale; the flag is only fresh at the canonical id.
                ok = True
                for i in range(2, len(parent_key)):
                    c = parent_key[i]
                    if parent_arr[c] != c:
                        c = find(c)
                    if not data_flag[c]:
                        ok = False
                        break
                if not ok:
                    continue
            parent_class = find(parent_class)
            parent = self.classes.get(parent_class)
            if parent is None:
                continue
            new_data = analysis.make_key(self, self._canon_key(parent_key))
            joined = analysis.join(parent.data, new_data)
            if joined != parent.data:
                parent.data = joined
                data_flag[parent_class] = 1 if joined is not None else 0
                self._analysis_dirty.append(parent_class)
                # a data change can flip rewrite guards — make sure the
                # incremental searcher revisits this class
                parent.touched = self.version
                self._class_touched[parent_class] = self.version
                self._touched.append(parent_class)

    # ------------------------------------------------------------------
    # Queries used by e-matching and extraction
    # ------------------------------------------------------------------

    def canonical_nodes(self) -> Iterator[Tuple[int, ENode]]:
        """Yield ``(eclass_id, enode)`` for every canonical e-node."""

        view = self._view
        for eclass in self.classes.values():
            for key in eclass.keys:
                yield eclass.id, view(key)

    def lookup_term(self, term: Term) -> Optional[int]:
        """Return the e-class containing *term*, or None if absent.

        Unlike :meth:`add_term` this never grows the graph (operators and
        payloads the graph has never interned simply miss).
        """

        op_id = self._op_ids.get(term.op)
        if op_id is None:
            return None
        if term.payload is None:
            payload_id = 0
        else:
            payload_id = self._payload_ids.get(
                (type(term.payload).__name__, term.payload)
            )
            if payload_id is None:
                return None
        child_ids: List[int] = []
        for child in term.children:
            cid = self.lookup_term(child)
            if cid is None:
                return None
            child_ids.append(cid)
        key = self._canon_key((op_id, payload_id) + tuple(child_ids))
        found = self.hashcons.get(key)
        return None if found is None else self.uf.find(found)

    def equivalent_terms(self, a: Term, b: Term) -> bool:
        """True if both terms are present and live in the same e-class."""

        ia, ib = self.lookup_term(a), self.lookup_term(b)
        return ia is not None and ib is not None and self.uf.same(ia, ib)

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the hashcons/congruence invariants; raises AssertionError."""

        for key, eclass_id in self.hashcons.items():
            canon = self._canon_key(key)
            assert canon == key, f"hashcons key not canonical: {self._view(key)}"
            root = self.uf.find(eclass_id)
            assert root in self.classes, f"hashcons maps to dead class {eclass_id}"
            assert key in self.classes[root].keys, (
                f"hashcons entry {self._view(key)} missing from class {root}"
            )
        seen: Dict[NodeKey, int] = {}
        for eclass in self.classes.values():
            assert self.uf.find(eclass.id) == eclass.id, "non-canonical class id"
            for key in eclass.keys:
                canon = self._canon_key(key)
                assert canon in self.hashcons, (
                    f"node {self._view(key)} missing from hashcons"
                )
                prior = seen.get(canon)
                assert prior is None or prior == eclass.id, (
                    f"congruence violation: {self._view(canon)} in classes "
                    f"{prior} and {eclass.id}"
                )
                seen[canon] = eclass.id

        # cached node count matches the ground truth
        actual = sum(len(cls.keys) for cls in self.classes.values())
        assert self._node_count == actual, (
            f"cached node count {self._node_count} != actual {actual}"
        )
        # interning tables are mutually consistent
        assert len(self.op_names) == len(self._op_ids)
        assert len(self.payloads) == len(self._payload_ids) == len(self._payload_sort)
        for op, op_id in self._op_ids.items():
            assert self.op_names[op_id] == op, f"op table corrupt at {op_id}"
        # op-index covers every (op, class) pair (it may hold extra stale
        # ids, but after canonicalisation every live op-bearing class must
        # be present)
        for eclass in self.classes.values():
            for key in eclass.keys:
                members = self.classes_with_op_id(key[0])
                assert eclass.id in members, (
                    f"op-index missing class {eclass.id} for op "
                    f"{self.op_names[key[0]]!r}"
                )

        # columnar mirror: alive rows in ascending row order are exactly
        # the hashcons keys in dict iteration order (the invariant the
        # batched sweep and the relational matcher rely on), and the
        # per-row class is union-find-equal to the dict value (a dict
        # overwrite with a merged-away value's root skips the mirror
        # write, so the row may hold the pre-merge id — column readers
        # canonicalise through the parent array)
        store = self.store
        store.flush()
        alive_keys = [
            store.keys[row] for row in range(len(store.keys)) if store.alive[row]
        ]
        assert alive_keys == list(self.hashcons), (
            "column store out of sync with hashcons order"
        )
        assert set(store.row_of) == set(self.hashcons)
        for key, eclass_id in self.hashcons.items():
            row = store.row_of[key]
            assert store.keys[row] == key
            assert self.uf.find(store.cls[row]) == self.uf.find(eclass_id), (
                f"column class {store.cls[row]} not equivalent to hashcons "
                f"value {eclass_id} for {self._view(key)}"
            )
            assert store.op[row] == key[0]
            assert store.payload[row] == key[1]
            assert store.nchild[row] == len(key) - 2
            for i in range(len(store.child)):
                expected = key[i + 2] if i < len(key) - 2 else -1
                assert store.child[i][row] == expected
        # per-class mirrors agree with the slotted records
        assert (
            len(self._class_touched)
            == len(self._class_alive)
            == len(self._class_data)
            == len(self.uf)
        )
        for eclass in self.classes.values():
            assert self._class_alive[eclass.id] == 1
            assert self._class_touched[eclass.id] == eclass.touched, (
                f"touched mirror {self._class_touched[eclass.id]} != "
                f"{eclass.touched} for class {eclass.id}"
            )
            assert (self._class_data[eclass.id] != 0) == (
                eclass.data is not None
            ), f"data-flag mirror wrong for class {eclass.id}"
        assert sum(self._class_alive) == len(self.classes)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def copy(self) -> "EGraph":
        """A structural copy sharing no mutable state with the original."""

        dup = EGraph(self.analysis)
        dup.uf = self.uf.copy()
        dup.hashcons = dict(self.hashcons)
        dup.classes = {}
        for cid, cls in self.classes.items():
            new = EClass(dup, cls.id, set(cls.keys), list(cls.parents), cls.data)
            new.version = cls.version
            new.touched = cls.touched
            dup.classes[cid] = new
        dup._dirty = list(self._dirty)
        dup._analysis_dirty = list(self._analysis_dirty)
        dup.version = self.version
        dup._op_classes = {op: set(ids) for op, ids in self._op_classes.items()}
        dup._node_count = self._node_count
        dup._touched = list(self._touched)
        dup._merged_since_sweep = self._merged_since_sweep
        dup._op_ids = dict(self._op_ids)
        dup.op_names = list(self.op_names)
        dup._payload_ids = dict(self._payload_ids)
        dup.payloads = list(self.payloads)
        dup._payload_sort = list(self._payload_sort)
        dup._payload_eq = dict(self._payload_eq)
        dup.store = self.store.copy()
        dup._class_touched = array("q", self._class_touched)
        dup._class_alive = bytearray(self._class_alive)
        dup._class_data = bytearray(self._class_data)
        # per-version caches (parent snapshot, relations, payload ranks)
        # stay at their fresh-graph defaults and rebuild on demand
        # views are immutable value objects; sharing the memo is safe, and
        # the copied interning tables keep the resolved instantiator
        # constants valid
        dup._views = dict(self._views)
        dup._inst_consts = dict(self._inst_consts)
        dup._n_unions = self._n_unions
        return dup

    def dump(self) -> str:  # pragma: no cover - debugging helper
        lines = []
        for eclass in sorted(self.classes.values(), key=lambda c: c.id):
            nodes = ", ".join(sorted(str(n) for n in eclass.nodes))
            lines.append(f"e{eclass.id}: {{{nodes}}}")
        return "\n".join(lines)
