"""The e-graph data structure with congruence closure.

The implementation follows the ``egg`` design (Willsey et al., POPL 2021)
that the paper builds on:

* e-nodes are hash-consed: an :class:`ENode` whose children are canonical
  e-class ids appears at most once in the graph,
* :meth:`EGraph.merge` only records the union; congruence closure is
  restored lazily by :meth:`EGraph.rebuild` (deferred rebuilding), which is
  what makes batch rule application cheap,
* e-class analyses (:mod:`repro.egraph.analysis`) propagate per-class facts
  such as constant values, enabling constant folding during saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.egraph.language import Payload, Term
from repro.egraph.unionfind import UnionFind

__all__ = ["ENode", "EClass", "EGraph"]


@dataclass(frozen=True, eq=False)
class ENode:
    """An operator applied to e-class ids (not to terms).

    Like :class:`~repro.egraph.language.Term`, equality is payload-type
    aware so integer and floating-point literals never share an e-class
    (C assigns them different division/modulo semantics).
    """

    op: str
    children: Tuple[int, ...] = ()
    payload: Payload = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ENode):
            return NotImplemented
        return (
            self.op == other.op
            and self.payload == other.payload
            and type(self.payload) is type(other.payload)
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.op, self.payload, type(self.payload).__name__, self.children))

    def canonicalize(self, uf: UnionFind) -> "ENode":
        """Return this e-node with every child id replaced by its root."""

        if not self.children:
            return self
        return ENode(self.op, tuple(uf.find(c) for c in self.children), self.payload)

    def map_children(self, fn) -> "ENode":
        return ENode(self.op, tuple(fn(c) for c in self.children), self.payload)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            return label
        return f"({label} {' '.join(str(c) for c in self.children)})"


@dataclass
class EClass:
    """A set of equal e-nodes plus bookkeeping for congruence closure."""

    id: int
    nodes: Set[ENode] = field(default_factory=set)
    #: (parent e-node, e-class id the parent lives in) pairs; used to find
    #: congruent parents after a merge.
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    #: Analysis data attached to this class (semantics defined by the
    #: :class:`~repro.egraph.analysis.Analysis` instance in use).
    data: object = None


class EGraph:
    """A congruence-closed e-graph."""

    def __init__(self, analysis: Optional["object"] = None) -> None:
        self.uf = UnionFind()
        self.classes: Dict[int, EClass] = {}
        self.hashcons: Dict[ENode, int] = {}
        #: e-class ids whose parents must be re-canonicalised on rebuild.
        self._dirty: List[int] = []
        #: e-class ids whose analysis data changed and must be re-propagated.
        self._analysis_dirty: List[int] = []
        self.analysis = analysis
        #: Running counter of merges (useful for saturation detection).
        self.version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of (canonical) e-nodes in the graph."""

        return sum(len(cls.nodes) for cls in self.classes.values())

    @property
    def num_classes(self) -> int:
        """Number of live e-classes."""

        return len(self.classes)

    def find(self, eclass_id: int) -> int:
        """Canonical id of *eclass_id*."""

        return self.uf.find(eclass_id)

    def eclasses(self) -> Iterator[EClass]:
        """Iterate over the live (canonical) e-classes."""

        return iter(self.classes.values())

    def nodes_of(self, eclass_id: int) -> Set[ENode]:
        """The e-nodes contained in the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].nodes

    def data_of(self, eclass_id: int) -> object:
        """Analysis data of the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].data

    def is_equal(self, a: int, b: int) -> bool:
        """True if the two e-class ids denote the same class."""

        return self.uf.same(a, b)

    # ------------------------------------------------------------------
    # Adding
    # ------------------------------------------------------------------

    def add(self, enode: ENode) -> int:
        """Add an e-node, returning the id of its e-class (hash-consed)."""

        enode = enode.canonicalize(self.uf)
        existing = self.hashcons.get(enode)
        if existing is not None:
            return self.uf.find(existing)

        eclass_id = self.uf.make_set()
        eclass = EClass(eclass_id, {enode}, [])
        self.classes[eclass_id] = eclass
        self.hashcons[enode] = eclass_id
        for child in enode.children:
            self.classes[self.uf.find(child)].parents.append((enode, eclass_id))

        if self.analysis is not None:
            eclass.data = self.analysis.make(self, enode)
            self.analysis.modify(self, eclass_id)
        self.version += 1
        return eclass_id

    def add_term(self, term: Term) -> int:
        """Recursively add a whole term; returns the e-class of its root."""

        child_ids = tuple(self.add_term(child) for child in term.children)
        return self.add(ENode(term.op, child_ids, term.payload))

    def add_leaf(self, op: str, payload: Payload = None) -> int:
        """Add a leaf e-node (``num``/``sym``-style)."""

        return self.add(ENode(op, (), payload))

    # ------------------------------------------------------------------
    # Merging and rebuilding
    # ------------------------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Assert that the classes of *a* and *b* are equal.

        The union is recorded immediately; congruence closure and hashcons
        canonicalisation are deferred to :meth:`rebuild`.
        """

        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return ra

        root = self.uf.union(ra, rb)
        other = rb if root == ra else ra
        winner, loser = self.classes[root], self.classes[other]

        winner.nodes |= loser.nodes
        winner.parents.extend(loser.parents)

        if self.analysis is not None:
            winner.data = self.analysis.join(winner.data, loser.data)
            self._analysis_dirty.append(root)

        del self.classes[other]
        self._dirty.append(root)
        self.version += 1
        return root

    def union_terms(self, a: Term, b: Term) -> int:
        """Add both terms and merge their classes (convenience for tests)."""

        ia, ib = self.add_term(a), self.add_term(b)
        root = self.merge(ia, ib)
        self.rebuild()
        return root

    def rebuild(self) -> int:
        """Restore the hashcons and congruence invariants.

        Returns the number of follow-up merges performed (congruent parents
        discovered while re-canonicalising).
        """

        n_repairs = 0
        while self._dirty or self._analysis_dirty:
            todo = {self.uf.find(i) for i in self._dirty}
            self._dirty.clear()
            for eclass_id in todo:
                n_repairs += self._repair(eclass_id)

            analysis_todo = {self.uf.find(i) for i in self._analysis_dirty}
            self._analysis_dirty.clear()
            for eclass_id in analysis_todo:
                self._repair_analysis(eclass_id)
        return n_repairs

    def _repair(self, eclass_id: int) -> int:
        """Re-canonicalise the parents of one e-class, merging congruent ones."""

        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return 0

        repairs = 0
        old_parents = eclass.parents
        eclass.parents = []
        seen: Dict[ENode, int] = {}
        for parent_node, parent_class in old_parents:
            # drop the stale hashcons entry before re-canonicalising
            self.hashcons.pop(parent_node, None)
            canon = parent_node.canonicalize(self.uf)
            parent_class = self.uf.find(parent_class)
            existing = seen.get(canon)
            if existing is not None:
                if not self.uf.same(existing, parent_class):
                    self.merge(existing, parent_class)
                    repairs += 1
                parent_class = self.uf.find(parent_class)
            else:
                prior = self.hashcons.get(canon)
                if prior is not None and not self.uf.same(prior, parent_class):
                    self.merge(prior, parent_class)
                    repairs += 1
                    parent_class = self.uf.find(parent_class)
            self.hashcons[canon] = self.uf.find(parent_class)
            seen[canon] = self.uf.find(parent_class)
            eclass.parents.append((canon, self.uf.find(parent_class)))
            # keep the parent's own node set canonical too, otherwise the
            # stale spelling lingers there while the hashcons moves on
            if canon != parent_node:
                owner = self.classes.get(self.uf.find(parent_class))
                if owner is not None:
                    owner.nodes.discard(parent_node)
                    owner.nodes.add(canon)

        # canonicalise the nodes stored in the class itself
        eclass = self.classes.get(self.uf.find(eclass_id))
        if eclass is not None:
            eclass.nodes = {node.canonicalize(self.uf) for node in eclass.nodes}
            for node in eclass.nodes:
                self.hashcons[node] = eclass.id
        return repairs

    def _repair_analysis(self, eclass_id: int) -> None:
        """Propagate changed analysis data to parents."""

        if self.analysis is None:
            return
        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return
        self.analysis.modify(self, eclass_id)
        for parent_node, parent_class in list(eclass.parents):
            parent_class = self.uf.find(parent_class)
            parent = self.classes.get(parent_class)
            if parent is None:
                continue
            new_data = self.analysis.make(self, parent_node.canonicalize(self.uf))
            joined = self.analysis.join(parent.data, new_data)
            if joined != parent.data:
                parent.data = joined
                self._analysis_dirty.append(parent_class)

    # ------------------------------------------------------------------
    # Queries used by e-matching and extraction
    # ------------------------------------------------------------------

    def canonical_nodes(self) -> Iterator[Tuple[int, ENode]]:
        """Yield ``(eclass_id, enode)`` for every canonical e-node."""

        for eclass in self.classes.values():
            for node in eclass.nodes:
                yield eclass.id, node

    def lookup_term(self, term: Term) -> Optional[int]:
        """Return the e-class containing *term*, or None if absent.

        Unlike :meth:`add_term` this never grows the graph.
        """

        child_ids: List[int] = []
        for child in term.children:
            cid = self.lookup_term(child)
            if cid is None:
                return None
            child_ids.append(cid)
        enode = ENode(term.op, tuple(child_ids), term.payload).canonicalize(self.uf)
        found = self.hashcons.get(enode)
        return None if found is None else self.uf.find(found)

    def equivalent_terms(self, a: Term, b: Term) -> bool:
        """True if both terms are present and live in the same e-class."""

        ia, ib = self.lookup_term(a), self.lookup_term(b)
        return ia is not None and ib is not None and self.uf.same(ia, ib)

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the hashcons/congruence invariants; raises AssertionError."""

        for enode, eclass_id in self.hashcons.items():
            canon = enode.canonicalize(self.uf)
            assert canon == enode, f"hashcons key not canonical: {enode}"
            root = self.uf.find(eclass_id)
            assert root in self.classes, f"hashcons maps to dead class {eclass_id}"
            assert enode in self.classes[root].nodes, (
                f"hashcons entry {enode} missing from class {root}"
            )
        seen: Dict[ENode, int] = {}
        for eclass in self.classes.values():
            assert self.uf.find(eclass.id) == eclass.id, "non-canonical class id"
            for node in eclass.nodes:
                canon = node.canonicalize(self.uf)
                assert canon in self.hashcons, f"node {node} missing from hashcons"
                prior = seen.get(canon)
                assert prior is None or prior == eclass.id, (
                    f"congruence violation: {canon} in classes {prior} and {eclass.id}"
                )
                seen[canon] = eclass.id

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def copy(self) -> "EGraph":
        """A structural copy sharing no mutable state with the original."""

        dup = EGraph(self.analysis)
        dup.uf = self.uf.copy()
        dup.hashcons = dict(self.hashcons)
        dup.classes = {
            cid: EClass(cls.id, set(cls.nodes), list(cls.parents), cls.data)
            for cid, cls in self.classes.items()
        }
        dup._dirty = list(self._dirty)
        dup._analysis_dirty = list(self._analysis_dirty)
        dup.version = self.version
        return dup

    def dump(self) -> str:  # pragma: no cover - debugging helper
        lines = []
        for eclass in sorted(self.classes.values(), key=lambda c: c.id):
            nodes = ", ".join(sorted(str(n) for n in eclass.nodes))
            lines.append(f"e{eclass.id}: {{{nodes}}}")
        return "\n".join(lines)
