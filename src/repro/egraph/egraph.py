"""The e-graph data structure with congruence closure.

The implementation follows the ``egg`` design (Willsey et al., POPL 2021)
that the paper builds on:

* e-nodes are hash-consed: an :class:`ENode` whose children are canonical
  e-class ids appears at most once in the graph,
* :meth:`EGraph.merge` only records the union; congruence closure is
  restored lazily by :meth:`EGraph.rebuild` (deferred rebuilding), which is
  what makes batch rule application cheap,
* e-class analyses (:mod:`repro.egraph.analysis`) propagate per-class facts
  such as constant values, enabling constant folding during saturation.

On top of the classic structure the e-graph maintains the bookkeeping that
the op-indexed, incremental e-matcher (:mod:`repro.egraph.pattern`) relies
on:

* an **op-index** — for every operator, the set of e-class ids whose class
  contains an e-node with that operator.  Entries are canonicalised lazily
  (a stale id simply ``find``s to the surviving root), so ``merge`` never
  has to rewrite the index; :meth:`classes_with_op` compacts on read.
* a per-class **by-op grouping** of the node set (cached, invalidated by a
  per-class ``version`` stamp) so a sub-pattern with operator ``*`` only
  looks at the ``*`` nodes of a candidate class,
* a per-class **touched** stamp — the :attr:`version` at which the class
  (or anything match-relevant below it) last changed.  :meth:`rebuild`
  propagates touches upward through the parent lists, which is what makes
  it sound for a rewrite to skip classes untouched since its previous scan,
* a cached canonical-node count so ``len(egraph)`` is O(1) (it is called
  inside the runner's per-rule apply loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.egraph.language import Payload, Term
from repro.egraph.unionfind import UnionFind

__all__ = ["ENode", "EClass", "EGraph"]

_EMPTY: Tuple = ()


def _node_sort_key(node: ENode) -> Tuple:
    """Process-stable total order for e-nodes sharing an operator."""

    return (node.children, str(node.payload), type(node.payload).__name__)


@dataclass(frozen=True, eq=False)
class ENode:
    """An operator applied to e-class ids (not to terms).

    Like :class:`~repro.egraph.language.Term`, equality is payload-type
    aware so integer and floating-point literals never share an e-class
    (C assigns them different division/modulo semantics).
    """

    op: str
    children: Tuple[int, ...] = ()
    payload: Payload = None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ENode):
            return NotImplemented
        return (
            self.op == other.op
            and self.payload == other.payload
            and type(self.payload) is type(other.payload)
            and self.children == other.children
        )

    def __hash__(self) -> int:
        # e-nodes are hashed constantly (hashcons lookups, per-class node
        # sets); memoise the hash on first use.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.op, self.payload, type(self.payload), self.children))
            object.__setattr__(self, "_hash", h)
        return h

    def canonicalize(self, uf: UnionFind) -> "ENode":
        """Return this e-node with every child id replaced by its root."""

        children = self.children
        if not children:
            return self
        # inlined UnionFind.is_root (see its docstring for the contract):
        # this avoids a method call per child on the hottest path
        parent = uf._parent
        for c in children:
            if parent[c] != c:
                find = uf.find
                return ENode(self.op, tuple([find(c) for c in children]), self.payload)
        return self

    def map_children(self, fn) -> "ENode":
        return ENode(self.op, tuple(fn(c) for c in self.children), self.payload)

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        label = self.op if self.payload is None else f"{self.op}:{self.payload}"
        if not self.children:
            return label
        return f"({label} {' '.join(str(c) for c in self.children)})"


@dataclass
class EClass:
    """A set of equal e-nodes plus bookkeeping for congruence closure."""

    id: int
    nodes: Set[ENode] = field(default_factory=set)
    #: (parent e-node, e-class id the parent lives in) pairs; used to find
    #: congruent parents after a merge.
    parents: List[Tuple[ENode, int]] = field(default_factory=list)
    #: Analysis data attached to this class (semantics defined by the
    #: :class:`~repro.egraph.analysis.Analysis` instance in use).
    data: object = None
    #: :attr:`EGraph.version` at which the node set of this class last
    #: changed (invalidates the cached by-op grouping).
    version: int = 0
    #: :attr:`EGraph.version` at which this class — or a descendant class a
    #: match rooted here could reach — last changed.  Maintained by
    #: :meth:`EGraph.rebuild` via upward touch propagation; the incremental
    #: searcher skips classes with ``touched <= last_scan_version``.
    touched: int = 0
    #: Cached ``op -> [nodes]`` grouping of :attr:`nodes` (lazily built).
    _by_op: Optional[Dict[str, List[ENode]]] = field(
        default=None, repr=False, compare=False
    )
    _by_op_version: int = field(default=-1, repr=False, compare=False)


class EGraph:
    """A congruence-closed e-graph."""

    def __init__(self, analysis: Optional["object"] = None) -> None:
        self.uf = UnionFind()
        self.classes: Dict[int, EClass] = {}
        self.hashcons: Dict[ENode, int] = {}
        #: e-class ids whose parents must be re-canonicalised on rebuild.
        self._dirty: List[int] = []
        #: e-class ids whose analysis data changed and must be re-propagated.
        self._analysis_dirty: List[int] = []
        self.analysis = analysis
        #: Running counter of adds/merges (useful for saturation detection
        #: and the basis of the incremental-search stamps).
        self.version = 0
        #: op -> set of e-class ids whose class contains that operator.  May
        #: hold stale (merged-away) ids; they canonicalise to the surviving
        #: root and are compacted on read.  Classes never *lose* an
        #: operator, so after canonicalisation the set is exact.
        self._op_classes: Dict[str, Set[int]] = {}
        #: Cached number of e-nodes (sum of class node-set sizes), kept in
        #: sync by ``add``/``merge``/``_repair`` so ``len`` is O(1).
        self._node_count = 0
        #: Classes mutated since the last touch propagation (see
        #: :meth:`_propagate_touches`).
        self._touched: List[int] = []
        #: Stale hashcons keys can only appear after a union; lets
        #: :meth:`_sweep_stale_keys` skip its scan on merge-free rebuilds.
        self._merged_since_sweep = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of (canonical) e-nodes in the graph — O(1)."""

        return self._node_count

    @property
    def num_classes(self) -> int:
        """Number of live e-classes."""

        return len(self.classes)

    def find(self, eclass_id: int) -> int:
        """Canonical id of *eclass_id*."""

        return self.uf.find(eclass_id)

    def eclasses(self) -> Iterator[EClass]:
        """Iterate over the live (canonical) e-classes."""

        return iter(self.classes.values())

    def nodes_of(self, eclass_id: int) -> Set[ENode]:
        """The e-nodes contained in the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].nodes

    def data_of(self, eclass_id: int) -> object:
        """Analysis data of the class of *eclass_id*."""

        return self.classes[self.find(eclass_id)].data

    def is_equal(self, a: int, b: int) -> bool:
        """True if the two e-class ids denote the same class."""

        return self.uf.same(a, b)

    # ------------------------------------------------------------------
    # Op-indexed queries (the e-matcher's entry points)
    # ------------------------------------------------------------------

    def classes_with_op(self, op: str) -> Set[int]:
        """Canonical ids of every live class containing an *op* e-node.

        Compacts the index entry in place (stale ids from merged-away
        classes are replaced by their roots), so repeated queries stay
        cheap even across heavy merging.
        """

        ids = self._op_classes.get(op)
        if not ids:
            return set()
        # steady-state fast path: already fully canonical -> no rebuild
        # (inlined UnionFind.is_root, see its docstring for the contract)
        parent = self.uf._parent
        if all(parent[i] == i for i in ids):
            return set(ids)
        find = self.uf.find
        canon = {find(i) for i in ids}
        self._op_classes[op] = canon
        # return a copy: handing out the live index would let callers
        # mutate it (or trip over adds while iterating)
        return set(canon)

    def nodes_by_op(self, eclass_id: int, op: str) -> Sequence[ENode]:
        """The e-nodes with operator *op* in the class of *eclass_id*.

        Backed by a per-class grouping cache invalidated whenever the
        class's node set changes; this is what lets a compiled sub-pattern
        with operator ``*`` skip every non-``*`` node of a candidate class.
        """

        # callers overwhelmingly pass canonical ids (the matcher always
        # does); the classes dict only holds canonical roots, so a hit
        # skips the union-find walk entirely
        cls = self.classes.get(eclass_id)
        if cls is None:
            cls = self.classes[self.uf.find(eclass_id)]
        if cls._by_op_version != cls.version:
            group: Dict[str, List[ENode]] = {}
            for node in cls.nodes:
                bucket = group.get(node.op)
                if bucket is None:
                    group[node.op] = [node]
                else:
                    bucket.append(node)
            # deterministic bucket order: node sets hash strings, so raw
            # set iteration varies with PYTHONHASHSEED — and bucket order
            # is match-application order, which decides *which* e-nodes
            # exist when a node-limit stop truncates saturation.  Sorting
            # here makes saturation outcomes reproducible across
            # processes, which the content-addressed artifact cache
            # relies on (same source+config => same artifact).
            for bucket in group.values():
                if len(bucket) > 1:
                    bucket.sort(key=_node_sort_key)
            cls._by_op = group
            cls._by_op_version = cls.version
        return cls._by_op.get(op, _EMPTY)

    # ------------------------------------------------------------------
    # Adding
    # ------------------------------------------------------------------

    def add(self, enode: ENode) -> int:
        """Add an e-node, returning the id of its e-class (hash-consed)."""

        enode = enode.canonicalize(self.uf)
        existing = self.hashcons.get(enode)
        if existing is not None:
            return self.uf.find(existing)

        self.version += 1
        eclass_id = self.uf.make_set()
        eclass = EClass(eclass_id, {enode}, [])
        eclass.version = eclass.touched = self.version
        self.classes[eclass_id] = eclass
        self.hashcons[enode] = eclass_id
        self._node_count += 1
        ops = self._op_classes.get(enode.op)
        if ops is None:
            self._op_classes[enode.op] = {eclass_id}
        else:
            ops.add(eclass_id)
        self._touched.append(eclass_id)
        # children are canonical here (the e-node was just canonicalised)
        for child in enode.children:
            self.classes[child].parents.append((enode, eclass_id))

        if self.analysis is not None:
            eclass.data = self.analysis.make(self, enode)
            self.analysis.modify(self, eclass_id)
        return eclass_id

    def add_term(self, term: Term) -> int:
        """Recursively add a whole term; returns the e-class of its root."""

        child_ids = tuple(self.add_term(child) for child in term.children)
        return self.add(ENode(term.op, child_ids, term.payload))

    def add_leaf(self, op: str, payload: Payload = None) -> int:
        """Add a leaf e-node (``num``/``sym``-style)."""

        return self.add(ENode(op, (), payload))

    # ------------------------------------------------------------------
    # Merging and rebuilding
    # ------------------------------------------------------------------

    def merge(self, a: int, b: int) -> int:
        """Assert that the classes of *a* and *b* are equal.

        The union is recorded immediately; congruence closure and hashcons
        canonicalisation are deferred to :meth:`rebuild`.
        """

        ra, rb = self.uf.find(a), self.uf.find(b)
        if ra == rb:
            return ra

        self.version += 1
        root = self.uf.union(ra, rb)
        other = rb if root == ra else ra
        winner, loser = self.classes[root], self.classes[other]

        before = len(winner.nodes) + len(loser.nodes)
        winner.nodes |= loser.nodes
        self._node_count += len(winner.nodes) - before
        winner.parents.extend(loser.parents)
        winner.version = winner.touched = self.version
        self._touched.append(root)
        self._merged_since_sweep = True
        # No op-index update needed: the loser's index entries find() to the
        # surviving root and are compacted on the next classes_with_op read.

        if self.analysis is not None:
            winner.data = self.analysis.join(winner.data, loser.data)
            self._analysis_dirty.append(root)

        del self.classes[other]
        self._dirty.append(root)
        return root

    def union_terms(self, a: Term, b: Term) -> int:
        """Add both terms and merge their classes (convenience for tests)."""

        ia, ib = self.add_term(a), self.add_term(b)
        root = self.merge(ia, ib)
        self.rebuild()
        return root

    def rebuild(self) -> int:
        """Restore the hashcons and congruence invariants.

        Returns the number of follow-up merges performed (congruent parents
        discovered while re-canonicalising).  Also propagates the *touched*
        stamps of every mutated class upward through the parent lists so
        the incremental searcher sees new matches rooted at unchanged
        ancestors of changed classes.
        """

        n_repairs = 0
        while True:
            while self._dirty or self._analysis_dirty:
                todo = {self.uf.find(i) for i in self._dirty}
                self._dirty.clear()
                for eclass_id in todo:
                    n_repairs += self._repair(eclass_id)

                analysis_todo = {self.uf.find(i) for i in self._analysis_dirty}
                self._analysis_dirty.clear()
                for eclass_id in analysis_todo:
                    self._repair_analysis(eclass_id)

            # Parents-driven repair restores *most* of the hashcons, but a
            # node spelling re-keyed by one class's repair is invisible to a
            # later repair that recorded an older spelling of the same node
            # (its pop misses), which strands the newer spelling as a stale
            # key — and, if its value disagrees with the canonical entry, a
            # missed congruent merge.  The closing sweep drops stale keys
            # and loops again when it uncovers such a merge.
            n_repairs += self._sweep_stale_keys()
            if not self._dirty and not self._analysis_dirty:
                break
        self._propagate_touches()
        return n_repairs

    def _sweep_stale_keys(self) -> int:
        """Drop non-canonical hashcons keys; merge any congruence they hid.

        Runs at each :meth:`rebuild` convergence.  The scan is cheap: a key
        is stale iff one of its child ids is not a union-find root, which
        is two array reads per child.
        """

        if not self._merged_since_sweep:
            return 0
        self._merged_since_sweep = False
        uf = self.uf
        is_root = uf.is_root
        stale: List[ENode] = []
        for key in self.hashcons:
            for child in key.children:
                if not is_root(child):
                    stale.append(key)
                    break
        if not stale:
            return 0
        find = uf.find
        merges = 0
        for key in stale:
            value = self.hashcons.pop(key)
            canon = key.canonicalize(uf)
            prior = self.hashcons.get(canon)
            if prior is None:
                self.hashcons[canon] = find(value)
            elif find(prior) != find(value):
                self.merge(prior, value)
                merges += 1
        return merges

    def _propagate_touches(self) -> None:
        """Stamp every ancestor of a mutated class as touched.

        A match rooted at class ``C`` depends on the node sets of every
        class reachable through the children of ``C``'s nodes.  Walking the
        parent lists from each mutated class therefore marks exactly the
        classes whose match sets may have changed (egg instead falls back
        to a full rescan; the upward walk is cheap because the visited set
        caps it at one pass over the ancestor cone).
        """

        if not self._touched:
            return
        find = self.uf.find
        classes = self.classes
        stamp = self.version
        queue = [find(i) for i in self._touched]
        self._touched.clear()
        seen: Set[int] = set()
        while queue:
            cid = queue.pop()
            if cid in seen:
                continue
            seen.add(cid)
            cls = classes.get(cid)
            if cls is None:
                continue
            if cls.touched < stamp:
                cls.touched = stamp
            for _, parent_class in cls.parents:
                pid = find(parent_class)
                if pid not in seen:
                    queue.append(pid)

    def _repair(self, eclass_id: int) -> int:
        """Re-canonicalise the parents of one e-class, merging congruent ones.

        Deduplicates the parent list as it goes: merges concatenate parent
        lists, so the same ``(e-node, class)`` pair can accumulate many
        times across a saturation run.
        """

        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return 0

        repairs = 0
        old_parents = eclass.parents
        eclass.parents = []
        new_parents = eclass.parents
        hashcons = self.hashcons
        uf = self.uf
        find = uf.find
        classes = self.classes
        seen: Dict[ENode, int] = {}
        for parent_node, parent_class in old_parents:
            # drop the stale hashcons entry before re-canonicalising
            hashcons.pop(parent_node, None)
            canon = parent_node.canonicalize(uf)
            parent_class = find(parent_class)
            existing = seen.get(canon)
            is_duplicate = existing is not None
            if is_duplicate:
                if find(existing) != parent_class:
                    self.merge(existing, parent_class)
                    repairs += 1
                parent_class = find(parent_class)
            else:
                prior = hashcons.get(canon)
                if prior is not None and find(prior) != parent_class:
                    self.merge(prior, parent_class)
                    repairs += 1
                    parent_class = find(parent_class)
            canon_class = find(parent_class)
            hashcons[canon] = canon_class
            seen[canon] = canon_class
            if not is_duplicate:
                new_parents.append((canon, canon_class))
            # keep the parent's own node set canonical too, otherwise the
            # stale spelling lingers there while the hashcons moves on
            if canon is not parent_node:
                owner = classes.get(canon_class)
                if owner is not None:
                    n0 = len(owner.nodes)
                    owner.nodes.discard(parent_node)
                    owner.nodes.add(canon)
                    self._node_count += len(owner.nodes) - n0
                    owner.version = owner.touched = self.version
                    self._touched.append(owner.id)

        # canonicalise the nodes stored in the class itself
        eclass = self.classes.get(find(eclass_id))
        if eclass is not None:
            new_nodes = {node.canonicalize(uf) for node in eclass.nodes}
            self._node_count += len(new_nodes) - len(eclass.nodes)
            eclass.nodes = new_nodes
            eclass.version = eclass.touched = self.version
            self._touched.append(eclass.id)
            # snapshot: a congruent merge below can grow this very set
            for node in list(new_nodes):
                # congruence check before re-keying: a re-spelled member
                # node may coincide with a node of a *different* class —
                # blindly overwriting its entry would leave the two
                # classes unmerged
                prior = hashcons.get(node)
                if prior is not None and find(prior) != find(eclass.id):
                    self.merge(prior, eclass.id)
                    repairs += 1
                hashcons[node] = find(eclass.id)
        return repairs

    def _repair_analysis(self, eclass_id: int) -> None:
        """Propagate changed analysis data to parents."""

        if self.analysis is None:
            return
        eclass_id = self.uf.find(eclass_id)
        eclass = self.classes.get(eclass_id)
        if eclass is None:
            return
        self.analysis.modify(self, eclass_id)
        for parent_node, parent_class in list(eclass.parents):
            parent_class = self.uf.find(parent_class)
            parent = self.classes.get(parent_class)
            if parent is None:
                continue
            new_data = self.analysis.make(self, parent_node.canonicalize(self.uf))
            joined = self.analysis.join(parent.data, new_data)
            if joined != parent.data:
                parent.data = joined
                self._analysis_dirty.append(parent_class)
                # a data change can flip rewrite guards — make sure the
                # incremental searcher revisits this class
                parent.touched = self.version
                self._touched.append(parent_class)

    # ------------------------------------------------------------------
    # Queries used by e-matching and extraction
    # ------------------------------------------------------------------

    def canonical_nodes(self) -> Iterator[Tuple[int, ENode]]:
        """Yield ``(eclass_id, enode)`` for every canonical e-node."""

        for eclass in self.classes.values():
            for node in eclass.nodes:
                yield eclass.id, node

    def lookup_term(self, term: Term) -> Optional[int]:
        """Return the e-class containing *term*, or None if absent.

        Unlike :meth:`add_term` this never grows the graph.
        """

        child_ids: List[int] = []
        for child in term.children:
            cid = self.lookup_term(child)
            if cid is None:
                return None
            child_ids.append(cid)
        enode = ENode(term.op, tuple(child_ids), term.payload).canonicalize(self.uf)
        found = self.hashcons.get(enode)
        return None if found is None else self.uf.find(found)

    def equivalent_terms(self, a: Term, b: Term) -> bool:
        """True if both terms are present and live in the same e-class."""

        ia, ib = self.lookup_term(a), self.lookup_term(b)
        return ia is not None and ib is not None and self.uf.same(ia, ib)

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the hashcons/congruence invariants; raises AssertionError."""

        for enode, eclass_id in self.hashcons.items():
            canon = enode.canonicalize(self.uf)
            assert canon == enode, f"hashcons key not canonical: {enode}"
            root = self.uf.find(eclass_id)
            assert root in self.classes, f"hashcons maps to dead class {eclass_id}"
            assert enode in self.classes[root].nodes, (
                f"hashcons entry {enode} missing from class {root}"
            )
        seen: Dict[ENode, int] = {}
        for eclass in self.classes.values():
            assert self.uf.find(eclass.id) == eclass.id, "non-canonical class id"
            for node in eclass.nodes:
                canon = node.canonicalize(self.uf)
                assert canon in self.hashcons, f"node {node} missing from hashcons"
                prior = seen.get(canon)
                assert prior is None or prior == eclass.id, (
                    f"congruence violation: {canon} in classes {prior} and {eclass.id}"
                )
                seen[canon] = eclass.id

        # cached node count matches the ground truth
        actual = sum(len(cls.nodes) for cls in self.classes.values())
        assert self._node_count == actual, (
            f"cached node count {self._node_count} != actual {actual}"
        )
        # op-index covers every (op, class) pair (it may hold extra stale
        # ids, but after canonicalisation every live op-bearing class must
        # be present)
        for eclass in self.classes.values():
            for node in eclass.nodes:
                members = self.classes_with_op(node.op)
                assert eclass.id in members, (
                    f"op-index missing class {eclass.id} for op {node.op!r}"
                )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def copy(self) -> "EGraph":
        """A structural copy sharing no mutable state with the original."""

        dup = EGraph(self.analysis)
        dup.uf = self.uf.copy()
        dup.hashcons = dict(self.hashcons)
        dup.classes = {}
        for cid, cls in self.classes.items():
            new = EClass(cls.id, set(cls.nodes), list(cls.parents), cls.data)
            new.version = cls.version
            new.touched = cls.touched
            dup.classes[cid] = new
        dup._dirty = list(self._dirty)
        dup._analysis_dirty = list(self._analysis_dirty)
        dup.version = self.version
        dup._op_classes = {op: set(ids) for op, ids in self._op_classes.items()}
        dup._node_count = self._node_count
        dup._touched = list(self._touched)
        dup._merged_since_sweep = self._merged_since_sweep
        return dup

    def dump(self) -> str:  # pragma: no cover - debugging helper
        lines = []
        for eclass in sorted(self.classes.values(), key=lambda c: c.id):
            nodes = ", ".join(sorted(str(n) for n in eclass.nodes))
            lines.append(f"e{eclass.id}: {{{nodes}}}")
        return "\n".join(lines)
