"""Code generation from extracted e-graph solutions (paper §VI).

Two cooperating pieces:

* :mod:`repro.codegen.tempvars` — renders selected e-classes back into C
  expressions and allocates the ``_vN`` temporary variables that carry the
  value of every selected e-node (§VI-A, temporary-variable insertion).
* :mod:`repro.codegen.bulkload` — schedules the temporaries inside each
  straight-line group, either lazily (immediately before first use) or with
  the *bulk load* policy that hoists every memory load to the first point
  where its dependencies are resolved, sorted by static index (§VI-B).
* :mod:`repro.codegen.generator` — drives both over a kernel's SSA form and
  rewrites the AST in place, preserving directives and loop structure.
"""

from repro.codegen.generator import CodeGenerator, GeneratedKernel, KernelCodeStats
from repro.codegen.tempvars import ClassRenderer, TempAllocator
from repro.codegen.bulkload import ScheduleItem, schedule_group

__all__ = [
    "ClassRenderer",
    "CodeGenerator",
    "GeneratedKernel",
    "KernelCodeStats",
    "ScheduleItem",
    "TempAllocator",
    "schedule_group",
]
