"""Rendering of selected e-classes into C expressions and temp variables.

Every selected e-node that performs real work (a load, an arithmetic
operation, a call ...) is assigned a temporary variable ``_vN`` holding its
value (paper §VI-A, cf. Listing 3 of the paper).  Leaves (constants,
symbols), φ nodes (whose value is simply the variable they merge), stores
(performed by the original statements) and e-classes only used as array
indices are rendered inline instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.egraph.egraph import EGraph, ENode

__all__ = ["TempAllocator", "ClassRenderer", "TEMP_OPS"]


#: Operators whose e-classes are materialised into temporaries.
TEMP_OPS = frozenset(
    {"load", "+", "-", "*", "/", "%", "neg", "fma", "call", "ternary",
     "min", "max", "<<", ">>", "&", "|", "^"}
)

#: Operators always rendered inline (no temp, no work of their own).
INLINE_OPS = frozenset(
    {"num", "sym", "phi", "phi-loop", "store", "cast", "member", "addr",
     "<", ">", "<=", ">=", "==", "!=", "&&", "||", "!", "~"}
)


class TempAllocator:
    """Hands out ``_vN`` names, one per e-class.

    ``first_index`` lets the code generator keep numbering globally unique
    across groups even though each straight-line group gets its own
    allocator (temporaries are scoped to the group's block).
    """

    def __init__(self, prefix: str = "_v", first_index: int = 0) -> None:
        self.prefix = prefix
        self._names: Dict[int, str] = {}
        self._counter = first_index
        self._first_index = first_index

    def name_for(self, eclass_id: int) -> str:
        name = self._names.get(eclass_id)
        if name is None:
            name = f"{self.prefix}{self._counter}"
            self._counter += 1
            self._names[eclass_id] = name
        return name

    def known(self, eclass_id: int) -> Optional[str]:
        return self._names.get(eclass_id)

    @property
    def next_index(self) -> int:
        """The index the next allocated temporary would get."""

        return self._counter

    def __len__(self) -> int:
        return self._counter - self._first_index


def _strip_ssa_suffix(name: str) -> str:
    """``tmp@loop1`` / ``b@phi3`` → the runtime variable name (``tmp`` / ``b``)."""

    return name.split("@", 1)[0]


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    text = repr(float(value))
    return text


@dataclass
class ClassRenderer:
    """Render e-classes of an extraction result into C expression text."""

    egraph: EGraph
    choices: Dict[int, ENode]
    temps: TempAllocator
    #: E-classes that currently have a live temporary (already emitted in the
    #: group being generated); rendered as their temp name.
    available_temps: Set[int] = field(default_factory=set)
    #: E-classes that must never be rendered through a temp (index contexts).
    inline_only: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------

    def node_of(self, eclass_id: int) -> ENode:
        return self.choices[self.egraph.find(eclass_id)]

    def is_temp_class(self, eclass_id: int) -> bool:
        """True if this class is materialised as a temporary variable."""

        eclass_id = self.egraph.find(eclass_id)
        if eclass_id in self.inline_only:
            return False
        node = self.choices.get(eclass_id)
        if node is None:
            return False
        return node.op in TEMP_OPS

    # ------------------------------------------------------------------

    def render(self, eclass_id: int) -> str:
        """Render the value of an e-class as a C expression.

        Classes whose temp has already been emitted render as the temp name;
        everything else renders structurally (inline).
        """

        eclass_id = self.egraph.find(eclass_id)
        if eclass_id in self.available_temps:
            return self.temps.name_for(eclass_id)
        return self.render_definition(eclass_id)

    def render_definition(self, eclass_id: int) -> str:
        """Render the defining expression of an e-class (one node deep,
        children rendered through :meth:`render`)."""

        eclass_id = self.egraph.find(eclass_id)
        node = self.choices.get(eclass_id)
        if node is None:
            raise KeyError(f"e-class {eclass_id} has no selected node")
        return self._render_node(node)

    # ------------------------------------------------------------------

    def _render_node(self, node: ENode) -> str:
        op = node.op
        if op == "num":
            return _format_number(node.payload)
        if op == "sym":
            return _strip_ssa_suffix(str(node.payload))
        if op in ("phi", "phi-loop"):
            return _strip_ssa_suffix(str(node.payload))
        if op == "load":
            template = str(node.payload)
            index_text = [self.render(c) for c in node.children[1:]]
            return template.format(*index_text)
        if op == "store":
            # value of a store is the stored value (used only when a load
            # forwards from a store of the same location)
            return self.render(node.children[-1])
        if op == "neg":
            return f"(- {self.render(node.children[0])})"
        if op == "fma":
            a, b, c = (self.render(child) for child in node.children)
            return f"({a} + {b} * {c})"
        if op == "call":
            args = ", ".join(self.render(c) for c in node.children)
            return f"{node.payload}({args})"
        if op == "cast":
            return f"(({node.payload})({self.render(node.children[0])}))"
        if op == "ternary":
            cond, then, other = (self.render(c) for c in node.children)
            return f"({cond} ? {then} : {other})"
        if op == "member":
            return f"{self.render(node.children[0])}.{node.payload}"
        if op == "addr":
            return f"(&{self.render(node.children[0])})"
        if op in ("min", "max"):
            a, b = (self.render(c) for c in node.children)
            return f"(({a}) {'<' if op == 'min' else '>'} ({b}) ? ({a}) : ({b}))"
        if op in ("!", "~"):
            return f"({op}{self.render(node.children[0])})"
        if len(node.children) == 2:
            lhs, rhs = (self.render(c) for c in node.children)
            return f"({lhs} {op} {rhs})"
        raise ValueError(f"cannot render e-node {node}")

    # ------------------------------------------------------------------

    def mark_index_classes(self, root: int) -> None:
        """Mark classes used in array-index position as inline-only.

        Index expressions must stay integer-typed, so they never go through
        the ``double`` temporaries; this walks the selected DAG under *root*
        and collects every class reachable through an index operand of a
        ``load`` or ``store``.
        """

        seen: Set[int] = set()

        def mark_subtree(cid: int) -> None:
            cid = self.egraph.find(cid)
            if cid in self.inline_only:
                return
            self.inline_only.add(cid)
            node = self.choices.get(cid)
            if node is None:
                return
            children = node.children
            if node.op == "load":
                children = node.children[1:]
            elif node.op == "store":
                children = node.children[1:]
            for child in children:
                mark_subtree(child)

        def visit(cid: int) -> None:
            cid = self.egraph.find(cid)
            if cid in seen:
                return
            seen.add(cid)
            node = self.choices.get(cid)
            if node is None:
                return
            if node.op in ("phi", "phi-loop"):
                # φ values render as a variable name; their operands are not
                # rendered as part of this expression
                return
            if node.op in ("load", "store"):
                index_children = node.children[1:-1] if node.op == "store" else node.children[1:]
                for child in index_children:
                    mark_subtree(child)
                if node.op == "store":
                    visit(node.children[-1])
                # the version operand (children[0]) carries no generated code
                return
            for child in node.children:
                visit(child)

        visit(root)
