"""Scheduling of temporaries inside a straight-line group.

Two policies (paper §VI):

* **lazy** — every temporary is emitted immediately before the first
  statement that needs it (temporary-variable insertion only),
* **bulk load** — every memory load is relocated to the first point where
  its dependencies are resolved: loads that only read values live at group
  entry are hoisted to the very top of the group; loads that forward from a
  store performed inside the group are placed immediately after that store.
  Loads emitted at the same point are sorted by their static index (their
  rendered access expression), which is the paper's tie-break for memory
  coalescing.

The scheduler works on e-classes and statement positions only; the actual
AST surgery happens in :mod:`repro.codegen.generator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.codegen.tempvars import ClassRenderer
from repro.egraph.egraph import EGraph

__all__ = ["ScheduleItem", "schedule_group"]


@dataclass(frozen=True)
class ScheduleItem:
    """One entry of a group schedule."""

    #: Either ``"temp"`` (emit the temporary of ``eclass``) or ``"stmt"``
    #: (emit the group's original statement number ``position``).
    kind: str
    eclass: Optional[int] = None
    position: Optional[int] = None


def schedule_group(
    renderer: ClassRenderer,
    root_classes: Sequence[int],
    store_stmt_of: Dict[int, int],
    bulk_load: bool,
) -> List[ScheduleItem]:
    """Compute the emission schedule of one straight-line group.

    ``root_classes[i]`` is the e-class of the i-th assignment's right-hand
    side.  ``store_stmt_of`` maps the e-class of every ``store`` performed
    *inside this group* to the position of the statement that performs it.
    """

    egraph = renderer.egraph
    emitted: Set[int] = set()
    schedule: List[ScheduleItem] = []

    # ------------------------------------------------------------------
    # dependency helpers
    # ------------------------------------------------------------------

    def temp_children(eclass_id: int) -> List[int]:
        """Temp classes this class's rendering depends on (transitively
        through inline-rendered nodes)."""

        result: List[int] = []
        seen: Set[int] = set()

        def visit(cid: int, is_root: bool) -> None:
            cid = egraph.find(cid)
            if cid in seen:
                return
            seen.add(cid)
            if not is_root and renderer.is_temp_class(cid):
                result.append(cid)
                return
            node = renderer.choices.get(cid)
            if node is None:
                return
            children = node.children
            if node.op in ("load", "store"):
                children = node.children[1:]
            elif node.op in ("phi", "phi-loop"):
                # φ values render as the merged variable; their operands are
                # not part of this group's generated code
                children = ()
            for child in children:
                visit(child, False)

        visit(eclass_id, True)
        return result

    def load_stmt_dep(eclass_id: int) -> int:
        """Earliest statement position after which this load may execute.

        Returns -1 when the load only reads state live at group entry.
        """

        node = renderer.choices.get(egraph.find(eclass_id))
        if node is None or node.op != "load":
            return -1
        version = egraph.find(node.children[0])
        return store_stmt_of.get(version, -1)

    def emit_temp(eclass_id: int, after_position: int) -> None:
        """Emit the temp of *eclass_id* (and its temp dependencies first)."""

        eclass_id = egraph.find(eclass_id)
        if eclass_id in emitted or not renderer.is_temp_class(eclass_id):
            return
        node = renderer.choices.get(eclass_id)
        if node is not None and node.op == "load" and load_stmt_dep(eclass_id) > after_position:
            # This load forwards from a store that has not executed yet; it
            # cannot be hoisted here.  It will be emitted after its store.
            return
        for dep in temp_children(eclass_id):
            emit_temp(dep, after_position)
        if eclass_id in emitted:
            return
        emitted.add(eclass_id)
        renderer.available_temps.add(eclass_id)
        schedule.append(ScheduleItem("temp", eclass=eclass_id))

    # ------------------------------------------------------------------
    # bulk-load pools
    # ------------------------------------------------------------------

    load_pool: Dict[int, List[int]] = {}
    if bulk_load:
        all_loads: Set[int] = set()
        for root in root_classes:
            for cid in _reachable_temp_classes(renderer, root):
                node = renderer.choices.get(egraph.find(cid))
                if node is not None and node.op == "load":
                    all_loads.add(egraph.find(cid))
        for load in all_loads:
            load_pool.setdefault(load_stmt_dep(load), []).append(load)
        for loads in load_pool.values():
            loads.sort(key=lambda cid: renderer.render_definition(cid))

    def flush_loads(after_position: int) -> None:
        """Emit every pooled load whose dependencies are now resolved."""

        for dep_position in sorted(load_pool):
            if dep_position > after_position:
                break
            for load in load_pool[dep_position]:
                emit_temp(load, after_position)

    # ------------------------------------------------------------------
    # main walk over the group's statements
    # ------------------------------------------------------------------

    if bulk_load:
        flush_loads(-1)

    for position, root in enumerate(root_classes):
        root = egraph.find(root)
        # temporaries feeding this statement
        for dep in temp_children(root):
            emit_temp(dep, position - 1)
        emit_temp(root, position - 1)
        schedule.append(ScheduleItem("stmt", position=position))
        if bulk_load:
            flush_loads(position)

    return schedule


def _reachable_temp_classes(renderer: ClassRenderer, root: int) -> Set[int]:
    """All temp classes reachable from *root* through the selected DAG."""

    egraph = renderer.egraph
    seen: Set[int] = set()
    result: Set[int] = set()

    def visit(cid: int) -> None:
        cid = egraph.find(cid)
        if cid in seen:
            return
        seen.add(cid)
        if renderer.is_temp_class(cid):
            result.add(cid)
        node = renderer.choices.get(cid)
        if node is None:
            return
        children = node.children
        if node.op in ("load", "store"):
            children = node.children[1:]
        elif node.op in ("phi", "phi-loop"):
            children = ()
        for child in children:
            visit(child)

    visit(root)
    return result
