"""The code generator: rewrite kernel statements from an extracted e-graph.

For every straight-line group of the kernel's SSA form the generator

1. renders the selected e-classes of the group's assignments,
2. schedules temporaries (lazy or bulk-load policy, §VI),
3. splices ``double _vN = ...;`` declarations into the group's block, and
4. replaces each original assignment's right-hand side with a reference to
   its root temporary (or an inline expression for trivial right-hand
   sides), converting compound assignments to plain ``=``.

Loop structure, branches and every ``#pragma`` line are left untouched —
the structural guarantee that lets the output compile with NVHPC, GCC and
Clang alike in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.bulkload import ScheduleItem, schedule_group
from repro.codegen.tempvars import ClassRenderer, TempAllocator
from repro.egraph.egraph import EGraph, ENode
from repro.egraph.extract import ExtractionResult
from repro.egraph.language import Term
from repro.frontend import cast as C
from repro.frontend.parser import parse_expression
from repro.ssa.form import AssignmentInfo, KernelSSA, StraightLineGroup

__all__ = ["KernelCodeStats", "GeneratedKernel", "CodeGenerator"]


@dataclass
class KernelCodeStats:
    """Operation counts of a kernel body (per loop-body execution)."""

    loads: int = 0
    stores: int = 0
    flops: int = 0
    fmas: int = 0
    divs: int = 0
    calls: int = 0
    temporaries: int = 0
    int_ops: int = 0

    @property
    def instructions(self) -> int:
        """Total dynamic instruction estimate (one per counted operation)."""

        return (
            self.loads + self.stores + self.flops + self.fmas
            + self.divs + self.calls + self.int_ops
        )

    @property
    def memory_ops(self) -> int:
        return self.loads + self.stores

    def as_dict(self) -> Dict[str, int]:
        return {
            "loads": self.loads,
            "stores": self.stores,
            "flops": self.flops,
            "fmas": self.fmas,
            "divs": self.divs,
            "calls": self.calls,
            "int_ops": self.int_ops,
            "temporaries": self.temporaries,
            "instructions": self.instructions,
        }


@dataclass
class GeneratedKernel:
    """Result of code generation for one kernel."""

    #: The (mutated) loop body block.
    body: C.Block
    stats: KernelCodeStats
    #: Number of temporaries inserted per group.
    temps_per_group: List[int] = field(default_factory=list)
    #: True if the bulk-load policy was used.
    bulk_load: bool = False


_FLOP_OPS = {"+", "-", "*", "neg", "min", "max"}
_INT_OPS = {"<<", ">>", "&", "|", "^", "%", "~", "!",
            "<", ">", "<=", ">=", "==", "!=", "&&", "||"}


class CodeGenerator:
    """Rewrite a kernel body in place from an extraction result."""

    def __init__(
        self,
        egraph: EGraph,
        extraction: ExtractionResult,
        ssa: KernelSSA,
        root_of: Dict[int, int],
        store_class_of: Dict[int, int],
        bulk_load: bool = False,
        temp_prefix: str = "_v",
    ) -> None:
        """
        ``root_of`` maps an assignment's ``ssa_id`` to the e-class of its
        right-hand side; ``store_class_of`` maps the ``ssa_id`` of store
        assignments to the e-class of their ``store`` term.
        """

        self.egraph = egraph
        self.extraction = extraction
        self.ssa = ssa
        self.root_of = root_of
        self.store_class_of = store_class_of
        self.bulk_load = bulk_load
        self.temp_prefix = temp_prefix
        self._next_temp_index = 0
        self.stats = KernelCodeStats()

    # ------------------------------------------------------------------

    def generate(self) -> GeneratedKernel:
        """Rewrite every group; returns the generated-kernel summary."""

        temps_per_group: List[int] = []

        # groups in the same block must be spliced back-to-front so that
        # earlier groups' indices stay valid
        by_block: Dict[int, List[StraightLineGroup]] = {}
        block_of: Dict[int, C.Block] = {}
        for group in self.ssa.groups:
            by_block.setdefault(id(group.block), []).append(group)
            block_of[id(group.block)] = group.block

        for block_key, groups in by_block.items():
            block = block_of[block_key]
            for group in sorted(groups, key=lambda g: g.start_index, reverse=True):
                n_temps = self._generate_group(block, group)
                temps_per_group.append(n_temps)

        self.stats.temporaries = sum(temps_per_group)
        return GeneratedKernel(
            body=self.ssa.body,
            stats=self.stats,
            temps_per_group=temps_per_group,
            bulk_load=self.bulk_load,
        )

    # ------------------------------------------------------------------

    def _generate_group(self, block: C.Block, group: StraightLineGroup) -> int:
        if not group.assignments:
            return 0

        allocator = TempAllocator(self.temp_prefix, self._next_temp_index)
        renderer = ClassRenderer(self.egraph, self.extraction.choices, allocator)

        root_classes: List[int] = []
        for info in group.assignments:
            root = self.egraph.find(self.root_of[info.ssa_id])
            root_classes.append(root)
            renderer.mark_index_classes(root)

        store_stmt_of: Dict[int, int] = {}
        for position, info in enumerate(group.assignments):
            store_class = self.store_class_of.get(info.ssa_id)
            if store_class is not None:
                store_stmt_of[self.egraph.find(store_class)] = position

        schedule = schedule_group(renderer, root_classes, store_stmt_of, self.bulk_load)

        # Re-render in schedule order, building the new statement list.
        renderer.available_temps = set()
        new_stmts: List[C.Stmt] = []
        n_temps = 0
        for item in schedule:
            if item.kind == "temp":
                cid = self.egraph.find(item.eclass)
                text = renderer.render_definition(cid)
                name = allocator.name_for(cid)
                decl = C.Decl("double", name, parse_expression(text))
                new_stmts.append(decl)
                renderer.available_temps.add(cid)
                self._count_node(renderer.node_of(cid))
                n_temps += 1
            else:
                info = group.assignments[item.position]
                root = root_classes[item.position]
                self._rewrite_statement(info, renderer.render(root))
                new_stmts.append(info.stmt)
                self._count_statement(info)

        block.stmts[group.start_index : group.end_index] = new_stmts
        self._next_temp_index = allocator.next_index
        return n_temps

    # ------------------------------------------------------------------

    def _rewrite_statement(self, info: AssignmentInfo, rhs_text: str) -> None:
        rhs = parse_expression(rhs_text)
        stmt = info.stmt
        if isinstance(stmt, C.Decl):
            stmt.init = rhs
            return
        if isinstance(stmt, C.ExprStmt):
            expr = stmt.expr
            if isinstance(expr, C.Assign):
                expr.op = "="
                expr.value = rhs
                return
            if isinstance(expr, C.UnaryOp) and expr.op in ("++", "--"):
                stmt.expr = C.Assign("=", expr.operand, rhs, expr.line)
                return
        raise TypeError(f"cannot rewrite statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _count_node(self, node: ENode) -> None:
        op = node.op
        if op == "load":
            self.stats.loads += 1
        elif op == "store":
            self.stats.stores += 1
        elif op == "fma":
            self.stats.fmas += 1
        elif op == "/":
            self.stats.divs += 1
        elif op == "call":
            self.stats.calls += 1
        elif op in _FLOP_OPS:
            self.stats.flops += 1
        elif op in _INT_OPS:
            self.stats.int_ops += 1

    def _count_statement(self, info: AssignmentInfo) -> None:
        if info.is_store:
            self.stats.stores += 1


def count_ast_stats(node: C.Node) -> KernelCodeStats:
    """Operation counts of a kernel body as written in the source.

    This is the honest "original code" baseline: each textual occurrence of
    an array access or arithmetic operation counts once (what a compiler
    that performs no CSE at all would execute per innermost iteration).
    """

    stats = KernelCodeStats()

    def is_store_target(parent: C.Node, child: C.Node) -> bool:
        return isinstance(parent, C.Assign) and parent.target is child

    def visit(node_: C.Node, in_store_target: bool = False) -> None:
        if isinstance(node_, C.ArraySub):
            # only the outermost subscript of a chain is one memory access
            if in_store_target:
                stats.stores += 1
            else:
                stats.loads += 1
            base = node_
            while isinstance(base, C.ArraySub):
                visit(base.index, False)
                base = base.base
            return
        if isinstance(node_, C.Assign):
            target_is_memory = isinstance(node_.target, (C.ArraySub, C.Member)) or (
                isinstance(node_.target, C.UnaryOp) and node_.target.op == "*"
            )
            if node_.op != "=":
                # compound assignment re-reads the target
                visit(node_.target, False)
                if node_.op[:-1] == "/":
                    stats.divs += 1
                elif node_.op[:-1] in _FLOP_OPS:
                    stats.flops += 1
                elif node_.op[:-1] in _INT_OPS:
                    stats.int_ops += 1
            visit(node_.target, target_is_memory)
            visit(node_.value, False)
            return
        if isinstance(node_, C.BinOp):
            if node_.op == "/":
                stats.divs += 1
            elif node_.op in _FLOP_OPS:
                stats.flops += 1
            elif node_.op in _INT_OPS:
                stats.int_ops += 1
            visit(node_.lhs, False)
            visit(node_.rhs, False)
            return
        if isinstance(node_, C.UnaryOp):
            if node_.op == "-":
                stats.flops += 1
            visit(node_.operand, False)
            return
        if isinstance(node_, C.Call):
            stats.calls += 1
            for arg in node_.args:
                visit(arg, False)
            return
        for child in node_.children():
            visit(child, False)

    visit(node)
    return stats


def count_term_stats(terms: Sequence[Term], stores: int = 0) -> KernelCodeStats:
    """Operation counts of unoptimized SSA terms (every occurrence counted).

    This is the baseline the compiler model uses for the *original* code:
    no sharing of common subexpressions, every load re-issued.  The version
    operand of ``load``/``store`` terms is skipped — it threads the data
    dependence on earlier stores and does not correspond to executed code.
    """

    stats = KernelCodeStats(stores=stores)

    def visit(node: Term) -> None:
        op = node.op
        children = node.children
        if op == "load":
            stats.loads += 1
            children = node.children[1:]
        elif op == "store":
            stats.stores += 1
            children = node.children[1:]
        elif op == "fma":
            stats.fmas += 1
        elif op == "/":
            stats.divs += 1
        elif op == "call":
            stats.calls += 1
        elif op in _FLOP_OPS:
            stats.flops += 1
        elif op in _INT_OPS:
            stats.int_ops += 1
        elif op in ("phi", "phi-loop"):
            # only the condition and branch values that were actually
            # computed are counted via the assignments that produced them
            children = ()
        for child in children:
            visit(child)

    for term in terms:
        visit(term)
    return stats
