"""Commutativity / associativity rules (paper Table I).

These rules are what lets equality saturation *reorder computation*: they
expose new common subexpressions (``B = D + E`` and ``C = E + D`` become the
same e-class) and create new FMA opportunities.
"""

from __future__ import annotations

from typing import List

from repro.egraph.rewrite import Rewrite, rewrite

__all__ = ["commutativity_rules", "associativity_rules", "identity_rules"]


def commutativity_rules() -> List[Rewrite]:
    """COMM-ADD and COMM-MUL."""

    return [
        rewrite("comm-add", "(+ ?a ?b)", "(+ ?b ?a)"),
        rewrite("comm-mul", "(* ?a ?b)", "(* ?b ?a)"),
    ]


def associativity_rules() -> List[Rewrite]:
    """ASSOC-ADD1/2 and ASSOC-MUL1/2."""

    return [
        rewrite("assoc-add1", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        rewrite("assoc-add2", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
        rewrite("assoc-mul1", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
        rewrite("assoc-mul2", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
    ]


def identity_rules() -> List[Rewrite]:
    """Algebraic identities kept out of the paper's default set.

    The paper notes that extra rules (subtraction, division, ...) blow up the
    e-graph; these are provided for the *extended* rule set exercised by the
    ablation benchmarks, not enabled by default.
    """

    return [
        rewrite("add-zero", "(+ ?a 0)", "?a"),
        rewrite("mul-one", "(* ?a 1)", "?a"),
        rewrite("mul-zero", "(* ?a 0)", "0"),
        rewrite("sub-self", "(- ?a ?a)", "0"),
        rewrite("sub-to-add", "(- ?a ?b)", "(+ ?a (neg ?b))"),
        rewrite("add-neg-to-sub", "(+ ?a (neg ?b))", "(- ?a ?b)"),
        rewrite("neg-neg", "(neg (neg ?a))", "?a"),
        rewrite("distribute", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))"),
        rewrite("factor", "(+ (* ?a ?b) (* ?a ?c))", "(* ?a (+ ?b ?c))"),
    ]
