"""Constant folding.

The paper folds "arithmetic operations with integer and floating-point
numbers" during saturation.  Folding is implemented as an e-class analysis
(:class:`repro.egraph.analysis.ConstantFoldingAnalysis`) rather than as
rewrite rules, which is both how egg recommends it and asymptotically
cheaper: the folded literal is injected into the e-class the moment the
class is discovered to be constant.
"""

from __future__ import annotations

from repro.egraph.analysis import ConstantFoldingAnalysis

__all__ = ["constant_folding_analysis"]


def constant_folding_analysis(fold_division: bool = True) -> ConstantFoldingAnalysis:
    """Build the constant-folding analysis used by the default pipeline."""

    return ConstantFoldingAnalysis(fold_division=fold_division)
