"""Named rule sets and the printable rule table (paper Table I).

The *default* rule set is exactly what ACC Saturator enables: FMA
introduction, commutativity and associativity of ``+`` and ``*``, plus
constant folding (as an analysis).  The *extended* set adds the identities
the paper deliberately leaves out because they inflate the e-graph; the
ablation benchmark (`benchmarks/test_ablation_rulesets.py`) measures that
trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.egraph.rewrite import Rewrite
from repro.rules.arithmetic import associativity_rules, commutativity_rules, identity_rules
from repro.rules.fma import fma_rules

__all__ = ["RuleSpec", "RULE_TABLE", "default_ruleset", "extended_ruleset", "ruleset_by_name"]


@dataclass(frozen=True)
class RuleSpec:
    """One row of the paper's Table I (for reporting)."""

    name: str
    pattern: str
    result: str


#: Table I of the paper, verbatim.
RULE_TABLE: List[RuleSpec] = [
    RuleSpec("FMA1", "A + B * C", "FMA(A, B, C)"),
    RuleSpec("FMA2", "A - B * C", "FMA(A, -B, C)"),
    RuleSpec("FMA3", "B * C - A", "FMA(-A, B, C)"),
    RuleSpec("COMM-ADD", "A + B", "B + A"),
    RuleSpec("COMM-MUL", "A * B", "B * A"),
    RuleSpec("ASSOC-ADD1", "A + (B + C)", "(A + B) + C"),
    RuleSpec("ASSOC-ADD2", "(A + B) + C", "A + (B + C)"),
    RuleSpec("ASSOC-MUL1", "A * (B * C)", "(A * B) * C"),
    RuleSpec("ASSOC-MUL2", "(A * B) * C", "A * (B * C)"),
]


def default_ruleset() -> List[Rewrite]:
    """The paper's rule set: FMA + commutativity + associativity.

    The textual patterns (and their compiled forms) are memoised by
    :func:`repro.egraph.pattern.parse_pattern`, so building a ruleset in a
    loop does not re-parse or re-compile anything.  Rule names must be
    unique — the saturation profiler keys per-rule statistics by name;
    :class:`~repro.egraph.runner.Runner` enforces this for every rule
    list it is given.
    """

    return fma_rules() + commutativity_rules() + associativity_rules()


def extended_ruleset() -> List[Rewrite]:
    """Default rules plus algebraic identities (ablation only)."""

    return default_ruleset() + identity_rules()


_RULESETS: Dict[str, Callable[[], List[Rewrite]]] = {
    "default": default_ruleset,
    "extended": extended_ruleset,
    "fma-only": fma_rules,
    "reassoc-only": lambda: commutativity_rules() + associativity_rules(),
    "none": lambda: [],
}


def ruleset_by_name(name: str) -> List[Rewrite]:
    """Look up a rule set by name (``default``, ``extended``, ``fma-only``,
    ``reassoc-only``, ``none``)."""

    try:
        return _RULESETS[name]()
    except KeyError:
        raise ValueError(
            f"unknown ruleset {name!r}; available: {sorted(_RULESETS)}"
        ) from None
