"""Fused multiply-add introduction rules (paper Table I, FMA1-3).

``fma(a, b, c)`` denotes ``a + b * c`` — the convention used throughout the
term language, the interpreter, and the code generator (which prints it as
the C ``fma`` intrinsic operand order ``fma(b, c, a)`` when emitting code,
see :mod:`repro.codegen.generator`).
"""

from __future__ import annotations

from typing import List

from repro.egraph.rewrite import Rewrite, rewrite

__all__ = ["fma_rules"]


def fma_rules() -> List[Rewrite]:
    """The three FMA-introduction rules of Table I.

    ========  =====================  =========================
    name      pattern                result
    ========  =====================  =========================
    FMA1      ``A + B * C``          ``FMA(A, B, C)``
    FMA2      ``A - B * C``          ``FMA(A, -B, C)``
    FMA3      ``B * C - A``          ``FMA(-A, B, C)``
    ========  =====================  =========================
    """

    return [
        rewrite("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)"),
        rewrite("fma2", "(- ?a (* ?b ?c))", "(fma ?a (neg ?b) ?c)"),
        rewrite("fma3", "(- (* ?b ?c) ?a)", "(fma (neg ?a) ?b ?c)"),
    ]
