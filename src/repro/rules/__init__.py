"""Rewriting rule sets (paper Table I + constant folding)."""

from repro.rules.fma import fma_rules
from repro.rules.arithmetic import associativity_rules, commutativity_rules
from repro.rules.constfold import constant_folding_analysis
from repro.rules.rulesets import (
    RULE_TABLE,
    RuleSpec,
    default_ruleset,
    extended_ruleset,
    ruleset_by_name,
)

__all__ = [
    "RULE_TABLE",
    "RuleSpec",
    "associativity_rules",
    "commutativity_rules",
    "constant_folding_analysis",
    "default_ruleset",
    "extended_ruleset",
    "fma_rules",
    "ruleset_by_name",
]
