"""C + OpenACC/OpenMP frontend.

This subpackage provides the source-language substrate of the reproduction:
a lexer, a recursive-descent parser, an abstract syntax tree (AST) for the C
subset exercised by the NPB / SPEC ACCEL kernels, a directive (``#pragma``)
parser for OpenACC and OpenMP, and a C printer able to regenerate compilable
source from (possibly optimized) ASTs.

The public entry points are :func:`parse` / :func:`parse_expression` and
:func:`print_c`.
"""

from repro.frontend.cast import (
    ArraySub,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    Decl,
    DoWhile,
    ExprStmt,
    For,
    FuncDef,
    Ident,
    If,
    Member,
    Node,
    Number,
    Pragma,
    Return,
    StringLit,
    Ternary,
    TranslationUnit,
    UnaryOp,
    While,
    clone,
    walk,
)
from repro.frontend.lexer import Lexer, LexerError, Token, TokenKind, tokenize
from repro.frontend.parser import ParseError, Parser, parse, parse_expression, parse_statement
from repro.frontend.pragma import (
    Directive,
    DirectiveClause,
    DirectiveKind,
    parse_pragma,
)
from repro.frontend.printer import CPrinter, print_c, print_expr

__all__ = [
    "ArraySub",
    "Assign",
    "BinOp",
    "Block",
    "Break",
    "Call",
    "Cast",
    "Continue",
    "CPrinter",
    "Decl",
    "Directive",
    "DirectiveClause",
    "DirectiveKind",
    "DoWhile",
    "ExprStmt",
    "For",
    "FuncDef",
    "Ident",
    "If",
    "Lexer",
    "LexerError",
    "Member",
    "Node",
    "Number",
    "ParseError",
    "Parser",
    "Pragma",
    "Return",
    "StringLit",
    "Ternary",
    "Token",
    "TokenKind",
    "TranslationUnit",
    "UnaryOp",
    "While",
    "clone",
    "parse",
    "parse_expression",
    "parse_pragma",
    "parse_statement",
    "print_c",
    "print_expr",
    "tokenize",
    "walk",
]
