"""Tokenizer for the C subset + ``#pragma`` lines.

The lexer is line-aware so that preprocessor-style directives (``#pragma``)
can be captured as single tokens including continuation lines ending in a
backslash, which is how OpenACC kernels commonly spell long directives::

    #pragma acc parallel loop gang num_gangs(ksize-1)\\
            num_workers(4) vector_length(32)

Comments (``//`` and ``/* */``) are skipped.  Numeric literals keep their
original spelling so the printer can round-trip suffixes such as ``0.f``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["TokenKind", "Token", "Lexer", "LexerError", "tokenize"]


class LexerError(ValueError):
    """Raised when the input contains a character sequence we cannot lex."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}:{column}: {message}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    """Classification of a lexical token."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    PRAGMA = "pragma"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", ".",
]

_NUMBER_RE = re.compile(
    r"""
    (?:
        0[xX][0-9a-fA-F]+[uUlL]*            # hexadecimal
      | (?:\d+\.\d*|\.\d+|\d+)              # decimal / float mantissa
        (?:[eE][+-]?\d+)?                   # optional exponent
        [fFlLuU]*                           # optional suffixes
    )
    """,
    re.VERBOSE,
)

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class Lexer:
    """Convert C source text into a list of :class:`Token`."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    # -- skipping ----------------------------------------------------------

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    # -- token producers ---------------------------------------------------

    def _lex_pragma(self) -> Token:
        line, column = self.line, self.column
        pieces: List[str] = []
        while True:
            start = self.pos
            while self.pos < len(self.source) and self._peek() != "\n":
                self._advance()
            segment = self.source[start : self.pos]
            if self.pos < len(self.source):
                self._advance()  # consume newline
            stripped = segment.rstrip()
            if stripped.endswith("\\"):
                pieces.append(stripped[:-1])
                continue
            pieces.append(stripped)
            break
        text = " ".join(piece.strip() for piece in pieces)
        return Token(TokenKind.PRAGMA, text, line, column)

    def _lex_string(self, quote: str) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
                continue
            if ch == quote:
                self._advance()
                text = self.source[start : self.pos]
                kind = TokenKind.STRING if quote == '"' else TokenKind.CHAR
                return Token(kind, text, line, column)
            if ch == "\n":
                break
            self._advance()
        raise self._error("unterminated string literal")

    # -- main loop ----------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, terminated by an EOF token."""

        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self.line, self.column)
                return

            ch = self._peek()
            line, column = self.line, self.column

            if ch == "#":
                yield self._lex_pragma()
                continue

            if ch == '"' or ch == "'":
                yield self._lex_string(ch)
                continue

            match = _NUMBER_RE.match(self.source, self.pos)
            if match and (ch.isdigit() or (ch == "." and self._peek(1).isdigit())):
                text = match.group(0)
                self._advance(len(text))
                yield Token(TokenKind.NUMBER, text, line, column)
                continue

            match = _IDENT_RE.match(self.source, self.pos)
            if match:
                text = match.group(0)
                self._advance(len(text))
                yield Token(TokenKind.IDENT, text, line, column)
                continue

            for punct in _PUNCTUATORS:
                if self.source.startswith(punct, self.pos):
                    self._advance(len(punct))
                    yield Token(TokenKind.PUNCT, punct, line, column)
                    break
            else:
                raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* and return the full token list (including EOF)."""

    return list(Lexer(source).tokens())
