"""Abstract syntax tree for the C subset used by directive-based GPU kernels.

The node set intentionally covers the language features that appear in the
OpenACC / OpenMP C versions of the NAS Parallel Benchmarks and SPEC ACCEL:
scalar and array declarations, compound assignments, ``for`` / ``while`` /
``do-while`` / ``if`` statements, multi-dimensional array subscripts, struct
member access, pointer dereference, casts, ternary expressions, and calls to
math intrinsics.  Directives are attached to statements as :class:`Pragma`
nodes wrapping a parsed :class:`repro.frontend.pragma.Directive`.

Every node is a small dataclass.  Nodes are mutable (the optimizer replaces
right-hand sides in place) but :func:`clone` produces deep copies when a pass
needs to preserve the original program, e.g. for the semantics-equivalence
check performed by :mod:`repro.interp.verify`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "Number",
    "StringLit",
    "Ident",
    "ArraySub",
    "Member",
    "UnaryOp",
    "BinOp",
    "Ternary",
    "Call",
    "Cast",
    "Assign",
    "Decl",
    "ExprStmt",
    "Block",
    "If",
    "For",
    "While",
    "DoWhile",
    "Return",
    "Break",
    "Continue",
    "Pragma",
    "FuncDef",
    "TranslationUnit",
    "clone",
    "walk",
    "ASSIGN_OPS",
    "BINARY_OPS",
    "UNARY_OPS",
    "COMPARISON_OPS",
]


#: Assignment operators recognised by the parser and the SSA builder.
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=")

#: Binary operators in the expression grammar (excluding assignment).
BINARY_OPS = (
    "+", "-", "*", "/", "%",
    "<<", ">>",
    "<", ">", "<=", ">=", "==", "!=",
    "&", "|", "^", "&&", "||",
)

#: Comparison operators (useful to the rule writers and the interpreter).
COMPARISON_OPS = ("<", ">", "<=", ">=", "==", "!=")

#: Prefix unary operators.
UNARY_OPS = ("-", "+", "!", "~", "*", "&", "++", "--")


class Node:
    """Base class of every AST node."""

    #: Source line of the first token of this node (0 when synthesised).
    line: int = 0

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes, in source order."""
        cls = self.__class__
        names = cls.__dict__.get("_child_field_names")
        if names is None:
            names = tuple(getattr(cls, "__dataclass_fields__", {}))
            cls._child_field_names = names
        for name in names:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item


class Expr(Node):
    """Base class for expression nodes."""


class Stmt(Node):
    """Base class for statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Number(Expr):
    """A numeric literal.

    ``text`` preserves the literal exactly as written (including suffixes)
    so the printer round-trips the user spelling; ``value`` is the parsed
    Python value used by constant folding and the interpreter; ``is_float``
    distinguishes integer from floating-point literals.
    """

    text: str
    value: Union[int, float]
    is_float: bool = False
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.text


@dataclass
class StringLit(Expr):
    """A string literal (only appears as a call argument in kernels)."""

    value: str
    line: int = 0


@dataclass
class Ident(Expr):
    """A variable (or function name in a call position)."""

    name: str
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return self.name


@dataclass
class ArraySub(Expr):
    """An array subscript ``base[index]``.

    Multi-dimensional accesses such as ``a[i][j][k]`` nest :class:`ArraySub`
    nodes with the outermost subscript at the root.
    """

    base: Expr
    index: Expr
    line: int = 0


@dataclass
class Member(Expr):
    """A struct member access ``base.field`` or ``base->field``."""

    base: Expr
    field_name: str
    arrow: bool = False
    line: int = 0


@dataclass
class UnaryOp(Expr):
    """A prefix or postfix unary operation."""

    op: str
    operand: Expr
    postfix: bool = False
    line: int = 0


@dataclass
class BinOp(Expr):
    """A binary operation ``lhs op rhs``."""

    op: str
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class Ternary(Expr):
    """The conditional expression ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr
    line: int = 0


@dataclass
class Call(Expr):
    """A function call ``func(args...)``."""

    func: Expr
    args: list[Expr] = field(default_factory=list)
    line: int = 0


@dataclass
class Cast(Expr):
    """A C cast ``(type) expr``."""

    type_name: str
    operand: Expr
    line: int = 0


@dataclass
class Assign(Expr):
    """An assignment expression ``target op value`` with ``op`` in ASSIGN_OPS."""

    op: str
    target: Expr
    value: Expr
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Decl(Stmt):
    """A declaration of one variable, e.g. ``double tmp = 0.0;``.

    Multi-declarator statements (``int i, j;``) are split into consecutive
    :class:`Decl` nodes by the parser.  ``array_dims`` holds the declared
    extents for local array declarations (``double q[5];``).
    """

    type_name: str
    name: str
    init: Optional[Expr] = None
    array_dims: list[Expr] = field(default_factory=list)
    qualifiers: tuple[str, ...] = ()
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    """An expression statement (usually an assignment or a call)."""

    expr: Expr
    line: int = 0


@dataclass
class Block(Stmt):
    """A compound statement ``{ ... }``."""

    stmts: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class If(Stmt):
    """An ``if`` statement with optional ``else`` branch."""

    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None
    line: int = 0


@dataclass
class For(Stmt):
    """A ``for`` loop.

    ``init`` may be a declaration (``for (int i = 0; ...)``) or an
    expression statement; either may be ``None`` for degenerate loops.
    """

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    line: int = 0


@dataclass
class While(Stmt):
    """A ``while`` loop."""

    cond: Expr
    body: Stmt
    line: int = 0


@dataclass
class DoWhile(Stmt):
    """A ``do { } while (cond);`` loop."""

    body: Stmt
    cond: Expr
    line: int = 0


@dataclass
class Return(Stmt):
    """A ``return`` statement."""

    value: Optional[Expr] = None
    line: int = 0


@dataclass
class Break(Stmt):
    """A ``break`` statement."""

    line: int = 0


@dataclass
class Continue(Stmt):
    """A ``continue`` statement."""

    line: int = 0


@dataclass
class Pragma(Stmt):
    """A ``#pragma`` directive attached to the statement that follows it.

    ``directive`` is the parsed OpenACC/OpenMP form (or ``None`` for pragmas
    of other families, which are carried through verbatim via ``text``).
    """

    text: str
    directive: Optional["object"] = None
    stmt: Optional[Stmt] = None
    line: int = 0


@dataclass
class FuncDef(Node):
    """A function definition (kernels are typically wrapped in one)."""

    return_type: str
    name: str
    params: list[tuple[str, str]] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    line: int = 0


@dataclass
class TranslationUnit(Node):
    """A whole parsed source file: a list of declarations and functions."""

    decls: list[Node] = field(default_factory=list)
    line: int = 0


# ---------------------------------------------------------------------------
# Utilities
# ---------------------------------------------------------------------------


def clone(node: Node) -> Node:
    """Return a deep copy of *node* (and its entire subtree)."""

    return copy.deepcopy(node)


def walk(node: Node) -> Iterator[Node]:
    """Yield *node* and every descendant in pre-order."""

    yield node
    for child in node.children():
        yield from walk(child)


def collect(node: Node, kind: type) -> list[Node]:
    """Return every descendant of *node* (inclusive) of the given class."""

    return [n for n in walk(node) if isinstance(n, kind)]


def is_lvalue(node: Node) -> bool:
    """Return True if *node* may appear on the left of an assignment."""

    if isinstance(node, (Ident, ArraySub, Member)):
        return True
    if isinstance(node, UnaryOp) and node.op == "*" and not node.postfix:
        return True
    return False
