"""Recursive-descent parser for the C subset + OpenACC/OpenMP pragmas.

The grammar intentionally covers what directive-based HPC kernels need:

* global and local declarations (scalars, arrays, pointers),
* function definitions,
* ``for`` / ``while`` / ``do-while`` / ``if`` / ``break`` / ``continue`` /
  ``return`` statements,
* the full C expression grammar (assignment, ternary, logical, bitwise,
  relational, shift, additive, multiplicative, casts, unary, postfix),
* ``#pragma acc`` / ``#pragma omp`` directives attached to the following
  statement.

The parser produces the AST defined in :mod:`repro.frontend.cast`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import cast as C
from repro.frontend.lexer import Token, TokenKind, tokenize
from repro.frontend.pragma import parse_pragma

__all__ = ["ParseError", "Parser", "parse", "parse_expression", "parse_statement"]


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"line {token.line}:{token.column}: {message} (got {token.text!r})")
        self.token = token


#: Keywords that may begin a type specifier.
TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "size_t", "ssize_t", "int32_t", "int64_t",
    "uint32_t", "uint64_t", "bool", "_Bool",
}

#: Qualifiers that may precede or follow a type specifier.
TYPE_QUALIFIERS = {"const", "static", "restrict", "__restrict", "__restrict__",
                   "volatile", "register", "inline", "extern"}

#: Statement keywords (so declaration detection does not misfire).
STATEMENT_KEYWORDS = {"if", "else", "for", "while", "do", "return", "break",
                      "continue", "switch", "case", "default", "goto", "struct"}


class Parser:
    """Parse a token stream into the AST of :mod:`repro.frontend.cast`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0
        #: Names introduced by struct declarations; treated as type names.
        self.struct_types: set[str] = set()

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, text: str) -> bool:
        token = self._peek()
        return token.kind in (TokenKind.PUNCT, TokenKind.IDENT) and token.text == text

    def _match(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(f"expected {text!r}", self._peek())
        return self._advance()

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._peek())

    # ------------------------------------------------------------------
    # Type detection
    # ------------------------------------------------------------------

    def _is_type_start(self, offset: int = 0) -> bool:
        token = self._peek(offset)
        if token.kind is not TokenKind.IDENT:
            return False
        if token.text in STATEMENT_KEYWORDS:
            return token.text == "struct"
        return (
            token.text in TYPE_KEYWORDS
            or token.text in TYPE_QUALIFIERS
            or token.text in self.struct_types
        )

    def _parse_type_name(self) -> tuple[str, tuple[str, ...]]:
        """Parse a type specifier; returns (type text, qualifiers)."""

        qualifiers: List[str] = []
        words: List[str] = []
        while True:
            token = self._peek()
            if token.kind is TokenKind.IDENT and token.text in TYPE_QUALIFIERS:
                qualifiers.append(self._advance().text)
                continue
            if token.kind is TokenKind.IDENT and token.text == "struct":
                self._advance()
                tag = self._expect_ident()
                words.append(f"struct {tag}")
                self.struct_types.add(tag)
                continue
            if token.kind is TokenKind.IDENT and (
                token.text in TYPE_KEYWORDS or token.text in self.struct_types
            ):
                words.append(self._advance().text)
                continue
            break
        while self._check("*"):
            self._advance()
            words.append("*")
        if not words:
            raise self._error("expected type name")
        return " ".join(words), tuple(qualifiers)

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._error("expected identifier")
        return self._advance().text

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_translation_unit(self) -> C.TranslationUnit:
        """Parse an entire source file."""

        unit = C.TranslationUnit()
        while not self._at_end():
            token = self._peek()
            if token.kind is TokenKind.PRAGMA:
                unit.decls.append(self._parse_pragma_stmt(top_level=True))
                continue
            if self._is_type_start():
                node = self._parse_function_or_declaration()
                if isinstance(node, list):
                    unit.decls.extend(node)
                else:
                    unit.decls.append(node)
                continue
            raise self._error("expected declaration or function definition")
        return unit

    def _parse_function_or_declaration(self):
        start = self.index
        type_name, qualifiers = self._parse_type_name()
        name = self._expect_ident()
        if self._check("("):
            return self._parse_function_rest(type_name, name)
        # plain declaration(s); rewind is unnecessary because declarators
        # continue from the current position.
        return self._parse_declaration_rest(type_name, qualifiers, name)

    def _parse_function_rest(self, return_type: str, name: str) -> C.FuncDef:
        line = self._peek().line
        self._expect("(")
        params: List[tuple[str, str]] = []
        if not self._check(")"):
            while True:
                if self._check("void") and self._peek(1).text == ")":
                    self._advance()
                    break
                ptype, _ = self._parse_type_name()
                pname = ""
                if self._peek().kind is TokenKind.IDENT:
                    pname = self._advance().text
                # array parameter suffixes: double a[][N]
                while self._check("["):
                    depth_text = ["["]
                    self._advance()
                    while not self._check("]"):
                        depth_text.append(self._advance().text)
                    self._advance()
                    depth_text.append("]")
                    ptype += "".join(depth_text)
                params.append((ptype, pname))
                if not self._match(","):
                    break
        self._expect(")")
        if self._match(";"):
            # forward declaration: model as a FuncDef with empty body
            return C.FuncDef(return_type, name, params, C.Block(), line)
        body = self._parse_block()
        return C.FuncDef(return_type, name, params, body, line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> C.Stmt:
        """Parse one statement (including any attached pragma)."""

        token = self._peek()

        if token.kind is TokenKind.PRAGMA:
            return self._parse_pragma_stmt()

        if self._check("{"):
            return self._parse_block()
        if self._check("if"):
            return self._parse_if()
        if self._check("for"):
            return self._parse_for()
        if self._check("while"):
            return self._parse_while()
        if self._check("do"):
            return self._parse_do_while()
        if self._check("return"):
            line = self._advance().line
            value = None
            if not self._check(";"):
                value = self.parse_expression()
            self._expect(";")
            return C.Return(value, line)
        if self._check("break"):
            line = self._advance().line
            self._expect(";")
            return C.Break(line)
        if self._check("continue"):
            line = self._advance().line
            self._expect(";")
            return C.Continue(line)
        if self._check(";"):
            line = self._advance().line
            return C.Block([], line)
        if self._is_type_start() and self._peek(1).kind is TokenKind.IDENT:
            decls = self._parse_declaration()
            if len(decls) == 1:
                return decls[0]
            return C.Block(list(decls), decls[0].line)

        expr = self.parse_expression()
        self._expect(";")
        return C.ExprStmt(expr, getattr(expr, "line", token.line))

    def _parse_pragma_stmt(self, top_level: bool = False) -> C.Pragma:
        token = self._advance()
        directive = parse_pragma(token.text)
        pragma = C.Pragma(token.text, directive, None, token.line)
        nxt = self._peek()
        needs_stmt = not top_level or nxt.kind is TokenKind.PRAGMA or self._check("{") \
            or self._check("for") or self._check("while") or self._check("if")
        if needs_stmt and not self._at_end():
            pragma.stmt = self.parse_statement()
        return pragma

    def _parse_block(self) -> C.Block:
        line = self._expect("{").line
        stmts: List[C.Stmt] = []
        while not self._check("}"):
            if self._at_end():
                raise self._error("unterminated block")
            stmt = self.parse_statement()
            # flatten multi-declarator splits that came back as a bare Block
            if isinstance(stmt, C.Block) and stmt.stmts and all(
                isinstance(s, C.Decl) for s in stmt.stmts
            ):
                stmts.extend(stmt.stmts)
            else:
                stmts.append(stmt)
        self._expect("}")
        return C.Block(stmts, line)

    def _parse_if(self) -> C.If:
        line = self._expect("if").line
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        then = self.parse_statement()
        otherwise = None
        if self._check("else"):
            self._advance()
            otherwise = self.parse_statement()
        return C.If(cond, then, otherwise, line)

    def _parse_for(self) -> C.For:
        line = self._expect("for").line
        self._expect("(")
        init: Optional[C.Stmt] = None
        if not self._check(";"):
            if self._is_type_start():
                decls = self._parse_declaration()
                init = decls[0] if len(decls) == 1 else C.Block(list(decls), line)
            else:
                expr = self.parse_expression()
                self._expect(";")
                init = C.ExprStmt(expr, line)
        else:
            self._advance()
        cond = None
        if not self._check(";"):
            cond = self.parse_expression()
        self._expect(";")
        step = None
        if not self._check(")"):
            step = self.parse_expression()
        self._expect(")")
        body = self.parse_statement()
        return C.For(init, cond, step, body, line)

    def _parse_while(self) -> C.While:
        line = self._expect("while").line
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        body = self.parse_statement()
        return C.While(cond, body, line)

    def _parse_do_while(self) -> C.DoWhile:
        line = self._expect("do").line
        body = self.parse_statement()
        self._expect("while")
        self._expect("(")
        cond = self.parse_expression()
        self._expect(")")
        self._expect(";")
        return C.DoWhile(body, cond, line)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_declaration(self) -> List[C.Decl]:
        type_name, qualifiers = self._parse_type_name()
        name = self._expect_ident()
        return self._parse_declaration_rest(type_name, qualifiers, name)

    def _parse_declaration_rest(
        self, type_name: str, qualifiers: tuple[str, ...], first_name: str
    ) -> List[C.Decl]:
        decls: List[C.Decl] = []
        name = first_name
        while True:
            line = self._peek().line
            dims: List[C.Expr] = []
            while self._check("["):
                self._advance()
                if self._check("]"):
                    dims.append(C.Number("0", 0, False, line))
                else:
                    dims.append(self.parse_expression())
                self._expect("]")
            init = None
            if self._match("="):
                init = self.parse_assignment()
            decls.append(C.Decl(type_name, name, init, dims, qualifiers, line))
            if self._match(","):
                # subsequent declarators may add their own pointer stars
                extra_ptr = ""
                while self._check("*"):
                    self._advance()
                    extra_ptr += "*"
                name = self._expect_ident()
                if extra_ptr:
                    decls[-1] = decls[-1]  # keep prior; stars apply to the next decl
                    type_name_next = type_name + " " + extra_ptr
                else:
                    type_name_next = type_name
                type_name = type_name_next if extra_ptr else type_name
                continue
            break
        self._expect(";")
        return decls

    # ------------------------------------------------------------------
    # Expressions (precedence climbing via layered recursive descent)
    # ------------------------------------------------------------------

    def parse_expression(self) -> C.Expr:
        """Parse a full expression including the comma operator."""

        expr = self.parse_assignment()
        while self._check(","):
            # comma operator: keep the right-most value, but preserve both
            # sides in evaluation order by nesting BinOp(",", lhs, rhs).
            line = self._advance().line
            rhs = self.parse_assignment()
            expr = C.BinOp(",", expr, rhs, line)
        return expr

    def parse_assignment(self) -> C.Expr:
        expr = self._parse_ternary()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in C.ASSIGN_OPS:
            op = self._advance().text
            value = self.parse_assignment()
            return C.Assign(op, expr, value, token.line)
        return expr

    def _parse_ternary(self) -> C.Expr:
        cond = self._parse_binary(0)
        if self._check("?"):
            line = self._advance().line
            then = self.parse_assignment()
            self._expect(":")
            otherwise = self.parse_assignment()
            return C.Ternary(cond, then, otherwise, line)
        return cond

    #: Binary operator precedence levels, loosest first.
    _PRECEDENCE: List[List[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> C.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_cast()
        expr = self._parse_binary(level + 1)
        ops = self._PRECEDENCE[level]
        while True:
            token = self._peek()
            if token.kind is TokenKind.PUNCT and token.text in ops:
                self._advance()
                rhs = self._parse_binary(level + 1)
                expr = C.BinOp(token.text, expr, rhs, token.line)
            else:
                return expr

    def _parse_cast(self) -> C.Expr:
        if self._check("(") and self._is_type_start(1):
            # lookahead to confirm the closing paren follows a type
            save = self.index
            line = self._advance().line  # "("
            try:
                type_name, _ = self._parse_type_name()
                self._expect(")")
                operand = self._parse_cast()
                return C.Cast(type_name, operand, line)
            except ParseError:
                self.index = save
        return self._parse_unary()

    def _parse_unary(self) -> C.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in ("-", "+", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_cast()
            return C.UnaryOp(token.text, operand, False, token.line)
        if token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return C.UnaryOp(token.text, operand, False, token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> C.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if self._check("["):
                line = self._advance().line
                index = self.parse_expression()
                self._expect("]")
                expr = C.ArraySub(expr, index, line)
            elif self._check("("):
                line = self._advance().line
                args: List[C.Expr] = []
                if not self._check(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self._match(","):
                            break
                self._expect(")")
                expr = C.Call(expr, args, line)
            elif self._check("."):
                line = self._advance().line
                name = self._expect_ident()
                expr = C.Member(expr, name, False, line)
            elif self._check("->"):
                line = self._advance().line
                name = self._expect_ident()
                expr = C.Member(expr, name, True, line)
            elif token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
                self._advance()
                expr = C.UnaryOp(token.text, expr, True, token.line)
            else:
                return expr

    def _parse_primary(self) -> C.Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return _make_number(token)
        if token.kind is TokenKind.STRING or token.kind is TokenKind.CHAR:
            self._advance()
            return C.StringLit(token.text, token.line)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return C.Ident(token.text, token.line)
        if self._check("("):
            self._advance()
            expr = self.parse_expression()
            self._expect(")")
            return expr
        raise self._error("expected expression")


def _make_number(token: Token) -> C.Number:
    """Build a Number node, preserving the literal spelling."""

    text = token.text
    stripped = text.rstrip("fFlLuU")
    is_float = (
        "." in stripped
        or (("e" in stripped or "E" in stripped) and not stripped.lower().startswith("0x"))
        or text.rstrip("lLuU").endswith(("f", "F"))
    )
    if stripped.lower().startswith("0x"):
        value: int | float = int(stripped, 16)
        is_float = False
    elif is_float:
        value = float(stripped)
    else:
        value = int(stripped)
    return C.Number(text, value, is_float, token.line)


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse(source: str) -> C.TranslationUnit:
    """Parse a whole source file into a :class:`TranslationUnit`."""

    return Parser(tokenize(source)).parse_translation_unit()


def parse_statement(source: str) -> C.Stmt:
    """Parse a single statement (useful for kernels given as loop nests)."""

    parser = Parser(tokenize(source))
    stmt = parser.parse_statement()
    if not parser._at_end():
        # Allow trailing statements by wrapping them into a block.
        stmts = [stmt]
        while not parser._at_end():
            stmts.append(parser.parse_statement())
        return C.Block(stmts, stmts[0].line)
    return stmt


def parse_expression(source: str) -> C.Expr:
    """Parse a single expression."""

    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    if not parser._at_end():
        raise parser._error("trailing tokens after expression")
    return expr
