"""AST normalisation used before SSA construction.

The only transformation is structural: every loop body and branch of an
``if`` becomes a :class:`~repro.frontend.cast.Block`, so that later passes
(SSA construction and temporary-variable insertion) always have a real
statement list to splice generated declarations into.  The printed code is
semantically identical; only braces are added.
"""

from __future__ import annotations

from repro.frontend import cast as C

__all__ = ["normalize_blocks"]


def _as_block(stmt: C.Stmt) -> C.Block:
    if isinstance(stmt, C.Block):
        return stmt
    return C.Block([stmt], getattr(stmt, "line", 0))


def normalize_blocks(node: C.Node) -> C.Node:
    """Wrap loop/branch bodies in blocks, in place; returns *node*.

    Children are normalised exactly once, *before* their parent wraps them:
    a freshly created wrapper block only ever contains an
    already-normalised statement, so no re-descent is needed (re-recursing
    into wrapped bodies used to make this pass exponential in loop
    nesting depth).
    """

    for child in list(node.children()):
        normalize_blocks(child)

    if isinstance(node, C.If):
        node.then = _as_block(node.then)
        if node.otherwise is not None:
            node.otherwise = _as_block(node.otherwise)
    elif isinstance(node, (C.For, C.While, C.DoWhile)):
        node.body = _as_block(node.body)
    return node
