"""AST normalisation used before SSA construction.

The only transformation is structural: every loop body and branch of an
``if`` becomes a :class:`~repro.frontend.cast.Block`, so that later passes
(SSA construction and temporary-variable insertion) always have a real
statement list to splice generated declarations into.  The printed code is
semantically identical; only braces are added.
"""

from __future__ import annotations

from repro.frontend import cast as C

__all__ = ["normalize_blocks"]


def _as_block(stmt: C.Stmt) -> C.Block:
    if isinstance(stmt, C.Block):
        return stmt
    return C.Block([stmt], getattr(stmt, "line", 0))


def normalize_blocks(node: C.Node) -> C.Node:
    """Wrap loop/branch bodies in blocks, in place; returns *node*."""

    for child in list(node.children()):
        normalize_blocks(child)

    if isinstance(node, C.If):
        node.then = _as_block(node.then)
        normalize_blocks(node.then)
        if node.otherwise is not None:
            node.otherwise = _as_block(node.otherwise)
            normalize_blocks(node.otherwise)
    elif isinstance(node, C.For):
        node.body = _as_block(node.body)
        normalize_blocks(node.body)
    elif isinstance(node, C.While):
        node.body = _as_block(node.body)
        normalize_blocks(node.body)
    elif isinstance(node, C.DoWhile):
        node.body = _as_block(node.body)
        normalize_blocks(node.body)
    elif isinstance(node, C.Pragma) and node.stmt is not None:
        normalize_blocks(node.stmt)
    return node
