"""Parsing of OpenACC / OpenMP ``#pragma`` directives.

ACC Saturator never rewrites directives — it only needs to *understand* them
well enough to find parallel loops (and in particular the innermost parallel
loop whose body is packed into an e-graph) and to reprint them verbatim.
This module therefore parses the directive family (``acc`` / ``omp``), the
directive name words (``parallel loop``, ``kernels``, ``target teams
distribute`` ...) and the clause list (``gang``, ``vector_length(128)``,
``reduction(+:sum)`` ...), keeping the original spelling for regeneration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = [
    "DirectiveKind",
    "DirectiveClause",
    "Directive",
    "parse_pragma",
    "PARALLEL_LOOP_CLAUSES",
]


class DirectiveKind(enum.Enum):
    """The programming model the directive belongs to."""

    ACC = "acc"
    OMP = "omp"
    OTHER = "other"


#: Clause names that mark a loop directive as expressing parallelism.
PARALLEL_LOOP_CLAUSES = frozenset(
    {
        "gang",
        "worker",
        "vector",
        "independent",
        "seq",
        "collapse",
        "num_gangs",
        "num_workers",
        "vector_length",
        "simd",
        "parallel",
        "distribute",
        "teams",
        "for",
    }
)

#: OpenACC directive names that start an offloaded compute construct.
_ACC_COMPUTE = {"parallel", "kernels", "serial"}

#: OpenMP directive names that start an offloaded compute construct.
_OMP_COMPUTE = {"target", "teams", "parallel", "distribute", "for", "simd"}


@dataclass(frozen=True)
class DirectiveClause:
    """A single clause: a name plus the raw text of its parenthesised argument."""

    name: str
    argument: Optional[str] = None

    def __str__(self) -> str:
        if self.argument is None:
            return self.name
        return f"{self.name}({self.argument})"


@dataclass
class Directive:
    """A parsed ``#pragma acc``/``#pragma omp`` directive."""

    kind: DirectiveKind
    #: Leading directive-name words, e.g. ``("parallel", "loop")`` or
    #: ``("target", "teams", "distribute")``.
    names: tuple[str, ...] = ()
    clauses: List[DirectiveClause] = field(default_factory=list)
    #: Original pragma text (without the ``#pragma`` prefix normalisation).
    raw: str = ""

    # -- queries -----------------------------------------------------------

    def has_clause(self, name: str) -> bool:
        """Return True if a clause with the given name is present."""

        return any(clause.name == name for clause in self.clauses)

    def clause(self, name: str) -> Optional[DirectiveClause]:
        """Return the first clause with the given name, or None."""

        for clause in self.clauses:
            if clause.name == name:
                return clause
        return None

    @property
    def is_compute_construct(self) -> bool:
        """True if this directive opens an offloaded compute region."""

        if self.kind is DirectiveKind.ACC:
            return bool(_ACC_COMPUTE.intersection(self.names))
        if self.kind is DirectiveKind.OMP:
            return "target" in self.names or "teams" in self.names
        return False

    @property
    def is_loop_directive(self) -> bool:
        """True if this directive applies to the loop that follows it."""

        if self.kind is DirectiveKind.ACC:
            return "loop" in self.names or "kernels" in self.names or "parallel" in self.names
        if self.kind is DirectiveKind.OMP:
            return bool({"for", "distribute", "simd", "loop"}.intersection(self.names))
        return False

    @property
    def parallelism_levels(self) -> tuple[str, ...]:
        """The parallelism levels named on this directive, coarse to fine."""

        levels = []
        order = ("gang", "worker", "vector", "simd")
        present = {clause.name for clause in self.clauses} | set(self.names)
        for level in order:
            if level in present:
                levels.append(level)
        return tuple(levels)

    def __str__(self) -> str:
        parts = ["#pragma", self.kind.value if self.kind is not DirectiveKind.OTHER else ""]
        parts = [p for p in parts if p]
        parts.extend(self.names)
        parts.extend(str(clause) for clause in self.clauses)
        return " ".join(parts)


def _split_clauses(text: str) -> List[str]:
    """Split the clause region of a pragma on whitespace outside parentheses."""

    pieces: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch.isspace() and depth == 0:
            if current:
                pieces.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        pieces.append("".join(current))
    return pieces


def _parse_clause(piece: str) -> DirectiveClause:
    """Parse one clause token, e.g. ``num_gangs(ksize-1)`` or ``gang``."""

    if "(" in piece and piece.endswith(")"):
        name, _, rest = piece.partition("(")
        return DirectiveClause(name.strip(), rest[:-1].strip())
    return DirectiveClause(piece.strip())


#: Words that are part of the directive name rather than a clause, per model.
_NAME_WORDS = {
    DirectiveKind.ACC: {"parallel", "kernels", "serial", "loop", "data", "enter",
                        "exit", "update", "routine", "declare", "atomic", "wait",
                        "host_data", "cache"},
    DirectiveKind.OMP: {"target", "teams", "distribute", "parallel", "for", "simd",
                        "loop", "data", "enter", "exit", "update", "declare",
                        "atomic", "critical", "barrier", "single", "master",
                        "sections", "section", "task"},
}


def parse_pragma(text: str) -> Directive:
    """Parse the text of a ``#pragma`` line into a :class:`Directive`.

    *text* may or may not include the leading ``#pragma`` keyword.  Pragmas
    of families other than ``acc``/``omp`` yield a Directive with kind
    :attr:`DirectiveKind.OTHER` and the raw text preserved.
    """

    raw = text.strip()
    body = raw
    if body.startswith("#"):
        body = body[1:].strip()
    if body.startswith("pragma"):
        body = body[len("pragma"):].strip()

    words = _split_clauses(body)
    if not words:
        return Directive(DirectiveKind.OTHER, (), [], raw)

    family = words[0]
    if family == "acc":
        kind = DirectiveKind.ACC
    elif family == "omp":
        kind = DirectiveKind.OMP
    else:
        return Directive(DirectiveKind.OTHER, (family,), [], raw)

    names: List[str] = []
    clauses: List[DirectiveClause] = []
    name_words = _NAME_WORDS[kind]
    in_names = True
    for piece in words[1:]:
        plain = "(" not in piece
        if in_names and plain and piece in name_words:
            names.append(piece)
            continue
        in_names = False
        clauses.append(_parse_clause(piece))
    return Directive(kind, tuple(names), clauses, raw)
