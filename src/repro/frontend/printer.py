"""C source regeneration from the AST.

The printer preserves directives verbatim (ACC Saturator never rewrites
``#pragma`` lines) and keeps loop / branch structure identical to the input,
which is the central structural guarantee of the paper: only the sequential
statements inside the innermost parallel loops change.
"""

from __future__ import annotations

from typing import List

from repro.frontend import cast as C

__all__ = ["CPrinter", "print_c", "print_expr"]


#: Operator precedence used for minimal-parenthesis printing.
_PREC = {
    ",": 1,
    "=": 2, "+=": 2, "-=": 2, "*=": 2, "/=": 2, "%=": 2,
    "<<=": 2, ">>=": 2, "&=": 2, "|=": 2, "^=": 2,
    "?:": 3,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
    "cast": 14,
    "unary": 14,
    "postfix": 15,
    "primary": 16,
}


class CPrinter:
    """Render AST nodes back into C source text."""

    def __init__(self, indent: str = "  ") -> None:
        self.indent_unit = indent

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr(self, node: C.Expr, parent_prec: int = 0) -> str:
        """Render an expression, inserting parentheses only when needed."""

        text, prec = self._expr_prec(node)
        if prec < parent_prec:
            return f"({text})"
        return text

    def _expr_prec(self, node: C.Expr) -> tuple[str, int]:
        if isinstance(node, C.Number):
            return node.text, _PREC["primary"]
        if isinstance(node, C.StringLit):
            return node.value, _PREC["primary"]
        if isinstance(node, C.Ident):
            return node.name, _PREC["primary"]
        if isinstance(node, C.ArraySub):
            base = self.expr(node.base, _PREC["postfix"])
            return f"{base}[{self.expr(node.index)}]", _PREC["postfix"]
        if isinstance(node, C.Member):
            base = self.expr(node.base, _PREC["postfix"])
            sep = "->" if node.arrow else "."
            return f"{base}{sep}{node.field_name}", _PREC["postfix"]
        if isinstance(node, C.Call):
            func = self.expr(node.func, _PREC["postfix"])
            args = ", ".join(self.expr(arg, _PREC[","] + 1) for arg in node.args)
            return f"{func}({args})", _PREC["postfix"]
        if isinstance(node, C.UnaryOp):
            if node.postfix:
                operand = self.expr(node.operand, _PREC["postfix"])
                return f"{operand}{node.op}", _PREC["postfix"]
            operand = self.expr(node.operand, _PREC["unary"])
            space = " " if node.op in ("-", "+") and operand.startswith(node.op) else ""
            return f"{node.op}{space}{operand}", _PREC["unary"]
        if isinstance(node, C.Cast):
            operand = self.expr(node.operand, _PREC["cast"])
            return f"({node.type_name}){operand}", _PREC["cast"]
        if isinstance(node, C.BinOp):
            prec = _PREC.get(node.op, 12)
            lhs = self.expr(node.lhs, prec)
            rhs = self.expr(node.rhs, prec + 1)
            return f"{lhs} {node.op} {rhs}", prec
        if isinstance(node, C.Ternary):
            prec = _PREC["?:"]
            cond = self.expr(node.cond, prec + 1)
            then = self.expr(node.then, prec)
            other = self.expr(node.otherwise, prec)
            return f"{cond} ? {then} : {other}", prec
        if isinstance(node, C.Assign):
            prec = _PREC["="]
            target = self.expr(node.target, prec + 1)
            value = self.expr(node.value, prec)
            return f"{target} {node.op} {value}", prec
        raise TypeError(f"cannot print expression node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def stmt(self, node: C.Stmt, depth: int = 0) -> str:
        """Render a statement (with trailing newline)."""

        pad = self.indent_unit * depth

        if isinstance(node, C.Block):
            lines = [f"{pad}{{\n"]
            for inner in node.stmts:
                lines.append(self.stmt(inner, depth + 1))
            lines.append(f"{pad}}}\n")
            return "".join(lines)
        if isinstance(node, C.Decl):
            return f"{pad}{self._decl_text(node)}\n"
        if isinstance(node, C.ExprStmt):
            return f"{pad}{self.expr(node.expr)};\n"
        if isinstance(node, C.If):
            text = f"{pad}if ({self.expr(node.cond)})\n"
            text += self._nested(node.then, depth)
            if node.otherwise is not None:
                text += f"{pad}else\n"
                text += self._nested(node.otherwise, depth)
            return text
        if isinstance(node, C.For):
            init = ""
            if isinstance(node.init, C.Decl):
                init = self._decl_text(node.init).rstrip(";") + ";"
            elif isinstance(node.init, C.ExprStmt):
                init = self.expr(node.init.expr) + ";"
            elif node.init is None:
                init = ";"
            else:
                init = ";"
            cond = f" {self.expr(node.cond)}" if node.cond is not None else ""
            step = f" {self.expr(node.step)}" if node.step is not None else ""
            text = f"{pad}for ({init}{cond};{step})\n"
            text += self._nested(node.body, depth)
            return text
        if isinstance(node, C.While):
            text = f"{pad}while ({self.expr(node.cond)})\n"
            text += self._nested(node.body, depth)
            return text
        if isinstance(node, C.DoWhile):
            text = f"{pad}do\n"
            text += self._nested(node.body, depth)
            text += f"{pad}while ({self.expr(node.cond)});\n"
            return text
        if isinstance(node, C.Return):
            if node.value is None:
                return f"{pad}return;\n"
            return f"{pad}return {self.expr(node.value)};\n"
        if isinstance(node, C.Break):
            return f"{pad}break;\n"
        if isinstance(node, C.Continue):
            return f"{pad}continue;\n"
        if isinstance(node, C.Pragma):
            text = f"{pad}{node.text}\n" if node.text.startswith("#") else f"{pad}#pragma {node.text}\n"
            if node.stmt is not None:
                text += self.stmt(node.stmt, depth)
            return text
        raise TypeError(f"cannot print statement node {type(node).__name__}")

    def _nested(self, node: C.Stmt, depth: int) -> str:
        """Render a nested statement; blocks keep the parent indent."""

        if isinstance(node, C.Block):
            return self.stmt(node, depth)
        return self.stmt(node, depth + 1)

    def _decl_text(self, node: C.Decl) -> str:
        quals = " ".join(node.qualifiers)
        prefix = f"{quals} " if quals else ""
        dims = "".join(f"[{self.expr(dim)}]" for dim in node.array_dims)
        text = f"{prefix}{node.type_name} {node.name}{dims}"
        if node.init is not None:
            text += f" = {self.expr(node.init)}"
        return text + ";"

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def translation_unit(self, unit: C.TranslationUnit) -> str:
        parts: List[str] = []
        for decl in unit.decls:
            if isinstance(decl, C.FuncDef):
                parts.append(self.func_def(decl))
            elif isinstance(decl, C.Stmt):
                parts.append(self.stmt(decl, 0))
            else:
                raise TypeError(f"cannot print top-level node {type(decl).__name__}")
        return "\n".join(parts)

    def func_def(self, func: C.FuncDef) -> str:
        params = ", ".join(
            f"{ptype} {pname}".strip() for ptype, pname in func.params
        ) or "void"
        header = f"{func.return_type} {func.name}({params})\n"
        if not func.body.stmts:
            return header.rstrip("\n") + ";\n"
        return header + self.stmt(func.body, 0)


def print_c(node: C.Node, indent: str = "  ") -> str:
    """Render any AST node (translation unit, statement or expression)."""

    printer = CPrinter(indent)
    if isinstance(node, C.TranslationUnit):
        return printer.translation_unit(node)
    if isinstance(node, C.FuncDef):
        return printer.func_def(node)
    if isinstance(node, C.Stmt):
        return printer.stmt(node)
    if isinstance(node, C.Expr):
        return printer.expr(node)
    raise TypeError(f"cannot print node {type(node).__name__}")


def print_expr(node: C.Expr) -> str:
    """Render an expression node to C text."""

    return CPrinter().expr(node)
