"""Benchmark suite data model.

Each benchmark (NPB BT, SPEC olbm, ...) is described by a
:class:`BenchmarkSpec`: suite metadata matching the paper's Tables II/III
(compute pattern, access pattern, kernel count, problem size, the original
execution times the paper reports) plus a set of representative
:class:`KernelSpec` entries — real OpenACC/OpenMP C sources that are run
through the actual ACC Saturator pipeline and then through the GPU model.

A benchmark typically has far more kernels than we ship (NPB BT has 46);
each shipped kernel therefore carries a ``repeat`` count and a
``time_share`` weight so that suite-level aggregation reflects the paper's
kernel counts and time distribution.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["KernelSpec", "BenchmarkSpec", "acc_to_omp_source"]


@dataclass(frozen=True)
class KernelSpec:
    """One representative kernel of a benchmark."""

    name: str
    #: OpenACC (or OpenMP) C source of the kernel loop nest.
    source: str
    #: Loop iterations executed per kernel launch (problem-size dependent).
    iterations_per_launch: float
    #: Number of launches over the benchmark run (time steps etc.).
    launches: int
    #: How many kernels of this shape the real benchmark contains.
    repeat: int = 1
    #: Fraction of iterations that are parallel work (see LaunchConfig).
    parallel_fraction: float = 1.0
    #: Threads per block used by the launcher.
    threads_per_block: int = 128
    #: The shipped source is an abridged version of the real kernel; the real
    #: kernel repeats the same statement pattern ``statement_scale`` times
    #: (e.g. NPB-BT's z_solve builds all five block rows, Listing 2 shows
    #: two).  The GPU model scales the per-iteration operation counts and
    #: register pressure accordingly; the pipeline itself always runs on the
    #: shipped source.
    statement_scale: float = 1.0


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of NPB or SPEC ACCEL."""

    name: str
    suite: str  # "npb" or "spec"
    programming_model: str  # "acc" or "omp"
    compute: str
    access: str
    num_kernels: int
    problem_class: str
    kernels: tuple
    #: Original execution times reported by the paper (seconds), keyed by
    #: compiler name; used for the Table II/III "paper" columns.
    paper_original_time: Dict[str, float] = field(default_factory=dict)

    def with_programming_model(self, model: str, name: Optional[str] = None) -> "BenchmarkSpec":
        """Derive the OpenMP (or OpenACC) flavour of this benchmark.

        Kernel sources are translated directive-for-directive; the
        computation is unchanged, mirroring how SPEC ships both versions.
        """

        if model == self.programming_model:
            return self
        translate = acc_to_omp_source if model == "omp" else omp_to_acc_source
        kernels = tuple(
            KernelSpec(
                name=k.name,
                source=translate(k.source),
                iterations_per_launch=k.iterations_per_launch,
                launches=k.launches,
                repeat=k.repeat,
                parallel_fraction=k.parallel_fraction,
                threads_per_block=k.threads_per_block,
                statement_scale=k.statement_scale,
            )
            for k in self.kernels
        )
        return BenchmarkSpec(
            name=name or f"p{self.name}",
            suite=self.suite,
            programming_model=model,
            compute=self.compute,
            access=self.access,
            num_kernels=self.num_kernels,
            problem_class=self.problem_class,
            kernels=kernels,
            paper_original_time=self.paper_original_time,
        )


# ---------------------------------------------------------------------------
# Directive translation (OpenACC <-> OpenMP) for the suite's own kernels
# ---------------------------------------------------------------------------

_ACC_TO_OMP_RULES = [
    (re.compile(r"#pragma\s+acc\s+parallel\s+loop\b.*"), "#pragma omp target teams distribute"),
    (re.compile(r"#pragma\s+acc\s+kernels\s+loop\b.*"), "#pragma omp target teams distribute"),
    (re.compile(r"#pragma\s+acc\s+kernels\b.*"), "#pragma omp target teams"),
    (re.compile(r"#pragma\s+acc\s+loop\s+worker\b.*"), "#pragma omp parallel for"),
    (re.compile(r"#pragma\s+acc\s+loop\s+vector\b.*"), "#pragma omp parallel for simd"),
    (re.compile(r"#pragma\s+acc\s+loop\s+independent\s+gang.*vector.*"),
     "#pragma omp parallel for simd"),
    (re.compile(r"#pragma\s+acc\s+loop\s+gang\b.*"), "#pragma omp parallel for"),
    (re.compile(r"#pragma\s+acc\s+loop\b.*seq.*"), "#pragma omp loop bind(thread)"),
    (re.compile(r"#pragma\s+acc\s+loop\b.*"), "#pragma omp parallel for simd"),
]

_OMP_TO_ACC_RULES = [
    (re.compile(r"#pragma\s+omp\s+target\s+teams\s+distribute\b.*"),
     "#pragma acc parallel loop gang"),
    (re.compile(r"#pragma\s+omp\s+parallel\s+for\s+simd\b.*"), "#pragma acc loop vector"),
    (re.compile(r"#pragma\s+omp\s+parallel\s+for\b.*"), "#pragma acc loop worker"),
    (re.compile(r"#pragma\s+omp\s+simd\b.*"), "#pragma acc loop vector"),
]


def _translate(source: str, rules) -> str:
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#pragma"):
            for pattern, replacement in rules:
                if pattern.match(stripped):
                    indent = line[: len(line) - len(line.lstrip())]
                    line = indent + replacement
                    break
        lines.append(line)
    return "\n".join(lines)


def acc_to_omp_source(source: str) -> str:
    """Translate the suite's OpenACC directives into OpenMP equivalents."""

    return _translate(source, _ACC_TO_OMP_RULES)


def omp_to_acc_source(source: str) -> str:
    """Translate the suite's OpenMP directives into OpenACC equivalents."""

    return _translate(source, _OMP_TO_ACC_RULES)
