"""Registry of every benchmark in the reproduction.

* :data:`NPB_BENCHMARKS` — the seven NPB/OpenACC benchmarks of Table II.
* :data:`SPEC_ACC_BENCHMARKS` — the seven SPEC ACCEL OpenACC benchmarks of
  Table III.
* :data:`SPEC_OMP_BENCHMARKS` — the OpenMP flavours (``p``-prefixed names),
  derived from the OpenACC kernels directive-for-directive.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.base import BenchmarkSpec
from repro.benchsuite.npb import BT, CG, EP, FT, LU, MG, SP
from repro.benchsuite.specaccel import CSP, OLBM, OMRIQ, OSTENCIL, SPEC_BT, SPEC_CG, SPEC_EP

__all__ = [
    "NPB_BENCHMARKS",
    "SPEC_ACC_BENCHMARKS",
    "SPEC_OMP_BENCHMARKS",
    "all_benchmarks",
    "get_benchmark",
]

NPB_BENCHMARKS: List[BenchmarkSpec] = [BT, CG, EP, FT, LU, MG, SP]

SPEC_ACC_BENCHMARKS: List[BenchmarkSpec] = [
    OSTENCIL, OLBM, OMRIQ, SPEC_EP, SPEC_CG, CSP, SPEC_BT,
]

#: Paper Table III also reports OpenMP original times; keep them here keyed
#: by the OpenMP benchmark name for the Table III harness.
_SPEC_OMP_PAPER_TIMES: Dict[str, Dict[str, float]] = {
    "postencil": {"nvhpc": 7.75, "gcc": 107.54, "clang": 34.60},
    "polbm": {"nvhpc": 7.11, "gcc": 13.47, "clang": 5.91},
    "pomriq": {"nvhpc": 5.99, "gcc": 18.54, "clang": 11.87},
    "pep": {"nvhpc": 62.42, "gcc": 90.35, "clang": 71.32},
    "pcg": {"nvhpc": 5.06, "gcc": 19.03, "clang": 18.42},
    "pcsp": {"nvhpc": 111.79, "gcc": 589.87, "clang": 105.75},
    "pbt": {"nvhpc": 555.44, "gcc": 60.45, "clang": 562.83},
}


def _make_omp_benchmarks() -> List[BenchmarkSpec]:
    omp: List[BenchmarkSpec] = []
    for bench in SPEC_ACC_BENCHMARKS:
        converted = bench.with_programming_model("omp", name=f"p{bench.name}")
        converted = BenchmarkSpec(
            name=converted.name,
            suite=converted.suite,
            programming_model=converted.programming_model,
            compute=converted.compute,
            access=converted.access,
            num_kernels=converted.num_kernels,
            problem_class=converted.problem_class,
            kernels=converted.kernels,
            paper_original_time=_SPEC_OMP_PAPER_TIMES.get(converted.name, {}),
        )
        omp.append(converted)
    return omp


SPEC_OMP_BENCHMARKS: List[BenchmarkSpec] = _make_omp_benchmarks()


def all_benchmarks() -> List[BenchmarkSpec]:
    """Every benchmark of the reproduction (NPB + SPEC ACC + SPEC OMP)."""

    return NPB_BENCHMARKS + SPEC_ACC_BENCHMARKS + SPEC_OMP_BENCHMARKS


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look a benchmark up by name.

    NPB names are upper-case (``BT``) and SPEC names lower-case (``bt``), so
    an exact match is preferred; a case-insensitive match is used as a
    fallback when it is unambiguous.
    """

    for bench in all_benchmarks():
        if bench.name == name:
            return bench
    matches = [b for b in all_benchmarks() if b.name.lower() == name.lower()]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise KeyError(
            f"ambiguous benchmark name {name!r}: matches {[b.name for b in matches]}"
        )
    raise KeyError(f"unknown benchmark {name!r}")
