"""SPEC ACCEL 355.ep / 455.pep — embarrassingly parallel (CLASS D / W).

Same computation as NPB EP but written with the OpenACC ``kernels``
directive; GCC leaves the redundant constant arithmetic in place, which is
why the paper measures a 1.82×–1.90× speedup from CSE alone on GCC.
"""

from __future__ import annotations

from repro.benchsuite.base import BenchmarkSpec, KernelSpec
from repro.benchsuite.npb.ep import EP_GAUSSIAN_SOURCE, EP_RNG_SOURCE

__all__ = ["SPEC_EP"]


def _kernels_directive(source: str) -> str:
    """Rewrite the outer directive to the `kernels` form SPEC uses."""

    return source.replace(
        "#pragma acc parallel loop gang vector_length(128)",
        "#pragma acc kernels loop independent",
    )


_SAMPLES = 2.0 ** 36 / 65536.0  # CLASS D pairs per batch
_BATCHES = 512

SPEC_EP = BenchmarkSpec(
    name="ep",
    suite="spec",
    programming_model="acc",
    compute="Random Num",
    access="Parallel",
    num_kernels=5,
    problem_class="Ref / Test (CLASS D / W)",
    kernels=(
        KernelSpec("ep_gaussian", _kernels_directive(EP_GAUSSIAN_SOURCE), _SAMPLES, _BATCHES, repeat=3),
        KernelSpec("ep_rng", _kernels_directive(EP_RNG_SOURCE), _SAMPLES, _BATCHES, repeat=2),
    ),
    paper_original_time={"nvhpc": 45.33, "gcc": 69.91},
)
